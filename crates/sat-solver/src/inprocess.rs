//! Session-safe inprocessing: bounded simplification between solve calls.
//!
//! A round runs at a level-0 boundary (the start of a
//! [`Solver::solve_with_assumptions`] call) once enough conflicts have
//! accumulated since the previous round. It performs, in order:
//!
//! 1. **Top-level simplification** — clauses satisfied at level 0 are
//!    deleted; literals false at level 0 are removed (a clause shrunk to one
//!    literal is enqueued, to zero makes the database unsat).
//! 2. **Subsumption and self-subsuming resolution** — for every live clause
//!    `C` within the size bound, any clause `D ⊇ C` is deleted, and any `D`
//!    containing all of `C` except one literal in negated form is
//!    strengthened by removing that literal (the resolvent of `C` and `D` is
//!    a strict subset of `D`). Both steps preserve logical *equivalence*, so
//!    they are unconditionally sound for incremental sessions: clauses and
//!    assumptions added later can never be invalidated.
//! 3. **Bounded variable elimination** (opt-in, `var_elim`) — a variable
//!    whose pos/neg occurrence lists are small is resolved away when the
//!    resolvent set is no larger than the clauses it replaces. VE only
//!    preserves *equisatisfiability*, so it is restricted to variables that
//!    are not [frozen](Solver::freeze_var) — assumption variables are frozen
//!    automatically, and the MaxSAT layer freezes its soft-clause selectors —
//!    and the eliminated variable's clauses are kept on a stack, both to
//!    extend models with consistent values and to *restore* the variable if
//!    a later `add_clause` (or assumption) mentions it again.
//!
//! All passes are bounded (clause-size and occurrence-list budgets) so a
//! round costs a small slice of the search time it amortises.
//!
//! [`Solver::solve_with_assumptions`]: crate::Solver::solve_with_assumptions

use crate::clause::ClauseRef;
use crate::lit::{LBool, Lit, Var};
use crate::solver::Solver;

/// Schedule and bounds for inprocessing rounds.
///
/// The defaults keep inprocessing dormant on easy workloads (a round only
/// triggers after `interval_conflicts` conflicts since the last one) and
/// bounded on hard ones. Variable elimination is opt-in because it is only
/// safe for variables the embedding layers have not promised to re-use; the
/// solver protects assumption variables automatically and exposes
/// [`Solver::freeze_var`](crate::Solver::freeze_var) for the rest.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InprocessConfig {
    /// Master switch for scheduled rounds ([`Solver::inprocess_now`] works
    /// regardless).
    ///
    /// [`Solver::inprocess_now`]: crate::Solver::inprocess_now
    pub enabled: bool,
    /// Conflicts that must accumulate between rounds.
    pub interval_conflicts: u64,
    /// Only clauses with at most this many literals act as subsumers.
    pub subsumption_limit: usize,
    /// At most this many occurrence-list candidates are checked per subsumer.
    pub occ_budget: usize,
    /// Enables bounded variable elimination (off by default; see the module
    /// docs for why it is opt-in).
    pub var_elim: bool,
    /// A variable is only eliminated when both occurrence lists have at most
    /// this many clauses.
    pub var_elim_max_occ: usize,
}

impl Default for InprocessConfig {
    fn default() -> Self {
        InprocessConfig {
            enabled: true,
            interval_conflicts: 8000,
            subsumption_limit: 30,
            occ_budget: 2000,
            var_elim: false,
            var_elim_max_occ: 10,
        }
    }
}

impl Solver {
    /// Runs a scheduled inprocessing round if one is due.
    pub(crate) fn maybe_inprocess(&mut self) {
        let config = self.config.inprocess;
        if !config.enabled {
            return;
        }
        if self.stats.conflicts - self.last_inprocess_conflicts < config.interval_conflicts {
            return;
        }
        self.inprocess_now();
    }

    /// Runs one inprocessing round immediately (top-level simplification,
    /// subsumption / self-subsuming resolution, and — when enabled —
    /// bounded variable elimination). Must be called at decision level 0
    /// with a fully propagated trail, i.e. between solve calls; no-op when
    /// the database is already unsat.
    pub fn inprocess_now(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return;
        }
        // Level-0 reasons are never dereferenced by conflict analysis (it
        // stops at level-0 literals), so clearing them is safe and leaves no
        // clause "locked" during this round.
        self.clear_top_level_reasons();
        self.simplify_top_level();
        if self.ok {
            self.subsumption_pass();
        }
        if self.ok && self.config.inprocess.var_elim {
            self.eliminate_vars();
        }
        self.stats.inprocess_rounds += 1;
        self.stats.learnt_clauses = self.db.num_learnt as u64;
        self.last_inprocess_conflicts = self.stats.conflicts;
        self.maybe_compact();
    }

    /// Drops the reason references of every (level-0) trail literal. Units
    /// derived *during* a round propagate further literals whose reasons are
    /// ordinary clauses — and a later deletion sweep may remove exactly those
    /// clauses as satisfied — so every propagation inside a round must be
    /// followed by this before any clause can be deleted.
    fn clear_top_level_reasons(&mut self) {
        for &lit in &self.trail {
            self.reason[lit.var().index()] = None;
        }
    }

    /// Deletes clauses satisfied at level 0 and strips falsified literals,
    /// repeating while new top-level units keep appearing.
    fn simplify_top_level(&mut self) {
        loop {
            let crefs: Vec<ClauseRef> = self.db.refs().collect();
            let mut new_units = false;
            for cref in crefs {
                if self.db.is_deleted(cref) {
                    continue;
                }
                let len = self.db.len_of(cref);
                let mut satisfied = false;
                let mut keep: Vec<Lit> = Vec::with_capacity(len);
                for k in 0..len {
                    let lit = self.db.lit_at(cref, k);
                    match self.lit_value(lit) {
                        LBool::True => {
                            satisfied = true;
                            break;
                        }
                        LBool::False => {}
                        LBool::Undef => keep.push(lit),
                    }
                }
                if satisfied {
                    self.db.delete(cref);
                    self.stats.inprocess_removed += 1;
                    continue;
                }
                if keep.len() == len {
                    continue;
                }
                self.stats.inprocess_strengthened += 1;
                if self.rewrite_clause(cref, &keep) {
                    new_units = true;
                }
                if !self.ok {
                    return;
                }
            }
            if !new_units {
                break;
            }
            if self.propagate().is_some() {
                self.ok = false;
                return;
            }
            self.clear_top_level_reasons();
        }
    }

    /// Replaces a live clause's literals in place. Returns `true` when the
    /// rewrite produced a new top-level unit (the caller must re-propagate).
    /// Sets `ok = false` when the clause became empty.
    fn rewrite_clause(&mut self, cref: ClauseRef, new_lits: &[Lit]) -> bool {
        debug_assert!(!self.db.is_deleted(cref));
        self.detach_clause(cref);
        match new_lits.len() {
            0 => {
                self.db.delete(cref);
                self.ok = false;
                false
            }
            1 => {
                self.db.delete(cref);
                match self.lit_value(new_lits[0]) {
                    LBool::True => false,
                    LBool::False => {
                        self.ok = false;
                        false
                    }
                    LBool::Undef => {
                        self.unchecked_enqueue(new_lits[0], None);
                        true
                    }
                }
            }
            _ => {
                self.db.shrink(cref, new_lits);
                self.attach_clause(cref);
                false
            }
        }
    }

    /// Backward subsumption and self-subsuming resolution over all live
    /// clauses, bounded by the configured subsumer size and occurrence
    /// budget.
    fn subsumption_pass(&mut self) {
        let limit = self.config.inprocess.subsumption_limit;
        let occ_budget = self.config.inprocess.occ_budget;
        let crefs: Vec<ClauseRef> = self.db.refs().filter(|&c| !self.db.is_deleted(c)).collect();
        // Occurrence lists over every live clause (the subsumee side is
        // unbounded; only subsumers are size-limited).
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); 2 * self.num_vars()];
        for &cref in &crefs {
            for &lit in self.db.lits(cref) {
                occ[lit.code()].push(cref.0);
            }
        }
        // `stamp[lit] == epoch` marks the literals of the current subsumer.
        let mut stamp: Vec<u64> = vec![0; 2 * self.num_vars()];
        let mut epoch = 0u64;
        let mut units = false;
        for &c in &crefs {
            if self.db.is_deleted(c) {
                continue;
            }
            let clen = self.db.len_of(c);
            if clen > limit {
                continue;
            }
            epoch += 1;
            let mut best = self.db.lit_at(c, 0);
            for k in 0..clen {
                let lit = self.db.lit_at(c, k);
                stamp[lit.code()] = epoch;
                if occ[lit.code()].len() < occ[best.code()].len() {
                    best = lit;
                }
            }
            // Scan the shortest occurrence list of C's literals for
            // candidate supersets. A subsumed D contains every literal of C,
            // so it sits in `occ[best]`; a strengthening candidate may have
            // `best` flipped, so `occ[!best]` must be scanned too.
            let candidates: Vec<u32> = occ[best.code()]
                .iter()
                .chain(occ[(!best).code()].iter())
                .copied()
                .take(occ_budget)
                .collect();
            for d_offset in candidates {
                let d = ClauseRef(d_offset);
                if d == c || self.db.is_deleted(d) || self.db.is_deleted(c) {
                    continue;
                }
                let dlen = self.db.len_of(d);
                if dlen < clen {
                    continue;
                }
                // Count C's literals found in D directly (hits) or negated
                // (at most one allowed, for self-subsuming resolution).
                let mut hits = 0usize;
                let mut negated: Option<Lit> = None;
                for k in 0..dlen {
                    let dl = self.db.lit_at(d, k);
                    if stamp[dl.code()] == epoch {
                        hits += 1;
                    } else if stamp[(!dl).code()] == epoch {
                        if negated.is_some() {
                            negated = None;
                            hits = 0;
                            break; // two negated matches: resolvent is a tautology
                        }
                        negated = Some(dl);
                    }
                }
                if hits == clen && negated.is_none() {
                    // C ⊆ D: D is redundant. If a learnt C subsumes an
                    // original D, C must survive learnt-DB reduction.
                    if self.db.is_learnt(c) && !self.db.is_learnt(d) {
                        self.db.promote(c);
                        self.stats.learnt_clauses = self.db.num_learnt as u64;
                    }
                    self.db.delete(d);
                    self.stats.inprocess_removed += 1;
                } else if hits + 1 == clen {
                    if let Some(dl) = negated {
                        // Self-subsuming resolution: resolve C and D on
                        // `dl`'s variable; the resolvent is D \ {dl}.
                        let keep: Vec<Lit> = self
                            .db
                            .lits(d)
                            .iter()
                            .copied()
                            .filter(|&l| l != dl)
                            .collect();
                        self.stats.inprocess_strengthened += 1;
                        if self.rewrite_clause(d, &keep) {
                            units = true;
                        }
                        if !self.ok {
                            return;
                        }
                    }
                }
            }
        }
        if units {
            if self.propagate().is_some() {
                self.ok = false;
                return;
            }
            self.clear_top_level_reasons();
            // Strengthening to units can satisfy or shorten other clauses;
            // one cheap follow-up pass picks those up.
            self.simplify_top_level();
        }
    }

    /// Bounded variable elimination: resolves away unassigned, unfrozen
    /// variables with small occurrence lists when doing so does not grow the
    /// clause database. Learnt clauses containing the variable are dropped
    /// (they are implied, so this is sound); original clauses are stored on
    /// the elimination stack for model extension and restoration.
    fn eliminate_vars(&mut self) {
        let max_occ = self.config.inprocess.var_elim_max_occ;
        for v_idx in 0..self.num_vars() {
            let var = Var::from_index(v_idx);
            if self.frozen[v_idx] || self.eliminated[v_idx] || !self.assigns[v_idx].is_undef() {
                continue;
            }
            let pos_lit = Lit::positive(var);
            let neg_lit = Lit::negative(var);
            let mut pos: Vec<ClauseRef> = Vec::new();
            let mut neg: Vec<ClauseRef> = Vec::new();
            let mut learnt_occ: Vec<ClauseRef> = Vec::new();
            let mut too_many = false;
            for cref in self.db.refs() {
                if self.db.is_deleted(cref) {
                    continue;
                }
                let lits = self.db.lits(cref);
                let occurs_pos = lits.contains(&pos_lit);
                let occurs_neg = lits.contains(&neg_lit);
                if !occurs_pos && !occurs_neg {
                    continue;
                }
                if self.db.is_learnt(cref) {
                    learnt_occ.push(cref);
                    continue;
                }
                if occurs_pos {
                    pos.push(cref);
                } else {
                    neg.push(cref);
                }
                if pos.len() > max_occ || neg.len() > max_occ {
                    too_many = true;
                    break;
                }
            }
            if too_many {
                continue;
            }
            // Build the resolvent set; bail out if it grows the database.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut grows = false;
            'pairs: for &cp in &pos {
                for &cn in &neg {
                    if let Some(resolvent) = self.resolve_on(cp, cn, var) {
                        resolvents.push(resolvent);
                        if resolvents.len() > pos.len() + neg.len() {
                            grows = true;
                            break 'pairs;
                        }
                    }
                }
            }
            if grows {
                continue;
            }
            // Commit: store the originals, drop every occurrence, add the
            // resolvents.
            let mut stored: Vec<Vec<Lit>> = Vec::with_capacity(pos.len() + neg.len());
            for &cref in pos.iter().chain(neg.iter()) {
                stored.push(self.db.lits(cref).to_vec());
                self.db.delete(cref);
                self.stats.inprocess_removed += 1;
            }
            for &cref in &learnt_occ {
                self.db.delete(cref);
            }
            self.eliminated[v_idx] = true;
            self.elim_stack.push((var, stored));
            let mut units = false;
            for resolvent in resolvents {
                match resolvent.len() {
                    0 => {
                        self.ok = false;
                        return;
                    }
                    1 => match self.lit_value(resolvent[0]) {
                        LBool::True => {}
                        LBool::False => {
                            self.ok = false;
                            return;
                        }
                        LBool::Undef => {
                            self.unchecked_enqueue(resolvent[0], None);
                            units = true;
                        }
                    },
                    _ => {
                        let cref = self.db.add(&resolvent, false);
                        self.attach_clause(cref);
                    }
                }
            }
            if units {
                if self.propagate().is_some() {
                    self.ok = false;
                    return;
                }
                self.clear_top_level_reasons();
            }
            self.stats.learnt_clauses = self.db.num_learnt as u64;
        }
    }

    /// Resolvent of two clauses on `var` (`cp` contains `var` positively,
    /// `cn` negatively), with level-0-false literals dropped. `None` when
    /// the resolvent is a tautology or satisfied at level 0.
    fn resolve_on(&self, cp: ClauseRef, cn: ClauseRef, var: Var) -> Option<Vec<Lit>> {
        let mut resolvent: Vec<Lit> = Vec::new();
        for &lit in self.db.lits(cp).iter().chain(self.db.lits(cn).iter()) {
            if lit.var() == var {
                continue;
            }
            match self.lit_value(lit) {
                LBool::True => return None,
                LBool::False => continue,
                LBool::Undef => resolvent.push(lit),
            }
        }
        resolvent.sort_unstable();
        resolvent.dedup();
        for pair in resolvent.windows(2) {
            if pair[1] == !pair[0] {
                return None; // tautology
            }
        }
        Some(resolvent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, SolverConfig};
    use crate::CnfFormula;

    fn pos(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }
    fn neg(i: usize) -> Lit {
        Lit::negative(Var::from_index(i))
    }

    fn live_clauses(solver: &Solver) -> Vec<Vec<Lit>> {
        solver
            .db
            .refs()
            .filter(|&c| !solver.db.is_deleted(c))
            .map(|c| solver.db.lits(c).to_vec())
            .collect()
    }

    #[test]
    fn subsumption_deletes_supersets() {
        let mut s = Solver::new();
        s.ensure_vars(4);
        s.add_clause([pos(0), pos(1)]);
        s.add_clause([pos(0), pos(1), pos(2)]); // subsumed
        s.add_clause([pos(0), pos(1), neg(3)]); // subsumed
        s.add_clause([pos(2), pos(3)]);
        s.inprocess_now();
        assert_eq!(s.stats().inprocess_rounds, 1);
        assert_eq!(s.stats().inprocess_removed, 2);
        assert_eq!(live_clauses(&s).len(), 2);
        assert!(s.solve().is_sat());
        s.assert_integrity();
    }

    #[test]
    fn self_subsuming_resolution_strengthens() {
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_clause([pos(0), pos(1)]);
        s.add_clause([neg(0), pos(1), pos(2)]); // SSR on x0 → (x1 ∨ x2)
        s.inprocess_now();
        assert!(s.stats().inprocess_strengthened >= 1);
        let clauses = live_clauses(&s);
        assert!(
            clauses.iter().any(|c| {
                let mut c = c.clone();
                c.sort_unstable();
                c == vec![pos(1), pos(2)]
            }),
            "expected the strengthened clause, got {clauses:?}"
        );
        assert!(s.solve().is_sat());
        s.assert_integrity();
    }

    #[test]
    fn ssr_derived_units_leave_propagation_reasons_live() {
        // Regression: self-subsuming resolution on x0 turns (x0 ∨ x1) into
        // the unit x1, whose top-level propagation forces x2 with
        // (¬x1 ∨ x2) as its reason clause. Strengthening/garbage collection
        // in the same inprocessing pass must not delete or move that reason
        // out from under the trail — the integrity check walks every
        // assigned literal's reason.
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_clause([pos(0), pos(1)]);
        s.add_clause([neg(0), pos(1)]); // SSR on x0 → unit x1
        s.add_clause([neg(1), pos(2)]); // propagates x2; reason clause
        s.inprocess_now();
        assert!(s.is_ok());
        s.assert_integrity();
        // The pass actually did the rewrite it is meant to guard.
        assert_eq!(s.stats().inprocess_rounds, 1);
        assert!(s.stats().inprocess_strengthened >= 1, "SSR must fire");
        // Both propagations are fixed at the top level after the pass.
        assert_eq!(s.lit_value(pos(1)), LBool::True);
        assert_eq!(s.lit_value(pos(2)), LBool::True);
        // And the solver still answers with a model honouring them.
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.value(Var::from_index(1)));
                assert!(m.value(Var::from_index(2)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        s.assert_integrity();
    }

    #[test]
    fn top_level_simplification_removes_satisfied_and_false_literals() {
        let mut s = Solver::new();
        s.ensure_vars(4);
        s.add_clause([pos(0)]);
        s.add_clause([pos(1), pos(2), pos(3)]);
        // Added before x0 was known true, so it survives as a full clause...
        // actually add_clause simplifies at level 0 already; force the
        // situation by adding the unit last via inprocessing instead:
        let mut s2 = Solver::new();
        s2.ensure_vars(4);
        s2.add_clause([pos(1), pos(2)]);
        s2.add_clause([neg(0), pos(3)]);
        s2.add_clause([pos(0)]);
        // After the unit x0, (¬x0 ∨ x3) should shrink to the unit x3.
        s2.inprocess_now();
        assert!(s2.is_ok());
        assert_eq!(s2.lit_value(pos(3)), LBool::True);
        assert!(s2.solve().is_sat());
        s2.assert_integrity();
        drop(s);
    }

    #[test]
    fn variable_elimination_respects_frozen_and_extends_models() {
        let config = SolverConfig {
            inprocess: InprocessConfig {
                var_elim: true,
                ..InprocessConfig::default()
            },
            ..SolverConfig::default()
        };
        let mut s = Solver::with_config(config);
        s.ensure_vars(4);
        // x1 is a pure connector: (x0 ∨ x1) ∧ (¬x1 ∨ x2) ∧ (¬x1 ∨ x3)
        s.add_clause([pos(0), pos(1)]);
        s.add_clause([neg(1), pos(2)]);
        s.add_clause([neg(1), pos(3)]);
        s.freeze_var(Var::from_index(0));
        s.inprocess_now();
        assert!(s.eliminated.iter().any(|&e| e), "some variable eliminated");
        assert!(!s.eliminated[0], "frozen variables must survive");
        // The model must cover the eliminated variable consistently.
        match s.solve_with_assumptions(&[neg(0)]) {
            SolveResult::Sat(m) => {
                assert!(m.value(Var::from_index(1)), "x1 forced true when x0 false");
                assert!(m.value(Var::from_index(2)));
                assert!(m.value(Var::from_index(3)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        s.assert_integrity();
    }

    #[test]
    fn eliminated_variables_are_restored_on_later_clause_additions() {
        let config = SolverConfig {
            inprocess: InprocessConfig {
                var_elim: true,
                ..InprocessConfig::default()
            },
            ..SolverConfig::default()
        };
        let mut s = Solver::with_config(config);
        s.ensure_vars(3);
        s.add_clause([pos(0), pos(1)]);
        s.add_clause([neg(1), pos(2)]);
        s.inprocess_now();
        let eliminated: Vec<usize> = (0..3).filter(|&i| s.eliminated[i]).collect();
        assert!(!eliminated.is_empty());
        let v = Var::from_index(eliminated[0]);
        // A later clause mentioning the eliminated variable must transparently
        // restore it.
        assert!(s.add_clause([Lit::positive(v), pos(0)]));
        assert!(!s.eliminated[v.index()]);
        assert!(s.solve().is_sat());
        s.assert_integrity();
        // Assumptions on an eliminated variable restore it too.
        let mut s = Solver::with_config(SolverConfig {
            inprocess: InprocessConfig {
                var_elim: true,
                ..InprocessConfig::default()
            },
            ..SolverConfig::default()
        });
        s.ensure_vars(3);
        s.add_clause([pos(0), pos(1)]);
        s.add_clause([neg(1), pos(2)]);
        s.inprocess_now();
        let eliminated: Vec<usize> = (0..3).filter(|&i| s.eliminated[i]).collect();
        assert!(!eliminated.is_empty());
        let v = Var::from_index(eliminated[0]);
        assert!(s.solve_with_assumptions(&[Lit::negative(v)]).is_sat());
        assert!(!s.eliminated[v.index()]);
        assert!(s.is_frozen(v), "assumed variables are frozen");
    }

    #[test]
    fn inprocessing_preserves_answers_on_random_3sat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for instance in 0..15 {
            let num_vars = 25;
            let mut cnf = CnfFormula::with_vars(num_vars);
            for _ in 0..100 {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = Var::from_index(rng.gen_range(0..num_vars));
                    clause.push(Lit::new(v, rng.gen_bool(0.5)));
                }
                cnf.add_clause(clause);
            }
            let mut plain = Solver::from_cnf(&cnf);
            let expected = plain.solve().is_sat();
            let mut inproc = Solver::with_config(SolverConfig {
                inprocess: InprocessConfig {
                    interval_conflicts: 1,
                    var_elim: true,
                    ..InprocessConfig::default()
                },
                ..SolverConfig::default()
            });
            inproc.add_cnf(&cnf);
            inproc.inprocess_now();
            let got = inproc.solve();
            assert_eq!(got.is_sat(), expected, "instance {instance} must agree");
            if let SolveResult::Sat(model) = got {
                assert_eq!(
                    cnf.evaluate(model.as_slice()),
                    Some(true),
                    "instance {instance}: extended model must satisfy the formula"
                );
            }
            inproc.assert_integrity();
        }
    }

    #[test]
    fn learnt_subsumer_is_promoted_to_irredundant() {
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_clause([pos(0), pos(1), pos(2)]);
        // Hand-craft a learnt clause that subsumes the original.
        let cref = s.db.add(&[pos(0), pos(1)], true);
        s.attach_clause(cref);
        assert_eq!(s.db.num_learnt, 1);
        s.inprocess_now();
        assert_eq!(s.db.num_learnt, 0, "subsumer became irredundant");
        assert_eq!(s.stats().inprocess_removed, 1);
        assert!(s.solve().is_sat());
    }
}
