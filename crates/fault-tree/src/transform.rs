//! Structure-preserving fault-tree transformations.
//!
//! Two transformations used throughout classical FTA tooling and by the
//! paper's Step 1:
//!
//! * [`simplify`] — normalises a tree without changing its structure
//!   function: nested gates of the same kind are flattened, duplicate inputs
//!   are removed, and single-input gates are collapsed. Parsers and random
//!   generators can produce redundant structure; simplification reduces the
//!   encoding size downstream.
//! * [`success_tree`] — materialises the paper's *success tree*: the dual
//!   tree in which every gate is replaced by its dual (AND ↔ OR, `k/n` ↔
//!   `(n−k+1)/n`) and every basic event is reinterpreted as its complement
//!   ("component works" instead of "component fails"), with probability
//!   `1 − p`. Its structure function over the complemented events equals the
//!   negation of the original structure function.

use std::collections::HashMap;

use crate::event::BasicEvent;
use crate::gate::{Gate, GateId, GateKind};
use crate::tree::{FaultTree, NodeId};

/// Returns a semantically equivalent tree with flattened gates, deduplicated
/// inputs and no single-input gates (unless the top itself reduces to a
/// single node).
///
/// The set of basic events and their identifiers are preserved, so cut sets
/// are directly comparable between the original and the simplified tree.
pub fn simplify(tree: &FaultTree) -> FaultTree {
    // Resolve each gate to a simplified node expressed over the original
    // events and freshly rebuilt gates.
    let mut gates: Vec<Gate> = Vec::new();
    let mut memo: HashMap<GateId, NodeId> = HashMap::new();

    fn resolve(
        tree: &FaultTree,
        node: NodeId,
        gates: &mut Vec<Gate>,
        memo: &mut HashMap<GateId, NodeId>,
    ) -> NodeId {
        match node {
            NodeId::Event(e) => NodeId::Event(e),
            NodeId::Gate(g) => {
                if let Some(&resolved) = memo.get(&g) {
                    return resolved;
                }
                let gate = tree.gate(g);
                let kind = gate.kind();
                let mut inputs: Vec<NodeId> = Vec::new();
                for &input in gate.inputs() {
                    let resolved = resolve(tree, input, gates, memo);
                    // Flatten same-kind AND/OR children (not voting gates:
                    // their semantics are not associative).
                    let flattened = match (kind, resolved) {
                        (GateKind::And, NodeId::Gate(child))
                        | (GateKind::Or, NodeId::Gate(child))
                            if gates[child.index()].kind() == kind =>
                        {
                            gates[child.index()].inputs().to_vec()
                        }
                        _ => vec![resolved],
                    };
                    for candidate in flattened {
                        if !inputs.contains(&candidate) {
                            inputs.push(candidate);
                        }
                    }
                }
                let resolved = if inputs.len() == 1 && matches!(kind, GateKind::And | GateKind::Or)
                {
                    inputs[0]
                } else {
                    let id = GateId::from_index(gates.len());
                    gates.push(Gate::new(gate.name(), kind, inputs));
                    NodeId::Gate(id)
                };
                memo.insert(g, resolved);
                resolved
            }
        }
    }

    let top = resolve(tree, tree.top(), &mut gates, &mut memo);

    // Garbage-collect gates that flattening made unreachable from the top,
    // remapping the surviving gate identifiers to a dense range.
    let mut reachable = vec![false; gates.len()];
    let mut stack = vec![top];
    while let Some(node) = stack.pop() {
        if let NodeId::Gate(g) = node {
            if !reachable[g.index()] {
                reachable[g.index()] = true;
                stack.extend(gates[g.index()].inputs().iter().copied());
            }
        }
    }
    let mut remap: HashMap<GateId, GateId> = HashMap::new();
    let mut kept: Vec<Gate> = Vec::new();
    for (index, gate) in gates.iter().enumerate() {
        if reachable[index] {
            remap.insert(GateId::from_index(index), GateId::from_index(kept.len()));
            kept.push(gate.clone());
        }
    }
    let remap_node = |node: NodeId| match node {
        NodeId::Gate(g) => NodeId::Gate(remap[&g]),
        event => event,
    };
    let kept: Vec<Gate> = kept
        .into_iter()
        .map(|gate| {
            Gate::new(
                gate.name(),
                gate.kind(),
                gate.inputs()
                    .iter()
                    .map(|&input| remap_node(input))
                    .collect(),
            )
        })
        .collect();
    let top = remap_node(top);
    FaultTree::from_parts(tree.name(), tree.events().to_vec(), kept, top)
        .expect("simplification preserves validity")
}

/// Materialises the success tree (paper Step 1): the dual of the fault tree.
///
/// Every gate is replaced by its dual and every basic event `x` ("component
/// fails", probability `p`) becomes the complemented event "`x` does not
/// occur" with probability `1 − p`. Evaluating the success tree on the
/// complemented occurrence vector gives the negation of the original
/// structure function — the property the MaxSAT encoding relies on.
pub fn success_tree(tree: &FaultTree) -> FaultTree {
    let events: Vec<BasicEvent> = tree
        .events()
        .iter()
        .map(|event| {
            BasicEvent::new(
                format!("not({})", event.name()),
                event.probability().complement(),
            )
        })
        .collect();
    let gates: Vec<Gate> = tree
        .gates()
        .iter()
        .map(|gate| {
            Gate::new(
                format!("dual({})", gate.name()),
                gate.kind().dual(gate.inputs().len()),
                gate.inputs().to_vec(),
            )
        })
        .collect();
    FaultTree::from_parts(
        format!("success({})", tree.name()),
        events,
        gates,
        tree.top(),
    )
    .expect("the dual of a valid tree is valid")
}

/// Materialises the *dual structure* of the fault tree: every gate is
/// replaced by its dual (AND ↔ OR, `k/n` ↔ `(n−k+1)/n`) while the basic
/// events are kept **unchanged** (same names, same probabilities).
///
/// The minimal cut sets of the dual structure are exactly the minimal *path
/// sets* of the original tree: inclusion-minimal sets of events whose joint
/// non-occurrence guarantees that the top event cannot occur. This is the
/// transformation used by `ft-analysis`' path-set module and by the
/// maximum-probability minimal path set extension of the MPMCS pipeline.
///
/// Unlike [`success_tree`], which reinterprets events as their complements
/// (probability `1 − p`), the dual structure is still a formula over the
/// original failure events; only the gates change.
pub fn dual_structure(tree: &FaultTree) -> FaultTree {
    let gates: Vec<Gate> = tree
        .gates()
        .iter()
        .map(|gate| {
            Gate::new(
                format!("dual({})", gate.name()),
                gate.kind().dual(gate.inputs().len()),
                gate.inputs().to_vec(),
            )
        })
        .collect();
    FaultTree::from_parts(
        format!("dual({})", tree.name()),
        tree.events().to_vec(),
        gates,
        tree.top(),
    )
    .expect("the dual of a valid tree is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{fire_protection_system, redundant_sensor_network};
    use crate::tree::FaultTreeBuilder;

    fn assert_equivalent(a: &FaultTree, b: &FaultTree) {
        assert_eq!(a.num_events(), b.num_events());
        let n = a.num_events();
        assert!(n <= 16);
        for mask in 0..(1u32 << n) {
            let occurred: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            assert_eq!(
                a.evaluate(&occurred),
                b.evaluate(&occurred),
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn simplify_preserves_the_structure_function() {
        for tree in [fire_protection_system(), redundant_sensor_network()] {
            let simplified = simplify(&tree);
            assert!(simplified.validate().is_ok());
            assert_equivalent(&tree, &simplified);
        }
    }

    #[test]
    fn simplify_flattens_nested_or_gates_and_removes_duplicates() {
        let mut b = FaultTreeBuilder::new("nested");
        let x = b.basic_event("x", 0.1).unwrap();
        let y = b.basic_event("y", 0.2).unwrap();
        let z = b.basic_event("z", 0.3).unwrap();
        let inner = b.or_gate("inner", [x.into(), y.into()]).unwrap();
        let middle = b.or_gate("middle", [inner.into(), y.into()]).unwrap();
        let single = b.or_gate("single", [z.into()]).unwrap();
        let top = b
            .or_gate("top", [middle.into(), single.into(), z.into()])
            .unwrap();
        let tree = b.build(top.into()).unwrap();
        let simplified = simplify(&tree);
        assert_equivalent(&tree, &simplified);
        // Everything collapses into a single OR over {x, y, z}.
        assert_eq!(simplified.num_gates(), 1);
        assert_eq!(simplified.gates()[0].inputs().len(), 3);
    }

    #[test]
    fn simplify_collapses_single_input_chains_to_an_event_top() {
        let mut b = FaultTreeBuilder::new("chain");
        let x = b.basic_event("x", 0.5).unwrap();
        let g1 = b.or_gate("g1", [x.into()]).unwrap();
        let g2 = b.and_gate("g2", [g1.into()]).unwrap();
        let tree = b.build(g2.into()).unwrap();
        let simplified = simplify(&tree);
        assert_eq!(simplified.num_gates(), 0);
        assert!(matches!(simplified.top(), NodeId::Event(_)));
        assert_equivalent(&tree, &simplified);
    }

    #[test]
    fn simplify_does_not_flatten_voting_gates() {
        let mut b = FaultTreeBuilder::new("vote");
        let events: Vec<_> = (0..4)
            .map(|i| b.basic_event(format!("e{i}"), 0.1).unwrap())
            .collect();
        let inner = b
            .voting_gate("inner", 2, events[..3].iter().map(|&e| e.into()))
            .unwrap();
        let top = b
            .voting_gate("top", 2, [inner.into(), events[3].into(), events[0].into()])
            .unwrap();
        let tree = b.build(top.into()).unwrap();
        let simplified = simplify(&tree);
        assert_eq!(simplified.num_gates(), 2);
        assert_equivalent(&tree, &simplified);
    }

    #[test]
    fn success_tree_is_the_complement_of_the_fault_tree() {
        for tree in [fire_protection_system(), redundant_sensor_network()] {
            let dual = success_tree(&tree);
            assert!(dual.validate().is_ok());
            assert_eq!(dual.num_events(), tree.num_events());
            let n = tree.num_events();
            for mask in 0..(1u32 << n) {
                let occurred: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                let complemented: Vec<bool> = occurred.iter().map(|b| !b).collect();
                assert_eq!(
                    dual.evaluate(&complemented),
                    !tree.evaluate(&occurred),
                    "{} mask {mask:b}",
                    tree.name()
                );
            }
        }
    }

    #[test]
    fn dual_structure_evaluates_to_the_dual_boolean_function() {
        // f*(x) = ¬f(¬x): the dual structure on an assignment equals the
        // negation of the original on the complemented assignment.
        for tree in [fire_protection_system(), redundant_sensor_network()] {
            let dual = dual_structure(&tree);
            assert!(dual.validate().is_ok());
            assert_eq!(dual.num_events(), tree.num_events());
            let x1 = tree.events()[0].clone();
            assert_eq!(dual.events()[0].name(), x1.name());
            assert_eq!(
                dual.events()[0].probability().value(),
                x1.probability().value()
            );
            let n = tree.num_events();
            for mask in 0..(1u32 << n) {
                let occurred: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                let complemented: Vec<bool> = occurred.iter().map(|b| !b).collect();
                assert_eq!(
                    dual.evaluate(&occurred),
                    !tree.evaluate(&complemented),
                    "{} mask {mask:b}",
                    tree.name()
                );
            }
        }
    }

    #[test]
    fn dual_of_the_dual_is_the_original_function() {
        let tree = redundant_sensor_network();
        let twice = dual_structure(&dual_structure(&tree));
        let n = tree.num_events();
        for mask in 0..(1u32 << n) {
            let occurred: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            assert_eq!(twice.evaluate(&occurred), tree.evaluate(&occurred));
        }
    }

    #[test]
    fn success_tree_complements_names_and_probabilities() {
        let tree = fire_protection_system();
        let dual = success_tree(&tree);
        let x1 = tree.event_by_name("x1").unwrap();
        assert_eq!(dual.event(x1).name(), "not(x1)");
        assert!((dual.event(x1).probability().value() - 0.8).abs() < 1e-12);
        assert!(dual.name().contains("success"));
    }
}
