//! CNF preprocessing: cheap simplifications applied before search.
//!
//! Production SAT pipelines shrink the input formula before handing it to the
//! CDCL engine. This module implements the standard inprocessing-free subset,
//! sufficient for the fault-tree CNFs produced by the Tseitin encoder:
//!
//! * clause normalisation — duplicate-literal removal and tautology deletion,
//! * top-level unit propagation to fixpoint, with conflict detection,
//! * pure-literal elimination,
//! * clause subsumption and self-subsuming resolution (strengthening).
//!
//! The result is *equisatisfiable* with the input over the same variable set;
//! [`PreprocessResult::forced`] lists the literals the preprocessor fixed so
//! callers can rebuild a full model of the original formula from a model of
//! the simplified one (see [`PreprocessResult::extend_model`]).
//!
//! Note that pure-literal elimination is only sound for a standalone
//! satisfiability query. Callers that add clauses incrementally or attach
//! soft clauses to the variables (as the MaxSAT layer does) should use
//! [`PreprocessConfig::for_incremental`], which keeps every variable.

use std::collections::HashSet;

use crate::cnf::CnfFormula;
use crate::lit::Lit;

/// Which simplifications to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PreprocessConfig {
    /// Propagate top-level unit clauses to fixpoint.
    pub unit_propagation: bool,
    /// Fix literals that occur in only one polarity.
    pub pure_literals: bool,
    /// Remove clauses subsumed by smaller clauses and strengthen clauses by
    /// self-subsuming resolution.
    pub subsumption: bool,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            unit_propagation: true,
            pure_literals: true,
            subsumption: true,
        }
    }
}

impl PreprocessConfig {
    /// A configuration that is safe when more clauses (or soft clauses over
    /// the same variables) will be added later: pure-literal elimination is
    /// disabled because purity is not stable under clause addition.
    pub fn for_incremental() -> Self {
        PreprocessConfig {
            pure_literals: false,
            ..PreprocessConfig::default()
        }
    }
}

/// Counters describing what the preprocessor did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Tautological clauses removed.
    pub tautologies: usize,
    /// Literals fixed by top-level unit propagation.
    pub propagated_units: usize,
    /// Literals fixed by pure-literal elimination.
    pub pure_literals: usize,
    /// Clauses removed because another clause subsumes them.
    pub subsumed: usize,
    /// Literals removed by self-subsuming resolution.
    pub strengthened: usize,
}

/// The outcome of preprocessing.
#[derive(Clone, Debug)]
pub struct PreprocessResult {
    /// The simplified formula (same variable numbering as the input).
    pub formula: CnfFormula,
    /// `true` if the input was proven unsatisfiable at the top level.
    pub conflict: bool,
    /// Literals fixed by the preprocessor (unit propagation and pure
    /// literals). Models of [`formula`](Self::formula) must be extended with
    /// these to obtain models of the original input.
    pub forced: Vec<Lit>,
    /// What was simplified.
    pub stats: PreprocessStats,
}

impl PreprocessResult {
    /// Extends a model of the simplified formula into a model of the original
    /// formula by applying the forced literals (later entries win, matching
    /// the order in which they were derived).
    pub fn extend_model(&self, model: &mut [bool]) {
        for &lit in &self.forced {
            if lit.var().index() < model.len() {
                model[lit.var().index()] = lit.is_positive();
            }
        }
    }
}

/// Runs the default preprocessing pipeline.
pub fn preprocess(cnf: &CnfFormula) -> PreprocessResult {
    preprocess_with(cnf, PreprocessConfig::default())
}

/// Runs preprocessing with an explicit configuration.
pub fn preprocess_with(cnf: &CnfFormula, config: PreprocessConfig) -> PreprocessResult {
    let num_vars = cnf.num_vars();
    let mut stats = PreprocessStats::default();

    // Phase 0: normalise clauses (dedup literals, drop tautologies).
    let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(cnf.num_clauses());
    for clause in cnf.clauses() {
        let mut lits: Vec<Lit> = clause.to_vec();
        lits.sort_by_key(|l| l.code());
        lits.dedup();
        let tautology = lits
            .windows(2)
            .any(|pair| pair[0].var() == pair[1].var() && pair[0] != pair[1]);
        if tautology {
            stats.tautologies += 1;
            continue;
        }
        clauses.push(lits);
    }

    // assignment[var] = Some(value) once a literal is fixed.
    let mut assignment: Vec<Option<bool>> = vec![None; num_vars];
    let mut forced: Vec<Lit> = Vec::new();
    let mut conflict = false;

    let fix = |lit: Lit,
               assignment: &mut Vec<Option<bool>>,
               forced: &mut Vec<Lit>,
               conflict: &mut bool| {
        match assignment[lit.var().index()] {
            Some(value) if value != lit.is_positive() => *conflict = true,
            Some(_) => {}
            None => {
                assignment[lit.var().index()] = Some(lit.is_positive());
                forced.push(lit);
            }
        }
    };

    // Phase 1 + 2: alternate unit propagation and pure-literal elimination
    // until neither makes progress.
    loop {
        let mut progress = false;

        if config.unit_propagation && !conflict {
            loop {
                let mut changed = false;
                let mut remaining: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
                for clause in clauses.drain(..) {
                    let mut reduced: Vec<Lit> = Vec::with_capacity(clause.len());
                    let mut satisfied = false;
                    for &lit in &clause {
                        match assignment[lit.var().index()] {
                            Some(value) if value == lit.is_positive() => {
                                satisfied = true;
                                break;
                            }
                            Some(_) => {}
                            None => reduced.push(lit),
                        }
                    }
                    if satisfied {
                        changed = true;
                        continue;
                    }
                    match reduced.len() {
                        0 => {
                            conflict = true;
                            changed = true;
                        }
                        1 => {
                            stats.propagated_units += 1;
                            fix(reduced[0], &mut assignment, &mut forced, &mut conflict);
                            changed = true;
                        }
                        _ => {
                            if reduced.len() != clause.len() {
                                changed = true;
                            }
                            remaining.push(reduced);
                        }
                    }
                }
                clauses = remaining;
                if !changed || conflict {
                    break;
                }
                progress = true;
            }
        }

        if config.pure_literals && !conflict {
            let mut positive = vec![false; num_vars];
            let mut negative = vec![false; num_vars];
            for clause in &clauses {
                for &lit in clause {
                    if lit.is_positive() {
                        positive[lit.var().index()] = true;
                    } else {
                        negative[lit.var().index()] = true;
                    }
                }
            }
            let mut pure: Vec<Lit> = Vec::new();
            for index in 0..num_vars {
                if assignment[index].is_some() {
                    continue;
                }
                match (positive[index], negative[index]) {
                    (true, false) => pure.push(Lit::positive(crate::lit::Var::from_index(index))),
                    (false, true) => pure.push(Lit::negative(crate::lit::Var::from_index(index))),
                    _ => {}
                }
            }
            if !pure.is_empty() {
                progress = true;
                for lit in pure {
                    stats.pure_literals += 1;
                    fix(lit, &mut assignment, &mut forced, &mut conflict);
                }
                // Remove the (now satisfied) clauses containing a pure literal.
                clauses.retain(|clause| {
                    !clause
                        .iter()
                        .any(|lit| assignment[lit.var().index()] == Some(lit.is_positive()))
                });
            }
        }

        if !progress || conflict {
            break;
        }
    }

    // Phase 3: subsumption and self-subsuming resolution (quadratic with an
    // early size filter; the fault-tree CNFs have short clauses).
    if config.subsumption && !conflict {
        clauses.sort_by_key(Vec::len);
        let mut kept: Vec<Vec<Lit>> = Vec::with_capacity(clauses.len());
        'outer: for mut clause in clauses {
            loop {
                let mut strengthened = false;
                for small in &kept {
                    if small.len() > clause.len() {
                        break;
                    }
                    match subsumes_or_strengthens(small, &clause) {
                        Subsumption::Subsumed => {
                            stats.subsumed += 1;
                            continue 'outer;
                        }
                        Subsumption::Strengthen(lit) => {
                            clause.retain(|&l| l != lit);
                            stats.strengthened += 1;
                            strengthened = true;
                            break;
                        }
                        Subsumption::None => {}
                    }
                }
                if !strengthened {
                    break;
                }
                if clause.is_empty() {
                    conflict = true;
                    break 'outer;
                }
            }
            kept.push(clause);
        }
        clauses = kept;
    }

    let mut formula = CnfFormula::with_vars(num_vars);
    if conflict {
        formula.add_clause(Vec::<Lit>::new());
    } else {
        for clause in clauses {
            formula.add_clause(clause);
        }
    }
    PreprocessResult {
        formula,
        conflict,
        forced,
        stats,
    }
}

enum Subsumption {
    /// The small clause subsumes the big one (every literal occurs in it).
    Subsumed,
    /// Self-subsuming resolution applies: all but one literal of the small
    /// clause occur in the big one, and that one occurs negated — the negated
    /// occurrence can be removed from the big clause.
    Strengthen(Lit),
    /// Neither relation holds.
    None,
}

fn subsumes_or_strengthens(small: &[Lit], big: &[Lit]) -> Subsumption {
    let big_set: HashSet<Lit> = big.iter().copied().collect();
    let mut flipped: Option<Lit> = None;
    for &lit in small {
        if big_set.contains(&lit) {
            continue;
        }
        if big_set.contains(&!lit) && flipped.is_none() {
            flipped = Some(!lit);
            continue;
        }
        return Subsumption::None;
    }
    match flipped {
        None => Subsumption::Subsumed,
        Some(lit) => Subsumption::Strengthen(lit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;
    use crate::solver::{SolveResult, Solver};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lit(index: usize, positive: bool) -> Lit {
        Lit::new(Var::from_index(index), !positive)
    }

    #[test]
    fn tautologies_and_duplicates_are_removed() {
        let mut cnf = CnfFormula::with_vars(3);
        cnf.add_clause([lit(0, true), lit(0, false)]); // tautology
        cnf.add_clause([lit(1, true), lit(1, true), lit(2, false)]); // duplicate literal
                                                                     // Normalisation only, so the surviving clause is observable.
        let result = preprocess_with(
            &cnf,
            PreprocessConfig {
                unit_propagation: false,
                pure_literals: false,
                subsumption: false,
            },
        );
        assert!(!result.conflict);
        assert_eq!(result.stats.tautologies, 1);
        let clauses: Vec<&[Lit]> = result.formula.clauses().collect();
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0].len(), 2);
        // With the full pipeline both remaining literals are pure and the
        // formula collapses to the empty (trivially satisfiable) formula.
        let full = preprocess(&cnf);
        assert!(!full.conflict);
        assert_eq!(full.formula.num_clauses(), 0);
        assert_eq!(full.stats.pure_literals, 2);
    }

    #[test]
    fn unit_propagation_fixes_chains_and_detects_conflicts() {
        // x0, x0 → x1, x1 → x2 : all three forced true.
        let mut cnf = CnfFormula::with_vars(3);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false), lit(1, true)]);
        cnf.add_clause([lit(1, false), lit(2, true)]);
        let result = preprocess(&cnf);
        assert!(!result.conflict);
        assert_eq!(result.forced.len(), 3);
        assert_eq!(result.formula.num_clauses(), 0);
        let mut model = vec![false; 3];
        result.extend_model(&mut model);
        assert_eq!(model, vec![true, true, true]);

        // x0 and ¬x0: conflict at the top level.
        let mut cnf = CnfFormula::with_vars(1);
        cnf.add_clause([lit(0, true)]);
        cnf.add_clause([lit(0, false)]);
        let result = preprocess(&cnf);
        assert!(result.conflict);
        let mut solver = Solver::from_cnf(&result.formula);
        assert!(matches!(solver.solve(), SolveResult::Unsat));
    }

    #[test]
    fn pure_literals_are_eliminated_only_in_standalone_mode() {
        // x0 occurs only positively; x1 both ways.
        let mut cnf = CnfFormula::with_vars(2);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        cnf.add_clause([lit(0, true), lit(1, false)]);
        let standalone = preprocess(&cnf);
        assert_eq!(standalone.stats.pure_literals, 1);
        assert_eq!(standalone.formula.num_clauses(), 0);

        let incremental = preprocess_with(&cnf, PreprocessConfig::for_incremental());
        assert_eq!(incremental.stats.pure_literals, 0);
        assert_eq!(incremental.formula.num_clauses(), 2);
    }

    #[test]
    fn subsumption_removes_supersets_and_strengthens_clauses() {
        let mut cnf = CnfFormula::with_vars(4);
        cnf.add_clause([lit(0, true), lit(1, true)]);
        // Subsumed by the first clause.
        cnf.add_clause([lit(0, true), lit(1, true), lit(2, true)]);
        // Self-subsuming resolution with the first clause removes ¬x1.
        cnf.add_clause([lit(0, true), lit(1, false), lit(3, true)]);
        let result = preprocess_with(
            &cnf,
            PreprocessConfig {
                unit_propagation: false,
                pure_literals: false,
                subsumption: true,
            },
        );
        assert!(!result.conflict);
        assert_eq!(result.stats.subsumed, 1);
        assert_eq!(result.stats.strengthened, 1);
        let mut lengths: Vec<usize> = result.formula.clauses().map(<[Lit]>::len).collect();
        lengths.sort_unstable();
        assert_eq!(lengths, vec![2, 2]);
    }

    #[test]
    fn preprocessing_preserves_satisfiability_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(20200505);
        for case in 0..60 {
            let num_vars = rng.gen_range(3..10);
            let num_clauses = rng.gen_range(2..30);
            let mut cnf = CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..4);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| lit(rng.gen_range(0..num_vars), rng.gen()))
                    .collect();
                cnf.add_clause(clause);
            }
            let original_sat = matches!(Solver::from_cnf(&cnf).solve(), SolveResult::Sat(_));
            let result = preprocess(&cnf);
            if result.conflict {
                assert!(!original_sat, "case {case}: spurious conflict");
                continue;
            }
            match Solver::from_cnf(&result.formula).solve() {
                SolveResult::Sat(model) => {
                    assert!(original_sat, "case {case}: spurious model");
                    // The preprocessed model plus the forced literals must
                    // satisfy the original formula.
                    let mut full: Vec<bool> = (0..num_vars)
                        .map(|v| model.value(Var::from_index(v)))
                        .collect();
                    result.extend_model(&mut full);
                    assert_eq!(
                        cnf.evaluate(&full),
                        Some(true),
                        "case {case}: extended model does not satisfy the input"
                    );
                }
                SolveResult::Unsat => {
                    assert!(!original_sat, "case {case}: lost satisfiability");
                }
                SolveResult::Interrupted => unreachable!("no interrupt hook installed"),
            }
        }
    }
}
