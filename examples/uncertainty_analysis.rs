//! Uncertainty analysis on a cyber-physical fault tree.
//!
//! Event probabilities in a risk model are estimates, not measurements. This
//! example takes the water-treatment SCADA tree and asks how much the
//! headline numbers — the top-event probability and the identity of the
//! Maximum Probability Minimal Cut Set — can be trusted:
//!
//! 1. estimate the top-event probability by Monte Carlo sampling and compare
//!    it with the exact BDD value,
//! 2. propagate a multiplicative error factor on every event probability and
//!    report the resulting 5%/50%/95% percentiles,
//! 3. compute the MPMCS stability margins: how far each member probability
//!    can drop before a different cut set becomes the most probable one.
//!
//! Run with: `cargo run --release --example uncertainty_analysis`

use bdd_engine::{compile_fault_tree, VariableOrdering};
use fault_tree::examples::water_treatment_scada;
use ft_analysis::mocus::Mocus;
use ft_analysis::montecarlo::{
    estimate_top_probability, propagate_uncertainty, MonteCarloConfig, UncertaintyModel,
};
use ft_analysis::sensitivity::{tornado, MpmcsStability};
use mpmcs::MpmcsSolver;

fn main() {
    let tree = water_treatment_scada();
    println!("system: {}", tree.name());
    println!(
        "{} basic events, {} gates\n",
        tree.num_events(),
        tree.num_gates()
    );

    // The paper's pipeline: the most probable minimal cut set.
    let solution = MpmcsSolver::new()
        .solve(&tree)
        .expect("the SCADA tree has cut sets");
    println!(
        "MPMCS: {} with probability {:.4}",
        solution.cut_set.display_names(&tree),
        solution.probability
    );

    // Exact vs sampled top-event probability.
    let exact =
        compile_fault_tree(&tree, VariableOrdering::DepthFirst).top_event_probability(&tree);
    let config = MonteCarloConfig {
        samples: 200_000,
        seed: 2020,
    };
    let estimate = estimate_top_probability(&tree, &config);
    println!("\ntop-event probability");
    println!("  exact (BDD):        {exact:.6}");
    println!(
        "  Monte Carlo:        {:.6}  (95% CI [{:.6}, {:.6}], {} samples)",
        estimate.mean, estimate.ci95_low, estimate.ci95_high, estimate.samples
    );

    // Uncertainty propagation with an error factor of 3 on every probability.
    let cut_sets = Mocus::new(&tree)
        .minimal_cut_sets()
        .expect("the SCADA tree is small");
    let report = propagate_uncertainty(
        &tree,
        &cut_sets,
        UncertaintyModel::ErrorFactor(3.0),
        &config,
    );
    println!("\nuncertainty propagation (error factor 3 on every event)");
    println!(
        "  P05 / median / P95: {:.6} / {:.6} / {:.6}",
        report.p05, report.p50, report.p95
    );
    println!(
        "  MPMCS identity changes in {:.1}% of the sampled worlds",
        report.mpmcs_switch_rate * 100.0
    );

    // Which probability estimates matter most (tornado) and how stable the
    // MPMCS is against them.
    println!("\ntornado analysis (each probability halved / doubled), top 3 swings:");
    for bar in tornado(&tree, &cut_sets, 2.0).into_iter().take(3) {
        println!(
            "  {:<40} swing {:.6} (low {:.6}, high {:.6})",
            tree.event(bar.event).name(),
            bar.swing,
            bar.low,
            bar.high
        );
    }

    let stability = MpmcsStability::of(&tree, &cut_sets).expect("cut sets exist");
    println!("\n{}", stability.render(&tree));
}
