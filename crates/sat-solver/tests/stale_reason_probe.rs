#[test]
fn inprocess_ssr_unit_leaves_reasons_live() {
    use sat_solver::{Lit, Var, Solver};
    let p = |i: usize| Lit::positive(Var::from_index(i));
    let n = |i: usize| Lit::negative(Var::from_index(i));
    let mut s = Solver::new();
    s.ensure_vars(3);
    s.add_clause([p(0), p(1)]);
    s.add_clause([n(0), p(1)]); // SSR on x0 -> unit x1
    s.add_clause([n(1), p(2)]); // propagates x2 with this clause as reason
    s.inprocess_now();
    assert!(s.is_ok());
    s.assert_integrity();
}
