//! Lazy solution streaming — see [`SolutionStream`].

use ft_backend::{BackendSolution, QueryControl};
use mpmcs::{McsStream, StreamStep};

use crate::analyzer::Analyzer;
use crate::results::{SessionError, Termination};

/// What feeds the stream.
enum Source {
    /// A live incremental MaxSAT session: one cut set is proven per pull,
    /// memory stays bounded by the current equal-cost tie group, and
    /// stopping the stream stops the SAT engine.
    Live(Box<McsStream>),
    /// A delegated engine (BDD, MOCUS, preprocessing, explicit linear-su):
    /// these compute the whole family before any solution is known, so the
    /// stream iterates an eagerly collected, canonical answer.
    Collected(std::vec::IntoIter<BackendSolution>),
    /// The delegated computation failed (or was stopped) before producing
    /// anything; the error is delivered once.
    Failed(Option<SessionError>),
}

/// A lazy iterator over minimal cut sets in canonical enumeration order.
///
/// Opened by [`Analyzer::stream`]. The stream delivers **byte-identical**
/// solutions to the collected queries: a prefix of length `n` equals the
/// first `n` entries of [`Analyzer::all_mcs`]. The analyzer's budget governs
/// the stream — the wall clock arms when the stream is opened, the solution
/// cap bounds the number of items — and [`SolutionStream::termination`]
/// reports how the stream ended.
///
/// ```rust
/// use fault_tree::examples::fire_protection_system;
/// use ft_session::{Analyzer, Termination};
///
/// let analyzer = Analyzer::for_tree(fire_protection_system());
/// let mut names = Vec::new();
/// let mut stream = analyzer.stream();
/// for solution in stream.by_ref() {
///     names.push(solution.unwrap().cut_set.display_names(analyzer.tree()));
/// }
/// assert_eq!(names.len(), 5);
/// assert_eq!(names[0], "{x1, x2}"); // the MPMCS arrives first
/// assert_eq!(stream.termination(), Some(Termination::Complete));
/// ```
pub struct SolutionStream {
    source: Source,
    control: QueryControl,
    cap: Option<usize>,
    delivered: usize,
    termination: Option<Termination>,
}

impl std::fmt::Debug for SolutionStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolutionStream")
            .field("delivered", &self.delivered)
            .field("cap", &self.cap)
            .field("termination", &self.termination)
            .field("live", &matches!(self.source, Source::Live(_)))
            .finish()
    }
}

impl SolutionStream {
    pub(crate) fn open(analyzer: &Analyzer) -> SolutionStream {
        let control = analyzer.control();
        let cap = analyzer.query_budget().max_solutions_limit();
        let source = if analyzer.uses_warm_session() {
            let mut live = McsStream::open(analyzer.shared_tree(), analyzer.mpmcs_options());
            live.set_interrupt(Some(control.interrupt_hook()));
            Source::Live(Box::new(live))
        } else {
            match analyzer
                .build_backend()
                .all_mcs_under(analyzer.tree(), &control)
            {
                Ok(enumerated) => {
                    if let Some(cause) = enumerated.stopped {
                        // The delegated engine stopped before completing;
                        // mark the termination up front so iteration over
                        // whatever prefix it proved ends cleanly.
                        return SolutionStream {
                            source: Source::Collected(enumerated.solutions.into_iter()),
                            control,
                            cap,
                            delivered: 0,
                            termination: Some(Termination::from(cause)),
                        };
                    }
                    Source::Collected(enumerated.solutions.into_iter())
                }
                Err(error) => Source::Failed(Some(error.into())),
            }
        };
        SolutionStream {
            source,
            control,
            cap,
            delivered: 0,
            termination: None,
        }
    }

    /// How the stream ended: `None` while items may still come,
    /// [`Termination::Complete`] after the family was exhausted, and a
    /// truncated termination when the cap, deadline or cancellation cut the
    /// stream short.
    pub fn termination(&self) -> Option<Termination> {
        self.termination
    }

    /// Number of solutions delivered so far.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Cumulative SAT-solver calls issued by the live session (`None` for
    /// delegated engines) — the early-exit witness used by the regression
    /// tests: a stream stopped after `n` of `N` solutions has issued SAT
    /// calls proportional to `n`.
    pub fn sat_calls(&self) -> Option<u64> {
        match &self.source {
            Source::Live(live) => Some(live.sat_calls()),
            _ => None,
        }
    }
}

impl Iterator for SolutionStream {
    type Item = Result<BackendSolution, SessionError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.termination.is_some() {
            return None;
        }
        if self.cap.is_some_and(|cap| self.delivered >= cap) {
            // The cap ended the stream; when the family happens to be
            // exactly cap-sized the live session already knows.
            let complete = match &self.source {
                Source::Live(live) => live.is_exhausted(),
                Source::Collected(rest) => rest.len() == 0,
                Source::Failed(_) => false,
            };
            self.termination = Some(if complete {
                Termination::Complete
            } else {
                Termination::SolutionCap
            });
            return None;
        }
        match &mut self.source {
            Source::Failed(error) => {
                self.termination = Some(Termination::Failed);
                error.take().map(Err)
            }
            Source::Collected(rest) => match rest.next() {
                Some(solution) => {
                    self.delivered += 1;
                    Some(Ok(solution))
                }
                None => {
                    self.termination = Some(Termination::Complete);
                    None
                }
            },
            Source::Live(live) => {
                if let Some(cause) = self.control.stop_cause() {
                    self.termination = Some(Termination::from(cause));
                    return None;
                }
                match live.next_step() {
                    Ok(StreamStep::Solution(solution)) => {
                        self.delivered += 1;
                        Some(Ok(BackendSolution::from_mpmcs(solution)))
                    }
                    Ok(StreamStep::Exhausted) => {
                        self.termination = Some(Termination::Complete);
                        None
                    }
                    Ok(StreamStep::Interrupted) => {
                        self.termination = Some(
                            self.control
                                .stop_cause()
                                .map_or(Termination::Cancelled, Termination::from),
                        );
                        None
                    }
                    Err(error) => {
                        self.termination = Some(Termination::Failed);
                        Some(Err(error.into()))
                    }
                }
            }
        }
    }
}
