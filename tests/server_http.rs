//! Socket-level integration suite for the `ft-server` HTTP front end.
//!
//! The server promises that its JSON answers are **byte-identical** to the
//! CLI's for the same tree and flags — both render through
//! `ft_session::report`, and this suite holds them to it over a real TCP
//! socket, for every bundled model × backend, with many clients in flight
//! at once. On top of the identity matrix it checks the protocol edges:
//! chunked streams reassemble to exactly the collected answer, budget
//! expiry yields a labelled envelope instead of a silently short answer,
//! malformed requests get clean 4xx JSON errors, and a graceful shutdown
//! drains requests that were already on the wire.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ft_server::http::{read_response, ClientResponse};
use ft_server::{Server, ServerConfig, ServerHandle};

const BACKENDS: [&str; 3] = ["maxsat", "bdd", "mocus"];

fn start(workers: usize, queue_depth: usize) -> ServerHandle {
    Server::start(ServerConfig {
        workers,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("the server binds an ephemeral loopback port")
}

fn send(addr: SocketAddr, request: &str) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to the test server");
    stream
        .write_all(request.as_bytes())
        .expect("write the request");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader).expect("read the response")
}

fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    send(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, path: &str, body: &str) -> ClientResponse {
    send(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Strips the per-solution wall-clock line — the only run-dependent bytes
/// in a report. The CLI suite redacts the same way.
fn redact(text: &str) -> String {
    text.lines()
        .filter(|line| !line.contains("\"solve_time_ms\""))
        .collect::<Vec<_>>()
        .join("\n")
}

fn cli(args: &[&str]) -> String {
    let options = mpmcs4fta_cli::parse_args(args.iter().copied()).expect("valid CLI flags");
    mpmcs4fta_cli::run_with_status(&options)
        .expect("the CLI run succeeds")
        .output
}

fn bundled_models() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("examples/trees/ ships with the repository")
        .map(|entry| entry.expect("readable directory entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "examples/trees/ must not be empty");
    paths
}

/// Uploads a model file and returns the content hash the server filed it
/// under.
fn upload(addr: SocketAddr, path: &Path) -> String {
    let text = std::fs::read_to_string(path).expect("readable model file");
    let format = if path.extension().and_then(|e| e.to_str()) == Some("json") {
        "json"
    } else {
        "galileo"
    };
    let response = post(addr, &format!("/trees?format={format}"), &text);
    assert!(
        response.status == 201 || response.status == 200,
        "upload of {} answered {}: {}",
        path.display(),
        response.status,
        response.text()
    );
    let entry: serde_json::Value = serde_json::from_str(&response.text()).expect("JSON entry");
    entry["hash"]
        .as_str()
        .expect("the upload answer carries the content hash")
        .to_string()
}

/// The backend flags the CLI needs to mirror a server query: the server
/// always runs the deterministic sequential portfolio, which the CLI only
/// accepts (or needs) for the MaxSAT backend.
fn cli_backend_flags(backend: &str) -> Vec<&str> {
    if backend == "maxsat" {
        vec!["--backend", backend, "--algorithm", "sequential"]
    } else {
        vec!["--backend", backend]
    }
}

/// The identity matrix: every bundled model × backend, exercised by
/// concurrent clients (one thread per combination — far more than four in
/// flight at once). For each combination the server's `mpmcs`, `top-k` and
/// `all-mcs` answers must be byte-identical to the CLI's, and the chunked
/// stream of `all-mcs` must reassemble to exactly the collected answer.
#[test]
fn server_answers_are_byte_identical_to_the_cli_for_every_model_and_backend() {
    let handle = start(4, 64);
    let addr = handle.addr();
    let cases: Vec<(String, PathBuf)> = bundled_models()
        .into_iter()
        .map(|path| (upload(addr, &path), path))
        .collect();

    let threads: Vec<_> = cases
        .into_iter()
        .flat_map(|(hash, path)| {
            BACKENDS.into_iter().map(move |backend| {
                let hash = hash.clone();
                let path = path.clone();
                std::thread::spawn(move || {
                    let model = path.to_str().expect("UTF-8 path");
                    let flags = cli_backend_flags(backend);

                    // The MPMCS report.
                    let response = get(addr, &format!("/trees/{hash}/mpmcs?backend={backend}"));
                    assert_eq!(response.status, 200, "{model}/{backend}: {}", response.text());
                    let mut args = vec![model];
                    args.extend_from_slice(&flags);
                    assert_eq!(
                        redact(&response.text()),
                        redact(&cli(&args)),
                        "{model} × {backend}: mpmcs differs between server and CLI"
                    );

                    // The two most probable cut sets.
                    let response = get(addr, &format!("/trees/{hash}/top-k?backend={backend}&k=2"));
                    assert_eq!(response.status, 200, "{model}/{backend}: {}", response.text());
                    let mut args = vec![model, "--top-k", "2"];
                    args.extend_from_slice(&flags);
                    assert_eq!(
                        redact(&response.text()),
                        redact(&cli(&args)),
                        "{model} × {backend}: top-k differs between server and CLI"
                    );

                    // The full enumeration, collected …
                    let collected = get(addr, &format!("/trees/{hash}/all-mcs?backend={backend}"));
                    assert_eq!(collected.status, 200);
                    let mut args = vec![model, "--all"];
                    args.extend_from_slice(&flags);
                    assert_eq!(
                        redact(&collected.text()),
                        redact(&cli(&args)),
                        "{model} × {backend}: all-mcs differs between server and CLI"
                    );

                    // … and streamed: the chunks must reassemble to exactly
                    // the collected bytes, with the verdict in the trailers.
                    let streamed =
                        get(addr, &format!("/trees/{hash}/all-mcs?backend={backend}&stream=true"));
                    assert_eq!(streamed.status, 200);
                    assert_eq!(
                        redact(&streamed.text()),
                        redact(&collected.text()),
                        "{model} × {backend}: the stream does not reassemble to the collected answer"
                    );
                    assert_eq!(streamed.trailer("x-termination"), Some("complete"));
                    assert_eq!(streamed.trailer("x-truncated"), Some("false"));
                })
            })
        })
        .collect();
    assert!(threads.len() >= 4, "the matrix must exercise concurrency");
    for thread in threads {
        thread.join().expect("a comparison thread panicked");
    }
    handle.shutdown();
}

/// The analysis endpoints beyond enumeration: `probability`, `importance`
/// and `sweep` must match the shared renderers (and, for sweeps, the CLI's
/// `--sweep`) byte for byte.
#[test]
fn analysis_endpoints_match_the_shared_renderers() {
    let handle = start(2, 16);
    let addr = handle.addr();
    let model_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees/fire_protection.json");
    let model = model_path.to_str().expect("UTF-8 path");
    let hash = upload(addr, &model_path);

    let text = std::fs::read_to_string(&model_path).expect("readable model");
    let tree = std::sync::Arc::new(
        fault_tree::parser::json::from_json_str(&text).expect("valid bundled model"),
    );

    for backend in BACKENDS {
        let kind = ft_backend::BackendKind::parse(backend).expect("known backend");

        let response = get(
            addr,
            &format!("/trees/{hash}/probability?backend={backend}"),
        );
        assert_eq!(response.status, 200);
        let mut analyzer = ft_session::Analyzer::for_shared(std::sync::Arc::clone(&tree))
            .backend(kind)
            .algorithm(mpmcs::AlgorithmChoice::SequentialPortfolio);
        let resolved = analyzer.resolved_backend();
        let probability = analyzer.probability().expect("probability query succeeds");
        assert_eq!(
            response.text(),
            ft_session::report::render_probability(&tree, resolved, false, probability),
            "{backend}: probability differs from the facade rendering"
        );

        let response = get(addr, &format!("/trees/{hash}/importance?backend={backend}"));
        assert_eq!(response.status, 200);
        let table = analyzer.importance().expect("importance query succeeds");
        assert_eq!(
            response.text(),
            ft_session::report::render_importance(&table),
            "{backend}: importance differs from the facade rendering"
        );
    }

    // Sweeps against the CLI, in both output formats.
    let response = get(addr, &format!("/trees/{hash}/sweep?range=0:2:0.5"));
    assert_eq!(response.status, 200);
    assert_eq!(
        response.text(),
        cli(&[model, "--algorithm", "sequential", "--sweep", "0:2:0.5"]),
        "sweep (json) differs between server and CLI"
    );
    let response = get(
        addr,
        &format!("/trees/{hash}/sweep?range=0:2:0.5&format=csv"),
    );
    assert_eq!(response.status, 200);
    assert_eq!(
        response.text(),
        cli(&[
            model,
            "--algorithm",
            "sequential",
            "--sweep",
            "0:2:0.5",
            "--sweep-format",
            "csv"
        ]),
        "sweep (csv) differs between server and CLI"
    );
    handle.shutdown();
}

/// Budgets must label, not hide. A `max-solutions` cap and an already-spent
/// deadline both produce the explicit envelope with `truncated`/`termination`
/// fields, in bounded time even on the largest bundled model.
#[test]
fn budget_expiry_is_labelled_and_terminates_in_flight_work() {
    let handle = start(2, 16);
    let addr = handle.addr();
    let model =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees/water_treatment_scada.json");
    let hash = upload(addr, &model);

    // Cap the enumeration below the answer size: solution-cap envelope.
    let response = get(addr, &format!("/trees/{hash}/all-mcs?max-solutions=1"));
    assert_eq!(response.status, 200);
    let envelope: serde_json::Value = serde_json::from_str(&response.text()).expect("JSON");
    assert_eq!(envelope["truncated"], serde_json::json!(true));
    assert_eq!(envelope["termination"], serde_json::json!("solution-cap"));
    assert!(
        envelope.get("report").is_some(),
        "the prefix is still reported"
    );

    // A deadline that has already expired: the query must come back quickly,
    // labelled — never hang, never pretend completeness.
    let start_time = Instant::now();
    let response = get(addr, &format!("/trees/{hash}/all-mcs?timeout-ms=0"));
    assert!(
        start_time.elapsed() < Duration::from_secs(10),
        "an expired budget must terminate in-flight work promptly"
    );
    assert_eq!(response.status, 200);
    let envelope: serde_json::Value = serde_json::from_str(&response.text()).expect("JSON");
    assert_eq!(envelope["truncated"], serde_json::json!(true));
    assert_eq!(envelope["termination"], serde_json::json!("deadline"));

    // A budgeted stream labels the truncation in its trailers.
    let response = get(
        addr,
        &format!("/trees/{hash}/all-mcs?max-solutions=1&stream=true"),
    );
    assert_eq!(response.status, 200);
    assert_eq!(response.trailer("x-truncated"), Some("true"));
    assert_eq!(response.trailer("x-termination"), Some("solution-cap"));
    assert_eq!(response.trailer("x-delivered"), Some("1"));
    handle.shutdown();
}

/// Malformed requests get clean, specific 4xx answers — never a hang, a
/// reset, or a 500.
#[test]
fn malformed_requests_get_clean_4xx_answers() {
    let handle = start(2, 16);
    let addr = handle.addr();
    let model = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees/pressure_tank.dft");
    let hash = upload(addr, &model);

    // Unparseable uploads.
    for (path, body) in [
        ("/trees?format=json", "{ not json"),
        ("/trees?format=galileo", "toplevel or(;;;"),
        ("/trees?format=cobol", "IDENTIFICATION DIVISION."),
    ] {
        let response = post(addr, path, body);
        assert_eq!(response.status, 400, "{path}: {}", response.text());
        let error: serde_json::Value = serde_json::from_str(&response.text()).expect("JSON error");
        assert!(error["error"].as_str().is_some(), "errors carry a message");
    }

    // Unknown trees and endpoints.
    assert_eq!(get(addr, "/trees/no-such-hash/mpmcs").status, 404);
    assert_eq!(get(addr, "/no/such/endpoint").status, 404);

    // Bad query parameters.
    for path in [
        &format!("/trees/{hash}/top-k")[..],
        &format!("/trees/{hash}/top-k?k=0"),
        &format!("/trees/{hash}/top-k?k=many"),
        &format!("/trees/{hash}/mpmcs?backend=quantum"),
        &format!("/trees/{hash}/mpmcs?timeout-ms=soon"),
        &format!("/trees/{hash}/mpmcs?stream=maybe"),
        &format!("/trees/{hash}/sweep?range=5:1:1"),
        &format!("/trees/{hash}/sweep"),
    ] {
        let response = get(addr, path);
        assert_eq!(response.status, 400, "{path}: {}", response.text());
    }

    // Wrong methods advertise what is allowed.
    let response = send(
        addr,
        "PUT /trees HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response.status, 405);
    assert!(response.header("allow").is_some(), "405 carries Allow");

    // A POST with no Content-Length is rejected up front.
    let response = send(
        addr,
        "POST /trees HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(response.status, 411);
    handle.shutdown();
}

/// Graceful shutdown drains work already on the wire: a request written
/// before the shutdown begins still gets its complete answer, and the
/// shutdown itself finishes within a bounded deadline.
#[test]
fn graceful_shutdown_drains_inflight_requests_within_the_deadline() {
    let handle = start(2, 16);
    let addr = handle.addr();
    let model =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees/aircraft_hydraulics.json");
    let hash = upload(addr, &model);

    // Put a request on the wire, give the worker a moment to pick it up …
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET /trees/{hash}/all-mcs HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("write the request");
    std::thread::sleep(Duration::from_millis(100));

    // … then shut the server down from another thread while the answer is
    // still being computed or written.
    let shutdown = std::thread::spawn(move || {
        let start_time = Instant::now();
        handle.shutdown();
        start_time.elapsed()
    });

    let mut reader = BufReader::new(stream);
    let response = read_response(&mut reader).expect("the in-flight request is drained");
    assert_eq!(response.status, 200);
    serde_json::from_str::<serde_json::Value>(&response.text()).expect("a complete JSON answer");

    let elapsed = shutdown.join().expect("shutdown thread");
    assert!(
        elapsed < Duration::from_secs(10),
        "graceful shutdown must finish within the deadline, took {elapsed:?}"
    );
}
