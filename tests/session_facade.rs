//! Acceptance suite for the session-oriented `Analyzer` facade: facade
//! answers must be byte-identical to direct backend calls on every bundled
//! model, streaming must equal the collected path, and budgets/cancellation
//! must stop queries deterministically (a stopped stream's prefix equals the
//! unbudgeted run's prefix).

use std::fs;
use std::path::{Path, PathBuf};

use fault_tree::parser::{galileo, json};
use fault_tree::FaultTree;
use ft_backend::{backend_for, BackendConfig, BackendError, BackendKind};
use ft_session::{AnalysisService, Analyzer, Budget, CancelToken, SessionError, Termination};

fn bundled_trees() -> Vec<(String, FaultTree)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("examples/trees/ ships with the repository")
        .map(|entry| entry.expect("readable directory entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "examples/trees/ must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).expect("readable model file");
            let tree = if path.extension().and_then(|e| e.to_str()) == Some("json") {
                json::from_json_str(&text).expect("valid JSON model")
            } else {
                galileo::parse_galileo(&text).expect("valid Galileo model")
            };
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                tree,
            )
        })
        .collect()
}

/// Byte-level comparison key of a solution: the cut set plus the exact bit
/// patterns of its probability and log weight.
fn key(solution: &ft_backend::BackendSolution) -> (Vec<usize>, u64, u64) {
    (
        solution.cut_set.iter().map(|e| e.index()).collect(),
        solution.probability.to_bits(),
        solution.log_weight.to_bits(),
    )
}

/// The facade's full enumeration must be byte-identical to the direct
/// backend's `all_mcs` on every bundled model, for every engine.
#[test]
fn facade_all_mcs_is_byte_identical_to_direct_backend_calls() {
    for (name, tree) in bundled_trees() {
        for kind in [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus] {
            let (_, backend) = backend_for(kind, &tree, &BackendConfig::default());
            let direct = backend
                .all_mcs(&tree)
                .unwrap_or_else(|e| panic!("{name}/{kind}: direct all_mcs failed: {e}"));
            let mut analyzer = Analyzer::for_tree(tree.clone()).backend(kind);
            let facade = analyzer
                .all_mcs()
                .unwrap_or_else(|e| panic!("{name}/{kind}: facade all_mcs failed: {e}"));
            assert!(!facade.is_truncated(), "{name}/{kind}");
            assert_eq!(facade.solutions.len(), direct.len(), "{name}/{kind}");
            for (f, d) in facade.solutions.iter().zip(&direct) {
                assert_eq!(key(f), key(d), "{name}/{kind}: solutions diverged");
            }
        }
    }
}

/// `top_k(k)` through the facade is the canonical prefix of the full
/// enumeration — and `mpmcs()` is its first entry.
#[test]
fn facade_top_k_and_mpmcs_are_canonical_prefixes() {
    for (name, tree) in bundled_trees() {
        for kind in [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus] {
            let (_, backend) = backend_for(kind, &tree, &BackendConfig::default());
            let full = backend.all_mcs(&tree).expect("bundled models are solvable");
            let mut analyzer = Analyzer::for_tree(tree.clone()).backend(kind);
            let best = analyzer.mpmcs().expect("bundled models are solvable");
            assert_eq!(key(&best), key(&full[0]), "{name}/{kind}: mpmcs");
            for k in [1, 3] {
                let top = analyzer.top_k(k).expect("bundled models are solvable");
                assert_eq!(top.termination, Termination::Complete);
                assert_eq!(top.solutions.len(), k.min(full.len()), "{name}/{kind}");
                for (f, d) in top.solutions.iter().zip(&full) {
                    assert_eq!(key(f), key(d), "{name}/{kind}: top-{k} diverged");
                }
            }
        }
    }
}

/// The facade's exact probability matches the direct backend's (including
/// the typed refusal when the quantification budget is exceeded).
#[test]
fn facade_probability_matches_direct_backends() {
    for (name, tree) in bundled_trees() {
        for kind in [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus] {
            let (_, backend) = backend_for(kind, &tree, &BackendConfig::default());
            let mut analyzer = Analyzer::for_tree(tree.clone()).backend(kind);
            match backend.top_event_probability(&tree) {
                Ok(direct) => {
                    let facade = analyzer
                        .probability()
                        .unwrap_or_else(|e| panic!("{name}/{kind}: facade refused: {e}"));
                    assert_eq!(
                        facade.to_bits(),
                        direct.to_bits(),
                        "{name}/{kind}: probabilities diverged"
                    );
                }
                Err(BackendError::ProbabilityUnsupported { .. }) => {
                    assert!(
                        matches!(
                            analyzer.probability(),
                            Err(SessionError::Backend(
                                BackendError::ProbabilityUnsupported { .. }
                            ))
                        ),
                        "{name}/{kind}: facade must refuse exactly like the backend"
                    );
                }
                Err(other) => panic!("{name}/{kind}: unexpected backend error: {other}"),
            }
        }
    }
}

/// Streaming yields byte-identical solutions to the collected API on every
/// bundled model — the headline redesign's acceptance criterion.
#[test]
fn streaming_is_byte_identical_to_collected_on_all_bundled_trees() {
    for (name, tree) in bundled_trees() {
        let mut analyzer = Analyzer::for_tree(tree);
        let collected = analyzer.all_mcs().expect("bundled models are solvable");
        let streamed: Vec<_> = analyzer
            .stream()
            .map(|item| item.expect("bundled models are solvable"))
            .collect();
        assert_eq!(streamed.len(), collected.solutions.len(), "{name}");
        for (s, c) in streamed.iter().zip(&collected.solutions) {
            assert_eq!(key(s), key(c), "{name}: streamed solutions diverged");
        }
    }
}

/// Early exit: a budget-capped stream of `n` solutions stops the SAT engine
/// instead of enumerating the whole family, witnessed by the SAT-call
/// counters; its storage is bounded by the current tie group plus one
/// look-ahead solution, never the family size.
#[test]
fn capped_streams_exit_early_by_sat_call_count() {
    let (_, tree) = bundled_trees()
        .into_iter()
        .find(|(name, _)| name.contains("water_treatment"))
        .expect("the SCADA model is bundled");

    let full_analyzer = Analyzer::for_tree(tree.clone());
    let mut full_stream = full_analyzer.stream();
    let full: Vec<_> = full_stream
        .by_ref()
        .map(|item| item.expect("solvable"))
        .collect();
    let full_calls = full_stream.sat_calls().expect("live stream");
    assert!(full.len() > 3, "the study needs a non-trivial family");

    let capped_analyzer = Analyzer::for_tree(tree).budget(Budget::unlimited().max_solutions(2));
    let mut capped_stream = capped_analyzer.stream();
    let capped: Vec<_> = capped_stream
        .by_ref()
        .map(|item| item.expect("solvable"))
        .collect();
    let capped_calls = capped_stream.sat_calls().expect("live stream");
    assert_eq!(capped.len(), 2);
    assert_eq!(capped_stream.termination(), Some(Termination::SolutionCap));
    assert!(
        capped_calls < full_calls,
        "early exit must stop the SAT engine: {capped_calls} vs {full_calls}"
    );
    // The capped prefix equals the full run's prefix (cancellation
    // determinism at the solution-cap boundary).
    for (c, f) in capped.iter().zip(&full) {
        assert_eq!(key(c), key(f));
    }
}

/// Cancellation determinism: a stream stopped by a `CancelToken` mid-run has
/// delivered exactly a prefix of what the unbudgeted run delivers.
#[test]
fn cancelled_streams_deliver_a_prefix_of_the_unbudgeted_run() {
    let (_, tree) = bundled_trees()
        .into_iter()
        .find(|(name, _)| name.contains("aircraft"))
        .expect("the hydraulics model is bundled");

    let reference: Vec<_> = Analyzer::for_tree(tree.clone())
        .stream()
        .map(|item| item.expect("solvable"))
        .collect();
    assert!(reference.len() >= 2);

    // Cancel after the second delivery; the stream must stop cleanly and
    // the delivered prefix must match the reference exactly.
    let token = CancelToken::new();
    let analyzer = Analyzer::for_tree(tree).cancel_token(token.clone());
    let mut delivered = Vec::new();
    let mut stream = analyzer.stream();
    for item in stream.by_ref() {
        delivered.push(item.expect("solvable"));
        if delivered.len() == 2 {
            token.cancel();
        }
    }
    assert_eq!(stream.termination(), Some(Termination::Cancelled));
    assert_eq!(delivered.len(), 2);
    for (d, r) in delivered.iter().zip(&reference) {
        assert_eq!(key(d), key(r));
    }

    // Collected queries observe the same cancellation, with partial,
    // well-labelled results.
    let mut cancelled_analyzer = Analyzer::for_tree(fault_tree::examples::fire_protection_system())
        .cancel_token(token.clone());
    let partial = cancelled_analyzer.all_mcs().expect("no cut-set error");
    assert_eq!(partial.termination, Termination::Cancelled);
    assert!(partial.solutions.is_empty());
    assert!(matches!(
        cancelled_analyzer.mpmcs(),
        Err(SessionError::Stopped(_))
    ));
}

/// A pre-expired deadline stops every engine cleanly — including the MOCUS
/// expansion loop and the classical backends — with explicit truncation.
#[test]
fn expired_deadlines_stop_every_backend_cleanly() {
    let tree = fault_tree::examples::fire_protection_system();
    for kind in [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus] {
        let mut analyzer = Analyzer::for_tree(tree.clone())
            .backend(kind)
            .budget(Budget::wall_ms(0));
        let result = analyzer.all_mcs().expect("a stop is not an error");
        assert_eq!(result.termination, Termination::Deadline, "{kind}");
        assert!(result.solutions.is_empty(), "{kind}");
        assert!(matches!(
            analyzer.mpmcs(),
            Err(SessionError::Stopped(Termination::Deadline))
        ));
    }
}

/// Warm reuse: consecutive queries on one analyzer extend the same session
/// instead of re-solving — `top_k(3)` after `top_k(1)` keeps the proven
/// prefix, and `all_mcs()` extends it to exhaustion.
#[test]
fn warm_sessions_extend_across_queries() {
    let (_, tree) = bundled_trees().remove(0);
    let mut analyzer = Analyzer::for_tree(tree);
    assert!(analyzer.uses_warm_session());
    let _ = analyzer.mpmcs().expect("solvable");
    let after_first = analyzer.warm_prefix_len();
    assert!(after_first >= 1);
    let top = analyzer.top_k(3).expect("solvable");
    assert!(analyzer.warm_prefix_len() >= top.solutions.len());
    let all = analyzer.all_mcs().expect("solvable");
    assert_eq!(analyzer.warm_prefix_len(), all.solutions.len());
    // The prefix relation holds across the query sequence.
    for (t, a) in top.solutions.iter().zip(&all.solutions) {
        assert_eq!(key(t), key(a));
    }
}

/// Truncation labelling is precise and consistent across engine paths: a
/// solution cap that exactly matches the family size is `Complete` (exit 0),
/// whether or not a deadline is also configured, for the warm session and
/// the delegated engines alike.
#[test]
fn exact_cap_boundaries_are_labelled_complete_on_every_path() {
    let tree = fault_tree::examples::fire_protection_system(); // exactly 5 cut sets
    for kind in [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus] {
        for with_deadline in [false, true] {
            let budget = if with_deadline {
                Budget::wall_ms(60_000).max_solutions(5)
            } else {
                Budget::unlimited().max_solutions(5)
            };
            let mut analyzer = Analyzer::for_tree(tree.clone())
                .backend(kind)
                .budget(budget);
            let all = analyzer.all_mcs().expect("solvable");
            assert_eq!(all.solutions.len(), 5, "{kind}/{with_deadline}");
            assert_eq!(
                all.termination,
                Termination::Complete,
                "{kind}/deadline={with_deadline}: an exactly-capped complete answer must not be labelled truncated"
            );
            // One below the family size really is truncated — on every path.
            let mut tight =
                Analyzer::for_tree(tree.clone())
                    .backend(kind)
                    .budget(if with_deadline {
                        Budget::wall_ms(60_000).max_solutions(4)
                    } else {
                        Budget::unlimited().max_solutions(4)
                    });
            let capped = tight.all_mcs().expect("solvable");
            assert_eq!(capped.solutions.len(), 4, "{kind}/{with_deadline}");
            assert_eq!(
                capped.termination,
                Termination::SolutionCap,
                "{kind}/deadline={with_deadline}"
            );
        }
    }
}

/// An explicit linear-SAT–UNSAT request is honoured by every facade query —
/// the enumeration must not be silently rerouted to the OLL session.
#[test]
fn linear_su_requests_keep_the_linear_algorithm_on_all_queries() {
    let tree = fault_tree::examples::fire_protection_system();
    let mut analyzer = Analyzer::for_tree(tree).algorithm(ft_session::AlgorithmChoice::LinearSu);
    assert!(!analyzer.uses_warm_session());
    let all = analyzer.all_mcs().expect("solvable");
    assert_eq!(all.solutions.len(), 5);
    assert!(
        all.solutions
            .iter()
            .all(|s| s.algorithm.starts_with("linear-su")),
        "{:?}",
        all.solutions
            .iter()
            .map(|s| s.algorithm.clone())
            .collect::<Vec<_>>()
    );
    let top = analyzer.top_k(2).expect("solvable");
    assert!(top
        .solutions
        .iter()
        .all(|s| s.algorithm.starts_with("linear-su")));
}

/// The thread-safe service: N threads hammering one `AnalysisService` get
/// identical answers, with one shared parsed tree and per-thread sessions.
#[test]
fn service_answers_identically_across_threads() {
    let service = AnalysisService::new();
    for (name, tree) in bundled_trees() {
        service.register(name, tree);
    }
    let names = service.names();
    type ThreadAnswers = Vec<(String, Vec<(Vec<usize>, u64, u64)>)>;
    let per_thread: Vec<ThreadAnswers> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                scope.spawn(|| {
                    names
                        .iter()
                        .map(|name| {
                            let answer = service.top_k(name, 3).expect("bundled models solve");
                            (name.clone(), answer.solutions.iter().map(key).collect())
                        })
                        .collect()
                })
            })
            .map(|handle| handle.join().expect("workers do not panic"))
            .collect()
    });
    for thread in &per_thread {
        assert_eq!(thread, &per_thread[0], "threads must agree exactly");
    }
}

/// Budget-truncated answers are never cached: a capped query inserts nothing
/// into a shared analysis cache, a later uncapped query on the same tree
/// still computes — and then caches — the complete answer, and a third query
/// replays it from the cache bit for bit.
#[test]
fn truncated_results_are_never_cached() {
    use std::sync::Arc;

    use ft_backend::{AnalysisCache, DEFAULT_CACHE_BYTES};

    let tree = ft_generators::wide_or(8, 3);
    for kind in [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus] {
        let cache = Arc::new(AnalysisCache::new(DEFAULT_CACHE_BYTES));
        // Reference: the complete answer, no cache involved.
        let expected = Analyzer::for_tree(tree.clone())
            .backend(kind)
            .top_k(5)
            .expect("solvable");
        assert_eq!(expected.termination, Termination::Complete);
        assert_eq!(expected.solutions.len(), 5);

        // Capped run: stops after 2 of the 5 requested solutions. The
        // truncated family must not be deposited.
        let truncated = Analyzer::for_tree(tree.clone())
            .backend(kind)
            .cache(Arc::clone(&cache))
            .budget(Budget::unlimited().max_solutions(2))
            .top_k(5)
            .expect("solvable");
        assert!(truncated.is_truncated(), "{kind}");
        assert_eq!(truncated.solutions.len(), 2, "{kind}");

        // A capped run may legitimately deposit *complete* sub-answers it
        // proved along the way (the canonical top-2 prefix, module
        // families), but never the truncated 2-of-5 family itself: the
        // uncapped warm query below must miss on its own key, recompute, and
        // deliver all five solutions.
        let misses_before = cache.stats().misses;
        let complete = Analyzer::for_tree(tree.clone())
            .backend(kind)
            .cache(Arc::clone(&cache))
            .top_k(5)
            .expect("solvable");
        assert_eq!(complete.termination, Termination::Complete, "{kind}");
        assert_eq!(complete.solutions.len(), 5, "{kind}");
        for (c, e) in complete.solutions.iter().zip(&expected.solutions) {
            assert_eq!(key(c), key(e), "{kind}: post-truncation answer diverged");
        }
        assert!(
            cache.stats().misses > misses_before,
            "{kind}: the truncated family must not answer the uncapped query"
        );
        assert!(cache.stats().insertions > 0, "{kind}");

        // And a third query replays it from the cache.
        let hits_before = cache.stats().hits;
        let replayed = Analyzer::for_tree(tree.clone())
            .backend(kind)
            .cache(Arc::clone(&cache))
            .top_k(5)
            .expect("solvable");
        assert_eq!(replayed.termination, Termination::Complete, "{kind}");
        assert!(cache.stats().hits > hits_before, "{kind}: replay must hit");
        for (c, e) in replayed.solutions.iter().zip(&expected.solutions) {
            assert_eq!(key(c), key(e), "{kind}: cached replay diverged");
        }
    }
}
