//! Generalized Totalizer Encoding (GTE) for pseudo-Boolean upper bounds.
//!
//! The GTE generalises the totalizer to weighted inputs: every node exposes
//! one output literal per *distinct achievable weight sum* of its subtree,
//! with sum-side clauses `(left ≥ a) ∧ (right ≥ b) ⇒ (node ≥ a+b)`. An upper
//! bound `Σ wᵢ·xᵢ ≤ k` is then enforced by asserting the negation of every
//! root output whose sum exceeds `k` — which is how the linear SAT–UNSAT
//! MaxSAT algorithm tightens the objective.
//!
//! The number of distinct sums can grow combinatorially for adversarial weight
//! distributions, so the builder takes a hard size limit and fails gracefully
//! with [`GteError::TooLarge`]; callers (the portfolio) fall back to the
//! core-guided algorithm in that case.

use std::collections::BTreeMap;
use std::fmt;

use sat_solver::Lit;

use super::ClauseSink;

/// Errors produced while building a GTE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GteError {
    /// The encoding exceeded the configured maximum number of output literals.
    TooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// No weighted inputs were provided.
    Empty,
}

impl fmt::Display for GteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GteError::TooLarge { limit } => {
                write!(
                    f,
                    "generalized totalizer exceeded the size limit of {limit} outputs"
                )
            }
            GteError::Empty => write!(f, "generalized totalizer needs at least one input"),
        }
    }
}

impl std::error::Error for GteError {}

/// A built generalized totalizer.
#[derive(Clone, Debug)]
pub struct GteBuilder {
    /// Root outputs: distinct achievable sums mapped to their output literal.
    outputs: BTreeMap<u64, Lit>,
}

impl GteBuilder {
    /// Builds a GTE over `(literal, weight)` inputs, emitting clauses into
    /// `sink`. `max_outputs` bounds the total number of output literals
    /// created across all nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GteError::Empty`] for an empty input list and
    /// [`GteError::TooLarge`] when the size limit is exceeded.
    pub fn build<S: ClauseSink>(
        sink: &mut S,
        inputs: &[(Lit, u64)],
        max_outputs: usize,
    ) -> Result<Self, GteError> {
        if inputs.is_empty() {
            return Err(GteError::Empty);
        }
        let mut budget = max_outputs;
        let outputs = Self::build_node(sink, inputs, &mut budget).map_err(|e| match e {
            GteError::TooLarge { .. } => GteError::TooLarge { limit: max_outputs },
            other => other,
        })?;
        Ok(GteBuilder { outputs })
    }

    fn build_node<S: ClauseSink>(
        sink: &mut S,
        inputs: &[(Lit, u64)],
        budget: &mut usize,
    ) -> Result<BTreeMap<u64, Lit>, GteError> {
        if inputs.len() == 1 {
            let mut map = BTreeMap::new();
            map.insert(inputs[0].1, inputs[0].0);
            return Ok(map);
        }
        let mid = inputs.len() / 2;
        let left = Self::build_node(sink, &inputs[..mid], budget)?;
        let right = Self::build_node(sink, &inputs[mid..], budget)?;

        // Bail out before doing quadratic work: the pairwise combination below
        // touches |left|·|right| sums and emits as many clauses, so the
        // product itself must stay within the budget (this is a conservative
        // over-approximation of the deduplicated sum count).
        let pair_count = left
            .len()
            .saturating_mul(right.len())
            .saturating_add(left.len() + right.len());
        if pair_count > *budget {
            // The limit is rewritten to the user-facing value in `build`.
            return Err(GteError::TooLarge { limit: 0 });
        }

        // Collect the distinct sums achievable by the combined node.
        let mut sums: Vec<u64> = Vec::new();
        for &a in left.keys() {
            sums.push(a);
        }
        for &b in right.keys() {
            sums.push(b);
        }
        for &a in left.keys() {
            for &b in right.keys() {
                sums.push(a + b);
            }
        }
        sums.sort_unstable();
        sums.dedup();
        if sums.len() > *budget {
            return Err(GteError::TooLarge { limit: 0 });
        }
        *budget -= sums.len();

        let mut outputs: BTreeMap<u64, Lit> = BTreeMap::new();
        for &s in &sums {
            outputs.insert(s, Lit::positive(sink.add_var()));
        }
        // Sum-side clauses.
        for (&a, &la) in &left {
            sink.add_sink_clause(&[!la, outputs[&a]]);
        }
        for (&b, &lb) in &right {
            sink.add_sink_clause(&[!lb, outputs[&b]]);
        }
        for (&a, &la) in &left {
            for (&b, &lb) in &right {
                sink.add_sink_clause(&[!la, !lb, outputs[&(a + b)]]);
            }
        }
        Ok(outputs)
    }

    /// The root outputs: each distinct achievable sum and the literal implied
    /// when the weighted sum of true inputs reaches it.
    pub fn outputs(&self) -> &BTreeMap<u64, Lit> {
        &self.outputs
    }

    /// Returns the literals that must be *false* to enforce `Σ wᵢ·xᵢ ≤ bound`.
    pub fn literals_above(&self, bound: u64) -> Vec<Lit> {
        self.outputs
            .range((bound + 1)..)
            .map(|(_, &lit)| lit)
            .collect()
    }

    /// The largest achievable sum (sum of all input weights).
    pub fn max_sum(&self) -> u64 {
        self.outputs.keys().next_back().copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat_solver::{Lit, Solver, Var};

    fn weighted_inputs(weights: &[u64]) -> Vec<(Lit, u64)> {
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (Lit::positive(Var::from_index(i)), w))
            .collect()
    }

    /// Exhaustive check: enforcing a bound via `literals_above` accepts exactly
    /// the assignments whose weighted sum is within the bound.
    #[test]
    fn weighted_upper_bound_is_exact() {
        let weights = [3u64, 5, 7, 2];
        let n = weights.len();
        let total: u64 = weights.iter().sum();
        for bound in [0u64, 2, 4, 7, 9, 12, total] {
            let mut solver = Solver::new();
            solver.ensure_vars(n);
            let gte =
                GteBuilder::build(&mut solver, &weighted_inputs(&weights), 10_000).expect("fits");
            for lit in gte.literals_above(bound) {
                solver.add_clause([!lit]);
            }
            for mask in 0..(1u32 << n) {
                let sum: u64 = (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| weights[i])
                    .sum();
                let assumptions: Vec<Lit> = (0..n)
                    .map(|i| Lit::new(Var::from_index(i), mask & (1 << i) == 0))
                    .collect();
                let sat = solver.solve_with_assumptions(&assumptions).is_sat();
                assert_eq!(sat, sum <= bound, "bound={bound} mask={mask:b} sum={sum}");
            }
        }
    }

    #[test]
    fn max_sum_and_outputs_reflect_the_weights() {
        let mut solver = Solver::new();
        solver.ensure_vars(3);
        let gte =
            GteBuilder::build(&mut solver, &weighted_inputs(&[1, 2, 4]), 1_000).expect("fits");
        assert_eq!(gte.max_sum(), 7);
        // All subset sums of {1,2,4} are distinct: 1..=7.
        assert_eq!(gte.outputs().len(), 7);
        assert!(gte.literals_above(7).is_empty());
        assert_eq!(gte.literals_above(0).len(), 7);
    }

    #[test]
    fn size_limit_is_enforced() {
        let mut solver = Solver::new();
        solver.ensure_vars(16);
        // Powers of two maximise the number of distinct sums (2^16 at the root).
        let weights: Vec<u64> = (0..16).map(|i| 1u64 << i).collect();
        let result = GteBuilder::build(&mut solver, &weighted_inputs(&weights), 100);
        assert!(matches!(result, Err(GteError::TooLarge { .. })));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let mut solver = Solver::new();
        assert_eq!(
            GteBuilder::build(&mut solver, &[], 100).unwrap_err(),
            GteError::Empty
        );
    }

    #[test]
    fn equal_weights_degenerate_to_cardinality() {
        let mut solver = Solver::new();
        solver.ensure_vars(5);
        let gte = GteBuilder::build(&mut solver, &weighted_inputs(&[2, 2, 2, 2, 2]), 1_000)
            .expect("fits");
        // Sums are 2, 4, 6, 8, 10 — one per count.
        assert_eq!(gte.outputs().len(), 5);
    }
}
