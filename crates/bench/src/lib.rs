//! Benchmark and experiment harness.
//!
//! This crate regenerates the evaluation artefacts of the paper (see
//! `DESIGN.md`, experiment index E1–E9) in two forms:
//!
//! * the `experiments` binary (`cargo run --release -p ft-bench --bin
//!   experiments -- <experiment>`) prints the tables/series the paper
//!   reports, and
//! * the Criterion benches under `benches/` measure the same workloads with
//!   statistical rigour (`cargo bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use bdd_engine::{McsEnumeration, VariableOrdering};
use fault_tree::examples::fire_protection_system;
use fault_tree::{FailureModel, FaultTree, StructuralAnalysis};
use ft_analysis::mocus::Mocus;
use ft_backend::{backend_for, BackendConfig, BackendKind};
use ft_generators::Family;
use mpmcs::{AlgorithmChoice, EncodingStyle, MpmcsOptions, MpmcsReport, MpmcsSolver, WeightScale};

/// Runs a closure and returns its result together with the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Milliseconds as a float, for table printing.
pub fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

/// The standard scalability sizes (total node counts) used by E3.
pub const SCALABILITY_SIZES: &[usize] = &[100, 250, 500, 1000, 2500, 5000, 10_000];

/// The smaller sizes used when enumerative baselines take part (E5).
pub const BASELINE_SIZES: &[usize] = &[50, 100, 250, 500, 1000, 2000];

/// A solver for each algorithm choice, with its display name.
pub fn algorithm_line_up() -> Vec<(&'static str, AlgorithmChoice)> {
    vec![
        ("portfolio", AlgorithmChoice::Portfolio),
        ("sequential", AlgorithmChoice::SequentialPortfolio),
        ("oll", AlgorithmChoice::Oll),
        ("linear-su", AlgorithmChoice::LinearSu),
    ]
}

fn solver_for(algorithm: AlgorithmChoice) -> MpmcsSolver {
    MpmcsSolver::with_options(MpmcsOptions {
        algorithm,
        ..MpmcsOptions::new()
    })
}

/// E1 — Table I: the event probabilities of the FPS example and their `-log`
/// weights.
pub fn table1() -> String {
    let tree = fire_protection_system();
    let encoding = MpmcsSolver::new().encode(&tree);
    let mut out = String::new();
    out.push_str("# E1 / Table I — fault tree probabilities and -log values w_i\n");
    out.push_str("event  p(x_i)    w_i = -ln p(x_i)\n");
    for (i, event) in tree.events().iter().enumerate() {
        out.push_str(&format!(
            "{:<6} {:<9} {:.5}\n",
            event.name(),
            event.probability().value(),
            encoding.log_weights()[i]
        ));
    }
    out
}

/// E2 — Fig. 1/2: the MPMCS of the FPS example and the JSON report emitted by
/// the tool.
pub fn fig2() -> String {
    let tree = fire_protection_system();
    let solution = MpmcsSolver::new()
        .solve(&tree)
        .expect("the FPS example has cut sets");
    let report = MpmcsReport::new(&tree, &solution);
    let mut out = String::new();
    out.push_str("# E2 / Fig. 2 — MPMCS of the fire protection system\n");
    out.push_str(&format!(
        "MPMCS = {}  probability = {:.4}\n",
        solution.cut_set.display_names(&tree),
        solution.probability
    ));
    out.push_str("JSON report:\n");
    out.push_str(&report.to_json());
    out.push('\n');
    out
}

/// One row of the scalability table.
#[derive(Clone, Debug)]
pub struct ScalabilityRow {
    /// Structural family name.
    pub family: &'static str,
    /// Target total node count.
    pub target_nodes: usize,
    /// Actual node count of the generated tree.
    pub nodes: usize,
    /// Number of basic events.
    pub events: usize,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// Size of the MPMCS found.
    pub mpmcs_size: usize,
    /// Probability of the MPMCS found.
    pub probability: f64,
}

/// E3 — scalability of the MaxSAT approach across tree sizes and families.
pub fn scalability_rows(sizes: &[usize], seed: u64) -> Vec<ScalabilityRow> {
    let solver = MpmcsSolver::new();
    let mut rows = Vec::new();
    for family in Family::all() {
        for &size in sizes {
            let tree = family.generate(size, seed);
            let (solution, elapsed) =
                timed(|| solver.solve(&tree).expect("generated trees have cut sets"));
            rows.push(ScalabilityRow {
                family: family.name(),
                target_nodes: size,
                nodes: tree.node_count(),
                events: tree.num_events(),
                solve_time: elapsed,
                mpmcs_size: solution.cut_set.len(),
                probability: solution.probability,
            });
        }
    }
    rows
}

/// Formats E3 rows as the table printed by the `experiments` binary.
pub fn scalability(sizes: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("# E3 — scalability: MPMCS via parallel MaxSAT portfolio\n");
    out.push_str("family        target  nodes   events  time_ms    |MPMCS|  probability\n");
    for row in scalability_rows(sizes, seed) {
        out.push_str(&format!(
            "{:<13} {:<7} {:<7} {:<7} {:<10.2} {:<8} {:.3e}\n",
            row.family,
            row.target_nodes,
            row.nodes,
            row.events,
            ms(row.solve_time),
            row.mpmcs_size,
            row.probability
        ));
    }
    out
}

/// One row of the baseline-comparison table (E5).
#[derive(Clone, Debug)]
pub struct BaselineRow {
    /// Structural family name.
    pub family: &'static str,
    /// Target node count.
    pub target_nodes: usize,
    /// MaxSAT solve time.
    pub maxsat_time: Duration,
    /// BDD compile + enumerate time (`None` if the path budget blew up).
    pub bdd_time: Option<Duration>,
    /// MOCUS time (`None` if the budget blew up).
    pub mocus_time: Option<Duration>,
    /// Whether all available answers agree on the optimal probability.
    pub agree: bool,
}

/// E5 — MaxSAT vs BDD vs MOCUS baselines.
pub fn baseline_rows(sizes: &[usize], seed: u64) -> Vec<BaselineRow> {
    let solver = MpmcsSolver::new();
    let mut rows = Vec::new();
    for family in [Family::RandomMixed, Family::OrHeavy, Family::AndHeavy] {
        for &size in sizes {
            let tree = family.generate(size, seed);
            let (solution, maxsat_time) =
                timed(|| solver.solve(&tree).expect("generated trees have cut sets"));
            // The enumerative baselines carry tight budgets: their cost is
            // quadratic in the number of candidate cut sets (absorption), so
            // without a cap the comparison would simply hang on OR-heavy
            // trees — which is precisely the behaviour the MaxSAT approach
            // avoids.
            let (bdd_result, bdd_time) = timed(|| {
                let enumeration = McsEnumeration::with_ordering(
                    &tree,
                    bdd_engine::VariableOrdering::DepthFirst,
                    20_000,
                );
                enumeration.maximum_probability_mcs(&tree).ok()
            });
            let (mocus_result, mocus_time) = timed(|| {
                Mocus::with_budget(&tree, 20_000)
                    .maximum_probability_mcs()
                    .ok()
                    .flatten()
            });
            let mut agree = true;
            if let Some((_, p)) = &bdd_result {
                agree &= relative_eq(*p, solution.probability);
            }
            if let Some((_, p)) = &mocus_result {
                agree &= relative_eq(*p, solution.probability);
            }
            rows.push(BaselineRow {
                family: family.name(),
                target_nodes: size,
                maxsat_time,
                bdd_time: bdd_result.as_ref().map(|_| bdd_time),
                mocus_time: mocus_result.as_ref().map(|_| mocus_time),
                agree,
            });
        }
    }
    rows
}

fn relative_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1e-300)
}

/// Formats E5 rows.
pub fn baselines(sizes: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("# E5 — MaxSAT MPMCS vs enumerative baselines (BDD, MOCUS)\n");
    out.push_str("family        target  maxsat_ms  bdd_ms      mocus_ms    agree\n");
    for row in baseline_rows(sizes, seed) {
        let fmt_opt = |d: Option<Duration>| match d {
            Some(d) => format!("{:<11.2}", ms(d)),
            None => format!("{:<11}", "budget"),
        };
        out.push_str(&format!(
            "{:<13} {:<7} {:<10.2} {} {} {}\n",
            row.family,
            row.target_nodes,
            ms(row.maxsat_time),
            fmt_opt(row.bdd_time),
            fmt_opt(row.mocus_time),
            row.agree
        ));
    }
    out
}

/// E4 — the Step 5 ablation: portfolio vs each single configuration.
pub fn portfolio(sizes: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("# E4 — parallel portfolio vs single solver configurations\n");
    out.push_str("family        target  portfolio_ms  sequential_ms  oll_ms     linear_su_ms\n");
    for family in [Family::RandomMixed, Family::AndHeavy] {
        for &size in sizes {
            let tree = family.generate(size, seed);
            let mut times = Vec::new();
            let mut probabilities = Vec::new();
            for (_, algorithm) in algorithm_line_up() {
                let solver = solver_for(algorithm);
                let (solution, elapsed) =
                    timed(|| solver.solve(&tree).expect("generated trees have cut sets"));
                times.push(elapsed);
                probabilities.push(solution.probability);
            }
            assert!(
                probabilities.windows(2).all(|w| relative_eq(w[0], w[1])),
                "all algorithms must agree on the optimum"
            );
            out.push_str(&format!(
                "{:<13} {:<7} {:<13.2} {:<14.2} {:<10.2} {:<10.2}\n",
                family.name(),
                size,
                ms(times[0]),
                ms(times[1]),
                ms(times[2]),
                ms(times[3])
            ));
        }
    }
    out
}

/// E6 — encoding ablation: direct vs success-tree encoding and weight-quantum
/// sweep.
pub fn encodings(sizes: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("# E6 — encoding ablation (direct vs success-tree, weight quantum)\n");
    out.push_str("target  direct_ms  success_tree_ms  same_probability\n");
    for &size in sizes {
        let tree = Family::RandomMixed.generate(size, seed);
        let direct = MpmcsSolver::with_options(MpmcsOptions {
            algorithm: AlgorithmChoice::Oll,
            encoding: EncodingStyle::Direct,
            ..MpmcsOptions::new()
        });
        let success = MpmcsSolver::with_options(MpmcsOptions {
            algorithm: AlgorithmChoice::Oll,
            encoding: EncodingStyle::SuccessTree,
            ..MpmcsOptions::new()
        });
        let (a, ta) = timed(|| direct.solve(&tree).expect("solvable"));
        let (b, tb) = timed(|| success.solve(&tree).expect("solvable"));
        out.push_str(&format!(
            "{:<7} {:<10.2} {:<16.2} {}\n",
            size,
            ms(ta),
            ms(tb),
            relative_eq(a.probability, b.probability)
        ));
    }
    let sweep_size = sizes.iter().copied().max().unwrap_or(500);
    out.push_str(&format!(
        "\nweight quantum sweep (target = {sweep_size} nodes)\n"
    ));
    out.push_str("quantum   probability     |MPMCS|\n");
    let tree = Family::RandomMixed.generate(sweep_size, seed);
    for quantum in [1e3, 1e6, 1e9, 1e12] {
        let solver = MpmcsSolver::with_options(MpmcsOptions {
            algorithm: AlgorithmChoice::Oll,
            scale: WeightScale {
                quantum,
                ..WeightScale::default()
            },
            ..MpmcsOptions::new()
        });
        let solution = solver.solve(&tree).expect("solvable");
        out.push_str(&format!(
            "{:<9.0e} {:<15.6e} {}\n",
            quantum,
            solution.probability,
            solution.cut_set.len()
        ));
    }
    out
}

/// E7 — the voting-gate extension: MPMCS on k/N-heavy trees.
pub fn voting(sizes: &[usize], seed: u64) -> String {
    let solver = MpmcsSolver::new();
    let mut out = String::new();
    out.push_str("# E7 — voting-gate extension (future work of the paper)\n");
    out.push_str("target  nodes   vot_gates  time_ms    |MPMCS|  probability\n");
    for &size in sizes {
        let tree = Family::VotingHeavy.generate(size, seed);
        let stats = StructuralAnalysis::new(&tree).stats();
        let (solution, elapsed) = timed(|| solver.solve(&tree).expect("solvable"));
        out.push_str(&format!(
            "{:<7} {:<7} {:<10} {:<10.2} {:<8} {:.3e}\n",
            size,
            tree.node_count(),
            stats.num_vot,
            ms(elapsed),
            solution.cut_set.len(),
            solution.probability
        ));
    }
    out
}

/// Helper shared by the Criterion benches: generate one tree per (family,
/// size) pair.
pub fn bench_trees(sizes: &[usize], families: &[Family], seed: u64) -> Vec<(String, FaultTree)> {
    let mut trees = Vec::new();
    for &family in families {
        for &size in sizes {
            trees.push((
                format!("{}-{}", family.name(), size),
                family.generate(size, seed),
            ));
        }
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_the_paper_values() {
        let table = table1();
        assert!(table.contains("x1"));
        assert!(table.contains("1.60944"));
        assert!(table.contains("6.90776"));
    }

    #[test]
    fn fig2_reports_the_paper_mpmcs() {
        let output = fig2();
        assert!(output.contains("{x1, x2}"));
        assert!(output.contains("0.02"));
    }

    #[test]
    fn scalability_rows_cover_all_families_and_sizes() {
        let rows = scalability_rows(&[30, 60], 1);
        assert_eq!(rows.len(), Family::all().len() * 2);
        for row in rows {
            assert!(row.probability > 0.0);
            assert!(row.mpmcs_size >= 1);
        }
    }

    #[test]
    fn baselines_agree_on_small_trees() {
        for row in baseline_rows(&[30, 60], 2) {
            assert!(row.agree, "{} {}", row.family, row.target_nodes);
        }
    }

    #[test]
    fn portfolio_and_encoding_tables_render() {
        let table = portfolio(&[40], 3);
        assert!(table.contains("random-mixed"));
        let table = encodings(&[40], 3);
        assert!(table.contains("quantum"));
        let table = voting(&[40], 3);
        assert!(table.contains("E7"));
    }
}

/// One row of the extended baseline table (E8): the MaxSAT pipeline against
/// the three enumerative MPMCS baselines (ZBDD, BDD path enumeration, MOCUS).
#[derive(Clone, Debug)]
pub struct ExtendedBaselineRow {
    /// Workload name.
    pub workload: String,
    /// Number of nodes in the tree.
    pub nodes: usize,
    /// MaxSAT portfolio solve time.
    pub maxsat_time: Duration,
    /// ZBDD compile + extract time.
    pub zbdd_time: Duration,
    /// Whether MaxSAT and the ZBDD agree on the optimum probability.
    pub agree: bool,
}

/// E8 — the ZBDD cut-set engine as an additional MPMCS baseline, on the
/// random families plus the structure-true replicated-FPS workload.
pub fn extended_baseline_rows(sizes: &[usize], seed: u64) -> Vec<ExtendedBaselineRow> {
    use bdd_engine::ZbddAnalysis;
    let solver = MpmcsSolver::new();
    let mut workloads: Vec<(String, FaultTree)> = Vec::new();
    for &size in sizes {
        workloads.push((
            format!("random-mixed-{size}"),
            ft_generators::Family::RandomMixed.generate(size, seed),
        ));
        workloads.push((
            format!("replicated-fps-{}", size / 12),
            ft_generators::replicated_fps((size / 12).max(1)),
        ));
    }
    workloads
        .into_iter()
        .map(|(workload, tree)| {
            let (solution, maxsat_time) =
                timed(|| solver.solve(&tree).expect("workloads have cut sets"));
            let (zbdd_result, zbdd_time) = timed(|| {
                ZbddAnalysis::new(&tree)
                    .maximum_probability_mcs(&tree)
                    .expect("workloads have cut sets")
            });
            let agree = (solution.probability - zbdd_result.1).abs()
                <= 1e-6 * solution.probability.max(1e-300);
            ExtendedBaselineRow {
                workload,
                nodes: tree.node_count(),
                maxsat_time,
                zbdd_time,
                agree,
            }
        })
        .collect()
}

/// Formats E8 rows.
pub fn extended_baselines(sizes: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str("# E8 — MaxSAT vs ZBDD minimal-cut-set engine\n");
    out.push_str("workload             nodes   maxsat_ms  zbdd_ms    agree\n");
    for row in extended_baseline_rows(sizes, seed) {
        out.push_str(&format!(
            "{:<20} {:<7} {:<10.2} {:<10.2} {}\n",
            row.workload,
            row.nodes,
            ms(row.maxsat_time),
            ms(row.zbdd_time),
            row.agree
        ));
    }
    out
}

/// E9 — the extended FTA measures on the paper's worked example: the top-k
/// cut sets, the maximum-reliability path set, the importance table and the
/// MPMCS stability margins. These reproduce the "body of measures" the paper
/// argues the MPMCS extends.
pub fn extended_measures() -> String {
    use bdd_engine::{compile_fault_tree, VariableOrdering};
    use ft_analysis::importance::ImportanceTable;
    use ft_analysis::sensitivity::MpmcsStability;
    let tree = fire_protection_system();
    let solver = MpmcsSolver::new();
    let mut out = String::new();
    out.push_str("# E9 — extended measures on the fire protection system\n\n");
    out.push_str("top 3 minimal cut sets:\n");
    for (rank, solution) in solver
        .solve_top_k(&tree, 3)
        .expect("the FPS tree has cut sets")
        .iter()
        .enumerate()
    {
        out.push_str(&format!(
            "  #{} {:<15} p = {:.4}\n",
            rank + 1,
            solution.cut_set.display_names(&tree),
            solution.probability
        ));
    }
    let path = solver
        .solve_max_reliability_path_set(&tree)
        .expect("the FPS tree has path sets");
    out.push_str(&format!(
        "\nmaximum-reliability minimal path set: {} (reliability {:.4})\n",
        path.path_set.display_names(&tree),
        path.reliability
    ));
    let cut_sets = Mocus::new(&tree)
        .minimal_cut_sets()
        .expect("the FPS tree is small");
    let exact = |t: &FaultTree| {
        compile_fault_tree(t, VariableOrdering::DepthFirst).top_event_probability(t)
    };
    out.push_str("\nimportance measures:\n");
    out.push_str(&ImportanceTable::compute(&tree, &cut_sets, exact).render(&tree));
    out.push('\n');
    out.push_str(
        &MpmcsStability::of(&tree, &cut_sets)
            .expect("cut sets exist")
            .render(&tree),
    );
    out
}

/// One row of the batch worker-scaling table (E10): the same batch of trees
/// analysed end to end by `ft-batch` at a given worker count.
#[derive(Clone, Debug)]
pub struct BatchScalingRow {
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock time of the batch.
    pub wall_time: Duration,
    /// Speedup relative to the sweep's baseline (first) entry — with the
    /// conventional `[1, 2, 4, ...]` sweep, `t_1 / t_jobs`.
    pub speedup: f64,
    /// Total SAT calls across the batch (identical for every worker count —
    /// the sharded pool changes scheduling, not the work).
    pub total_sat_calls: u64,
}

/// E10 — worker scaling of the parallel batch engine: one batch of
/// `num_trees` generated trees (target `nodes` total nodes each), analysed
/// end to end at each worker count of `jobs_sweep`. The deterministic
/// sequential-portfolio algorithm is used per tree, so the only variable is
/// the outer worker pool. The first sweep entry is the speedup baseline, so
/// start the sweep at 1 worker for classic `t_1 / t_n` scaling curves.
pub fn batch_scaling_rows(
    num_trees: usize,
    nodes: usize,
    jobs_sweep: &[usize],
    seed: u64,
) -> Vec<BatchScalingRow> {
    use ft_batch::{run_batch, BatchConfig, BatchManifest};
    let manifest = BatchManifest::generated(Family::RandomMixed, nodes, num_trees, seed);
    let mut rows = Vec::new();
    let mut baseline_time: Option<Duration> = None;
    for &jobs in jobs_sweep {
        let config = BatchConfig {
            jobs,
            ..BatchConfig::default()
        };
        let (report, wall_time) = timed(|| run_batch(&manifest, &config));
        assert_eq!(
            report.summary.failed, 0,
            "generated batch trees always analyse"
        );
        let baseline = *baseline_time.get_or_insert(wall_time);
        rows.push(BatchScalingRow {
            jobs,
            wall_time,
            speedup: baseline.as_secs_f64() / wall_time.as_secs_f64().max(1e-12),
            total_sat_calls: report.summary.total_sat_calls,
        });
    }
    rows
}

/// Formats E10 rows. Speedups above 1× at >1 workers require actual hardware
/// parallelism; on a single-core host the table degenerates to ~1× across
/// the sweep, which is itself a useful sanity check (no pool overhead).
pub fn batch_scaling(num_trees: usize, nodes: usize, jobs_sweep: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# E10 — batch engine worker scaling ({num_trees} × ~{nodes}-node trees, sequential portfolio per tree)\n"
    ));
    out.push_str("jobs    wall_ms    speedup  sat_calls\n");
    for row in batch_scaling_rows(num_trees, nodes, jobs_sweep, seed) {
        out.push_str(&format!(
            "{:<7} {:<10.2} {:<8.2} {}\n",
            row.jobs,
            ms(row.wall_time),
            row.speedup,
            row.total_sat_calls
        ));
    }
    out
}

/// One row of the E11 enumeration-scaling table: incremental vs from-scratch
/// top-k enumeration on one generated tree.
#[derive(Clone, Debug)]
pub struct EnumerationScalingRow {
    /// Structural family name.
    pub family: &'static str,
    /// Target total node count.
    pub target_nodes: usize,
    /// Cut sets requested (fewer may exist).
    pub k: usize,
    /// Cut sets actually found.
    pub found: usize,
    /// Wall time of the incremental path (one encoding, one live session).
    pub incremental_time: Duration,
    /// Wall time of the from-scratch baseline (fresh pipeline per cut set).
    pub scratch_time: Duration,
    /// `scratch_time / incremental_time`.
    pub speedup: f64,
    /// Total SAT calls of the incremental path.
    pub incremental_sat_calls: u64,
    /// Total SAT calls of the from-scratch baseline.
    pub scratch_sat_calls: u64,
}

/// E11 — incremental vs from-scratch top-k enumeration over generated
/// families. The incremental path encodes the tree once and pushes blocking
/// clauses into one persistent solver session; the baseline rebuilds the
/// whole encode→solve pipeline per cut set (the pre-incremental behaviour).
pub fn enumeration_scaling_rows(
    sizes: &[usize],
    k: usize,
    seed: u64,
) -> Vec<EnumerationScalingRow> {
    let incremental_solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: AlgorithmChoice::SequentialPortfolio,
        incremental: true,
        ..MpmcsOptions::new()
    });
    let scratch_solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: AlgorithmChoice::SequentialPortfolio,
        incremental: false,
        ..MpmcsOptions::new()
    });
    let mut rows = Vec::new();
    for family in [Family::RandomMixed, Family::OrHeavy, Family::SharedDag] {
        for &size in sizes {
            let tree = family.generate(size, seed);
            let (incremental, incremental_time) = timed(|| {
                incremental_solver
                    .solve_top_k(&tree, k)
                    .expect("generated trees have cut sets")
            });
            let (scratch, scratch_time) = timed(|| {
                scratch_solver
                    .solve_top_k(&tree, k)
                    .expect("generated trees have cut sets")
            });
            let agree = incremental.len() == scratch.len()
                && incremental
                    .iter()
                    .zip(&scratch)
                    .all(|(a, b)| a.cut_set == b.cut_set);
            // A disagreement is a correctness regression, not a data point:
            // fail loudly so the CI smoke step turns red instead of printing
            // `agree=false` and exiting 0.
            assert!(
                agree,
                "incremental and from-scratch top-{k} enumeration diverged on {}-{size}",
                family.name()
            );
            rows.push(EnumerationScalingRow {
                family: family.name(),
                target_nodes: size,
                k,
                found: incremental.len(),
                incremental_time,
                scratch_time,
                speedup: scratch_time.as_secs_f64() / incremental_time.as_secs_f64().max(1e-12),
                incremental_sat_calls: incremental.iter().map(|s| s.stats.sat_calls).sum(),
                scratch_sat_calls: scratch.iter().map(|s| s.stats.sat_calls).sum(),
            });
        }
    }
    rows
}

/// Formats E11 rows. The incremental path must return exactly the same cut
/// sets — `enumeration_scaling_rows` asserts it, so a divergence fails the
/// study (and the CI smoke step) instead of printing a flag; the table shows
/// the wall-clock and SAT-call contrast between warm-started and
/// from-scratch enumeration.
pub fn enumeration_scaling(sizes: &[usize], k: usize, seed: u64) -> String {
    enumeration_scaling_table(&enumeration_scaling_rows(sizes, k, seed), k)
}

/// Formats already-measured E11 rows (shared by [`enumeration_scaling`] and
/// the `--json` snapshot path of the `experiments` binary, which needs the
/// rows twice).
pub fn enumeration_scaling_table(rows: &[EnumerationScalingRow], k: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# E11 — top-{k} enumeration: incremental session vs from-scratch pipeline\n"
    ));
    out.push_str(
        "family        target  found  incremental_ms  scratch_ms  speedup  inc_calls  scr_calls\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<13} {:<7} {:<6} {:<15.2} {:<11.2} {:<8.2} {:<10} {:<10}\n",
            row.family,
            row.target_nodes,
            row.found,
            ms(row.incremental_time),
            ms(row.scratch_time),
            row.speedup,
            row.incremental_sat_calls,
            row.scratch_sat_calls
        ));
    }
    out
}

/// One row of the E12 cross-backend comparison: one backend answering one
/// query on one generated tree, with the modular preprocessing pass on or
/// off.
#[derive(Clone, Debug)]
pub struct BackendComparisonRow {
    /// Structural family name.
    pub family: &'static str,
    /// Target total node count.
    pub target_nodes: usize,
    /// The engine that answered.
    pub backend: BackendKind,
    /// Whether the modular divide-and-conquer pass was in front.
    pub preprocess: bool,
    /// Wall time of the MPMCS query.
    pub mpmcs_time: Duration,
    /// Wall time of the top-k enumeration query.
    pub top_k_time: Duration,
    /// Cut sets found by the top-k query.
    pub found: usize,
    /// Probability of the MPMCS (must agree across every row of a tree).
    pub probability: f64,
}

/// The top-k depth used by the E12 enumeration leg.
const BACKEND_COMPARISON_K: usize = 5;

/// E12 — the paper's MaxSAT-vs-classical comparison, reproduced through the
/// unified backend layer: every engine (MaxSAT, BDD, MOCUS) answers the same
/// MPMCS and top-k queries on the same generated families, with the modular
/// divide-and-conquer preprocessing off and on. Every row of a tree is
/// asserted to report the same verified minimal cut sets — modulo
/// equal-cost tie order at the top-k boundary, where engines may
/// legitimately differ — before any timing is published.
pub fn backend_comparison_rows(sizes: &[usize], seed: u64) -> Vec<BackendComparisonRow> {
    let backends = [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus];
    let mut rows = Vec::new();
    for family in [Family::RandomMixed, Family::AndHeavy, Family::SharedDag] {
        for &size in sizes {
            let tree = family.generate(size, seed);
            let mut reference: Option<Vec<fault_tree::CutSet>> = None;
            for backend in backends {
                for preprocess in [false, true] {
                    let config = BackendConfig {
                        preprocess,
                        ..BackendConfig::default()
                    };
                    let (_, engine) = backend_for(backend, &tree, &config);
                    let (best, mpmcs_time) =
                        timed(|| engine.mpmcs(&tree).expect("generated trees have cut sets"));
                    let (top, top_k_time) = timed(|| {
                        engine
                            .top_k(&tree, BACKEND_COMPARISON_K)
                            .expect("generated trees have cut sets")
                    });
                    let cuts: Vec<fault_tree::CutSet> =
                        top.iter().map(|s| s.cut_set.clone()).collect();
                    match &reference {
                        None => reference = Some(cuts),
                        Some(expected) => {
                            // Identical per-rank exact costs always; a cut
                            // set may differ from the reference only inside
                            // an equal-cost tie (and must still be minimal).
                            assert_eq!(expected.len(), cuts.len());
                            for (rank, (e, c)) in expected.iter().zip(&cuts).enumerate() {
                                assert_eq!(
                                    ft_backend::scaled_cut_cost(&tree, e),
                                    ft_backend::scaled_cut_cost(&tree, c),
                                    "backend {backend} (preprocess={preprocess}) diverged at \
                                     rank {rank} on {}-{size}",
                                    family.name()
                                );
                                assert!(
                                    e == c || tree.is_minimal_cut_set(c),
                                    "backend {backend} (preprocess={preprocess}) reported a \
                                     non-minimal tie at rank {rank} on {}-{size}",
                                    family.name()
                                );
                            }
                        }
                    }
                    rows.push(BackendComparisonRow {
                        family: family.name(),
                        target_nodes: size,
                        backend,
                        preprocess,
                        mpmcs_time,
                        top_k_time,
                        found: top.len(),
                        probability: best.probability,
                    });
                }
            }
        }
    }
    rows
}

/// One row of the E12 ordering leg: compiled BDD sizes per variable ordering
/// (the measurement behind the CLI's `--bdd-ordering` default).
#[derive(Clone, Debug)]
pub struct BddOrderingRow {
    /// Structural family name.
    pub family: &'static str,
    /// Target total node count.
    pub target_nodes: usize,
    /// BDD node count under the natural (declaration) ordering.
    pub natural_size: usize,
    /// BDD node count under the depth-first ordering.
    pub depth_first_size: usize,
}

/// Measures compiled BDD sizes per variable ordering on generated families.
pub fn bdd_ordering_rows(sizes: &[usize], seed: u64) -> Vec<BddOrderingRow> {
    let mut rows = Vec::new();
    for family in [Family::RandomMixed, Family::AndHeavy, Family::SharedDag] {
        for &size in sizes {
            let tree = family.generate(size, seed);
            let natural = bdd_engine::compile_fault_tree(&tree, VariableOrdering::Natural).size();
            let depth_first =
                bdd_engine::compile_fault_tree(&tree, VariableOrdering::DepthFirst).size();
            rows.push(BddOrderingRow {
                family: family.name(),
                target_nodes: size,
                natural_size: natural,
                depth_first_size: depth_first,
            });
        }
    }
    rows
}

/// Formats the E12 study: the cross-backend timing table (MPMCS + top-k per
/// engine, preprocessing off/on) followed by the BDD ordering comparison.
pub fn backend_comparison(sizes: &[usize], seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# E12 — cross-backend comparison (maxsat vs bdd vs mocus, top-{BACKEND_COMPARISON_K}, modular preprocessing off/on)\n"
    ));
    out.push_str(
        "family        target  backend  modules  mpmcs_ms   topk_ms    found  probability\n",
    );
    for row in backend_comparison_rows(sizes, seed) {
        out.push_str(&format!(
            "{:<13} {:<7} {:<8} {:<8} {:<10.2} {:<10.2} {:<6} {:.6e}\n",
            row.family,
            row.target_nodes,
            row.backend.name(),
            if row.preprocess { "on" } else { "off" },
            ms(row.mpmcs_time),
            ms(row.top_k_time),
            row.found,
            row.probability
        ));
    }
    out.push_str("\n## BDD variable orderings (compiled node counts)\n");
    out.push_str("family        target  natural  depth-first\n");
    let mut depth_first_never_worse = true;
    for row in bdd_ordering_rows(sizes, seed) {
        depth_first_never_worse &= row.depth_first_size <= row.natural_size;
        out.push_str(&format!(
            "{:<13} {:<7} {:<8} {:<8}\n",
            row.family, row.target_nodes, row.natural_size, row.depth_first_size
        ));
    }
    out.push_str(&format!(
        "depth-first ≤ natural on every measured tree: {depth_first_never_worse} \
         (the CLI default is depth-first)\n"
    ));
    out
}

/// One row of the E13 session-facade streaming study: the cost of a streamed
/// canonical prefix versus the collected full enumeration, both through the
/// [`ft_session::Analyzer`] facade.
#[derive(Clone, Debug)]
pub struct SessionStreamingRow {
    /// Structural family name.
    pub family: &'static str,
    /// Target total node count.
    pub target_nodes: usize,
    /// Length of the streamed prefix.
    pub prefix: usize,
    /// Depth of the collected top-k query the prefix is compared against.
    pub collected_k: usize,
    /// Solutions the collected query actually found (≤ `collected_k`).
    pub found: usize,
    /// Wall time of streaming the prefix (early exit).
    pub stream_time: Duration,
    /// Wall time of the collected top-k enumeration.
    pub collected_time: Duration,
    /// SAT calls issued by the streamed prefix.
    pub stream_sat_calls: u64,
    /// SAT calls issued by the collected top-k enumeration.
    pub collected_sat_calls: u64,
}

/// E13 — the session facade's streaming contract, measured: a stream taking
/// the first `prefix` cut sets must (a) deliver exactly the first `prefix`
/// entries of the collected `top_k(k)` answer (`prefix < k`) and (b) stop
/// the SAT engine early (strictly fewer SAT calls than the deeper collected
/// query). Both legs run through [`ft_session::Analyzer`]; a violated
/// contract fails the study (and the CI smoke step) instead of printing a
/// flag. The collected leg is a bounded top-k rather than an exhaustive
/// enumeration for the same reason E11 bounds its depth: full MaxSAT
/// enumeration of a generated family's cut sets hits the weighted-OLL
/// deep-k cliff, which would measure instance hardness, not streaming.
pub fn session_streaming_rows(
    sizes: &[usize],
    prefix: usize,
    k: usize,
    seed: u64,
) -> Vec<SessionStreamingRow> {
    use ft_session::Analyzer;
    assert!(prefix < k, "the contrast needs a deeper collected query");
    let mut rows = Vec::new();
    for family in [Family::RandomMixed, Family::OrHeavy] {
        for &size in sizes {
            let tree = family.generate(size, seed);
            let mut collected_analyzer =
                Analyzer::for_tree(tree.clone()).algorithm(AlgorithmChoice::SequentialPortfolio);
            let (collected, collected_time) = timed(|| {
                collected_analyzer
                    .top_k(k)
                    .expect("generated trees have cut sets")
            });
            let collected_sat_calls = collected
                .solutions
                .iter()
                .map(|s| s.stats.as_ref().map_or(0, |stats| stats.sat_calls))
                .sum();
            let stream_analyzer =
                Analyzer::for_tree(tree).algorithm(AlgorithmChoice::SequentialPortfolio);
            let ((streamed, stream_sat_calls), stream_time) = timed(|| {
                let mut stream = stream_analyzer.stream();
                let mut out = Vec::new();
                for item in stream.by_ref().take(prefix) {
                    out.push(item.expect("generated trees have cut sets"));
                }
                let calls = stream.sat_calls().unwrap_or(0);
                (out, calls)
            });
            assert_eq!(
                streamed.len(),
                prefix.min(collected.solutions.len()),
                "{}-{size}: stream must deliver the requested prefix",
                family.name()
            );
            for (s, c) in streamed.iter().zip(&collected.solutions) {
                assert_eq!(
                    s.cut_set,
                    c.cut_set,
                    "{}-{size}: streamed prefix diverged from the collected answer",
                    family.name()
                );
            }
            if collected.solutions.len() > prefix + 1 {
                assert!(
                    stream_sat_calls < collected_sat_calls,
                    "{}-{size}: early exit must stop the SAT engine ({} vs {})",
                    family.name(),
                    stream_sat_calls,
                    collected_sat_calls
                );
            }
            rows.push(SessionStreamingRow {
                family: family.name(),
                target_nodes: size,
                prefix: streamed.len(),
                collected_k: k,
                found: collected.solutions.len(),
                stream_time,
                collected_time,
                stream_sat_calls,
                collected_sat_calls,
            });
        }
    }
    rows
}

/// Formats the E13 rows.
pub fn session_streaming(sizes: &[usize], prefix: usize, k: usize, seed: u64) -> String {
    session_streaming_table(&session_streaming_rows(sizes, prefix, k, seed), prefix, k)
}

/// Formats already-measured E13 rows (shared by [`session_streaming`] and
/// the `--json` snapshot path of the `experiments` binary).
pub fn session_streaming_table(rows: &[SessionStreamingRow], prefix: usize, k: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# E13 — session facade: streamed top-{prefix} prefix vs collected top-{k}\n"
    ));
    out.push_str(
        "family        target  prefix  found  stream_ms  collected_ms  stream_calls  collected_calls\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<13} {:<7} {:<7} {:<6} {:<10.2} {:<13.2} {:<13} {:<15}\n",
            row.family,
            row.target_nodes,
            row.prefix,
            row.found,
            ms(row.stream_time),
            ms(row.collected_time),
            row.stream_sat_calls,
            row.collected_sat_calls
        ));
    }
    out
}

#[cfg(test)]
mod session_streaming_tests {
    use super::*;

    #[test]
    fn session_streaming_rows_hold_the_prefix_and_early_exit_contracts() {
        let rows = session_streaming_rows(&[60], 3, 8, 9);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.prefix <= row.found);
            assert!(row.stream_sat_calls > 0);
        }
        let table = session_streaming(&[60], 3, 8, 9);
        assert!(table.contains("E13"));
        assert!(table.contains("stream_calls"));
    }
}

#[cfg(test)]
mod backend_comparison_tests {
    use super::*;

    #[test]
    fn backend_comparison_rows_cover_every_engine_and_agree() {
        let rows = backend_comparison_rows(&[40], 5);
        // 3 families × 1 size × 3 backends × {off, on}.
        assert_eq!(rows.len(), 18);
        for row in &rows {
            assert!(row.found >= 1);
            assert!(row.probability > 0.0);
        }
        let table = backend_comparison(&[40], 5);
        assert!(table.contains("E12"));
        assert!(table.contains("bdd"));
        assert!(table.contains("depth-first"));
    }
}

#[cfg(test)]
mod enumeration_scaling_tests {
    use super::*;

    #[test]
    fn enumeration_scaling_rows_agree_and_render() {
        let rows = enumeration_scaling_rows(&[40, 80], 5, 6);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.found >= 1);
            assert!(row.incremental_sat_calls > 0);
        }
        let table = enumeration_scaling(&[40], 3, 6);
        assert!(table.contains("E11"));
        assert!(table.contains("speedup"));
    }
}

#[cfg(test)]
mod batch_scaling_tests {
    use super::*;

    #[test]
    fn batch_scaling_rows_cover_the_sweep_and_do_identical_work() {
        let rows = batch_scaling_rows(4, 60, &[1, 2, 4], 7);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].jobs, 1);
        assert!(
            (rows[0].speedup - 1.0).abs() < 1e-12,
            "row 1 is the baseline"
        );
        // The pool changes scheduling, never the work: every worker count
        // performs exactly the same SAT calls.
        assert!(rows
            .windows(2)
            .all(|w| w[0].total_sat_calls == w[1].total_sat_calls));
        let table = batch_scaling(4, 60, &[1, 2], 7);
        assert!(table.contains("E10"));
        assert!(table.contains("speedup"));
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;

    #[test]
    fn extended_baselines_agree_on_small_workloads() {
        for row in extended_baseline_rows(&[60, 120], 4) {
            assert!(row.agree, "{}", row.workload);
            assert!(row.nodes > 0);
        }
    }

    #[test]
    fn extended_measures_report_the_paper_values() {
        let output = extended_measures();
        assert!(output.contains("{x1, x2}"));
        assert!(output.contains("maximum-reliability"));
        assert!(output.contains("birnbaum"));
    }
}

// ---------------------------------------------------------------------------
// E14 — hot-path study (wall-clock per propagation/conflict of the CDCL core)
// ---------------------------------------------------------------------------

/// One row of the E14 hot-path study: the cost of the CDCL inner loop on a
/// fixed workload, expressed per propagation and per conflict so the figure
/// survives workload growth, with the pre-arena-refactor (seed) layout's
/// figure alongside where one was captured.
#[derive(Clone, Debug, PartialEq)]
pub struct HotPathRow {
    /// Which leg produced the row: `"raw-cdcl"` (hard clauses plus blocking
    /// clauses straight on [`sat_solver::Solver`]) or `"top-k"` (incremental
    /// MaxSAT enumeration through the full pipeline).
    pub leg: String,
    /// Structural family name.
    pub family: String,
    /// Target total node count of the generated tree.
    pub target_nodes: usize,
    /// Models found (raw leg) or cut sets found (top-k leg).
    pub found: usize,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Wall time of the leg in milliseconds.
    pub wall_ms: f64,
    /// Nanoseconds per propagation — the study's primary figure.
    pub ns_per_prop: f64,
    /// Nanoseconds per conflict.
    pub ns_per_conflict: f64,
    /// The same workload's ns/propagation under the pre-refactor clause
    /// layout (one heap `Vec<Lit>` per clause), measured once on the seed
    /// commit's solver in a release build ([`HOT_PATH_SEED_BASELINE`]).
    /// `None` for workloads outside the captured grid.
    pub baseline_ns_per_prop: Option<f64>,
    /// `baseline_ns_per_prop / ns_per_prop` — above 1.0 means the flat-arena
    /// layout beats the seed layout on this workload.
    pub speedup: Option<f64>,
}

serde::impl_serde_struct!(HotPathRow {
    leg,
    family,
    target_nodes,
    found,
    propagations,
    conflicts,
    wall_ms,
    ns_per_prop,
    ns_per_conflict,
} optional { baseline_ns_per_prop, speedup });

/// The pre-refactor layout's ns/propagation, measured on the seed commit
/// (per-clause `Vec<Lit>` storage, hard-wired VSIDS, no inprocessing) with
/// the exact workloads of [`hot_path_rows`] at seed 2020 in a release build:
/// `(leg, family, target_nodes, ns_per_prop)`. Absolute numbers shift with
/// the host CPU, which is why [`hot_path_snapshot`] records both sides of
/// the comparison instead of only the ratio.
pub const HOT_PATH_SEED_BASELINE: &[(&str, &str, usize, f64)] = &[
    ("raw-cdcl", "random-mixed", 250, 109.84),
    ("raw-cdcl", "random-mixed", 500, 87.42),
    ("raw-cdcl", "random-mixed", 1000, 89.97),
    ("raw-cdcl", "and-heavy", 250, 109.65),
    ("raw-cdcl", "and-heavy", 500, 93.63),
    ("raw-cdcl", "and-heavy", 1000, 64.77),
    ("raw-cdcl", "or-heavy", 250, 90.37),
    ("raw-cdcl", "or-heavy", 500, 91.23),
    ("raw-cdcl", "or-heavy", 1000, 72.73),
    ("top-k", "random-mixed", 100, 122.99),
    ("top-k", "random-mixed", 250, 121.92),
    ("top-k", "or-heavy", 100, 163.94),
    ("top-k", "or-heavy", 250, 189.61),
    ("top-k", "shared-dag", 100, 134.20),
    ("top-k", "shared-dag", 250, 124.24),
];

fn hot_path_baseline(leg: &str, family: &str, size: usize) -> Option<f64> {
    HOT_PATH_SEED_BASELINE
        .iter()
        .find(|(l, f, s, _)| *l == leg && *f == family && *s == size)
        .map(|(_, _, _, ns)| *ns)
}

/// Models enumerated per workload by the raw-CDCL leg (matches the baseline
/// capture run).
const HOT_PATH_RAW_MODELS: usize = 200;

/// Event variables the raw-CDCL leg's blocking clauses range over (matches
/// the baseline capture run).
const HOT_PATH_BLOCK_VARS: usize = 64;

fn hot_path_row(
    leg: &str,
    family: Family,
    size: usize,
    found: usize,
    propagations: u64,
    conflicts: u64,
    wall: Duration,
) -> HotPathRow {
    let ns = wall.as_nanos() as f64;
    let ns_per_prop = ns / propagations.max(1) as f64;
    let baseline = hot_path_baseline(leg, family.name(), size);
    HotPathRow {
        leg: leg.to_string(),
        family: family.name().to_string(),
        target_nodes: size,
        found,
        propagations,
        conflicts,
        wall_ms: ms(wall),
        ns_per_prop,
        ns_per_conflict: ns / conflicts.max(1) as f64,
        baseline_ns_per_prop: baseline,
        speedup: baseline.map(|b| b / ns_per_prop),
    }
}

/// Enumerates up to [`HOT_PATH_RAW_MODELS`] models of `solver`, blocking each
/// found assignment projected onto the first [`HOT_PATH_BLOCK_VARS`]
/// variables, and returns how many models were found.
fn hot_path_enumerate(solver: &mut sat_solver::Solver, num_vars: usize, cap: usize) -> usize {
    use sat_solver::{Lit, SolveResult, Var};
    let mut models = 0usize;
    while models < cap {
        match solver.solve() {
            SolveResult::Sat(model) => {
                models += 1;
                let block: Vec<Lit> = (0..num_vars.min(HOT_PATH_BLOCK_VARS))
                    .map(|i| Lit::new(Var::from_index(i), model.value(Var::from_index(i))))
                    .collect();
                if !solver.add_clause(block) {
                    break;
                }
            }
            _ => break,
        }
    }
    models
}

/// E14 — the hot-path study. Two legs share the generated families:
///
/// * **raw-cdcl** drives [`sat_solver::Solver`] directly with the hard
///   clauses of the MPMCS encoding and enumerates models under blocking
///   clauses — propagation and conflict analysis dominate, so ns/propagation
///   isolates the clause-arena memory layout from MaxSAT logic;
/// * **top-k** runs the full incremental MaxSAT enumeration
///   ([`MpmcsSolver::solve_top_k`]) the way every production query does.
///
/// Before any timing is trusted, [`assert_hot_path_equivalence`] proves the
/// perf-motivated solver features cannot change answers: the top-k leg is
/// re-run under random branching and must report identical cut sets, and a
/// full model enumeration is re-run under aggressive inprocessing (interval
/// 1, variable elimination on) plus random branching and must produce the
/// identical projected model set.
pub fn hot_path_rows(
    raw_sizes: &[usize],
    topk_sizes: &[usize],
    k: usize,
    seed: u64,
) -> Vec<HotPathRow> {
    use sat_solver::{CnfFormula, Solver};
    assert_hot_path_equivalence(seed);
    let mut rows = Vec::new();
    for family in [Family::RandomMixed, Family::AndHeavy, Family::OrHeavy] {
        for &size in raw_sizes {
            let tree = family.generate(size, seed);
            let encoding = MpmcsSolver::new().encode(&tree);
            let instance = encoding.instance();
            let mut cnf = CnfFormula::with_vars(instance.num_vars());
            for clause in instance.hard_clauses() {
                cnf.add_clause(clause.iter().copied());
            }
            let start = Instant::now();
            let mut solver = Solver::from_cnf(&cnf);
            let models = hot_path_enumerate(&mut solver, instance.num_vars(), HOT_PATH_RAW_MODELS);
            let wall = start.elapsed();
            let stats = solver.stats();
            rows.push(hot_path_row(
                "raw-cdcl",
                family,
                size,
                models,
                stats.propagations,
                stats.conflicts,
                wall,
            ));
        }
    }
    let solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: AlgorithmChoice::SequentialPortfolio,
        ..MpmcsOptions::new()
    });
    for family in [Family::RandomMixed, Family::OrHeavy, Family::SharedDag] {
        for &size in topk_sizes {
            let tree = family.generate(size, seed);
            let (solutions, wall) = timed(|| {
                solver
                    .solve_top_k(&tree, k)
                    .expect("generated trees have cut sets")
            });
            let propagations = solutions.iter().map(|s| s.stats.propagations).sum();
            let conflicts = solutions.iter().map(|s| s.stats.conflicts).sum();
            rows.push(hot_path_row(
                "top-k",
                family,
                size,
                solutions.len(),
                propagations,
                conflicts,
                wall,
            ));
        }
    }
    rows
}

/// The E14 answers-identical guard (see [`hot_path_rows`]); panics on any
/// divergence, so the study — and the CI smoke step running it — fails
/// instead of publishing timings for a solver that changed answers.
pub fn assert_hot_path_equivalence(seed: u64) {
    use sat_solver::{
        BranchingChoice, CnfFormula, InprocessConfig, SolveResult, Solver, SolverConfig,
    };
    use std::collections::BTreeSet;

    // Leg 1: top-k cut sets must not depend on the branching heuristic.
    let tree = Family::RandomMixed.generate(120, seed);
    let answers = |branching: BranchingChoice| {
        MpmcsSolver::with_options(MpmcsOptions {
            algorithm: AlgorithmChoice::SequentialPortfolio,
            branching,
            ..MpmcsOptions::new()
        })
        .solve_top_k(&tree, 8)
        .expect("generated trees have cut sets")
        .into_iter()
        .map(|s| (s.cut_set, s.log_weight.to_bits()))
        .collect::<Vec<_>>()
    };
    assert_eq!(
        answers(BranchingChoice::Vsids),
        answers(BranchingChoice::Random),
        "top-k answers diverged across branching heuristics"
    );

    // Leg 2: the full projected model set must survive aggressive
    // inprocessing (every level-0 boundary, variable elimination on) plus
    // random branching. The fire-protection example is small enough to
    // enumerate to exhaustion.
    let tree = fire_protection_system();
    let encoding = MpmcsSolver::new().encode(&tree);
    let instance = encoding.instance();
    let project = instance.num_vars().min(16);
    let models_under = |config: SolverConfig| {
        use sat_solver::{Lit, Var};
        let mut cnf = CnfFormula::with_vars(instance.num_vars());
        for clause in instance.hard_clauses() {
            cnf.add_clause(clause.iter().copied());
        }
        let mut solver = Solver::with_config(config);
        solver.add_cnf(&cnf);
        let mut models = BTreeSet::new();
        while let SolveResult::Sat(model) = solver.solve() {
            let bits: Vec<bool> = (0..project)
                .map(|i| model.value(Var::from_index(i)))
                .collect();
            assert!(models.insert(bits.clone()), "duplicate projected model");
            assert!(models.len() <= 4096, "projection unexpectedly large");
            let block: Vec<Lit> = bits
                .iter()
                .enumerate()
                .map(|(i, &value)| Lit::new(Var::from_index(i), value))
                .collect();
            if !solver.add_clause(block) {
                break;
            }
        }
        models
    };
    let aggressive = SolverConfig {
        branching: BranchingChoice::Random,
        inprocess: InprocessConfig {
            interval_conflicts: 1,
            var_elim: true,
            ..InprocessConfig::default()
        },
        ..SolverConfig::default()
    };
    let plain = models_under(SolverConfig::default());
    assert!(!plain.is_empty(), "the example tree is satisfiable");
    assert_eq!(
        plain,
        models_under(aggressive),
        "projected model set diverged under aggressive inprocessing"
    );
}

/// Formats already-measured E14 rows.
pub fn hot_path_table(rows: &[HotPathRow]) -> String {
    let mut out = String::new();
    out.push_str("# E14 — hot path: ns/propagation of the CDCL core, arena vs seed layout\n");
    out.push_str(
        "leg       family        target  found  props       conflicts  wall_ms    ns/prop   ns/conf   seed_ns/prop  speedup\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<9} {:<13} {:<7} {:<6} {:<11} {:<10} {:<10.3} {:<9.2} {:<9.1} {:<13} {}\n",
            row.leg,
            row.family,
            row.target_nodes,
            row.found,
            row.propagations,
            row.conflicts,
            row.wall_ms,
            row.ns_per_prop,
            row.ns_per_conflict,
            row.baseline_ns_per_prop
                .map_or_else(|| "-".to_string(), |b| format!("{b:<13.2}")),
            row.speedup
                .map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
        ));
    }
    out
}

/// E14 convenience wrapper: measures and renders in one call.
pub fn hot_path(raw_sizes: &[usize], topk_sizes: &[usize], k: usize, seed: u64) -> String {
    hot_path_table(&hot_path_rows(raw_sizes, topk_sizes, k, seed))
}

/// One row of the E15 cache-reuse table: the same shared-module-heavy batch
/// analysed cache-off, cache-cold, and cache-warm.
#[derive(Clone, Debug)]
pub struct CacheReuseRow {
    /// Target total node count per tree.
    pub nodes: usize,
    /// Number of trees in the batch (cycling over three distinct seeds, so
    /// the corpus itself repeats whole trees).
    pub trees: usize,
    /// Wall time with no cache attached.
    pub baseline_time: Duration,
    /// Wall time of the first run against an empty shared cache (pays the
    /// insertions, already reuses repeated trees within the batch).
    pub cold_time: Duration,
    /// Wall time of a re-run against the now-populated shared cache.
    pub warm_time: Duration,
    /// `baseline_time / cold_time` — within-batch reuse.
    pub cold_speedup: f64,
    /// `cold_time / warm_time` — cross-run reuse, the headline number.
    pub warm_speedup: f64,
    /// Cache hits during the cold run.
    pub cold_hits: u64,
    /// Cache misses during the cold run.
    pub cold_misses: u64,
    /// Hit rate of the warm run (`hits / (hits + misses)`).
    pub warm_hit_rate: f64,
    /// Entries resident after the warm run.
    pub entries: u64,
    /// Bytes resident after the warm run.
    pub bytes: u64,
}

/// E15 — cache reuse on shared-module-heavy batches: for each target size,
/// builds a batch of [`Family::SharedModules`] trees cycling over three
/// distinct seeds (so whole trees repeat within the corpus), then runs it
/// three times — cache-off, cache-cold, cache-warm (same shared
/// [`AnalysisCache`](ft_backend::AnalysisCache)).
///
/// Before any timing is trusted, the three deterministic report renderings
/// are asserted byte-identical: the cache must change wall time and counters,
/// never answers. The batch runs single-worker so timings and hit attribution
/// are scheduling-independent.
pub fn cache_reuse_rows(sizes: &[usize], num_trees: usize, seed: u64) -> Vec<CacheReuseRow> {
    use ft_backend::{AnalysisCache, DEFAULT_CACHE_BYTES};
    use ft_batch::{run_batch, BatchConfig, BatchJob, BatchManifest, TreeSource};
    use std::sync::Arc;
    let mut rows = Vec::new();
    for &nodes in sizes {
        let manifest = BatchManifest {
            jobs: (0..num_trees)
                .map(|i| {
                    let job_seed = seed + (i % 3) as u64;
                    BatchJob {
                        name: format!("shared-modules-{nodes}n-{i}-seed{job_seed}"),
                        source: TreeSource::Generated {
                            family: Family::SharedModules,
                            nodes,
                            seed: job_seed,
                        },
                    }
                })
                .collect(),
        };
        let config = BatchConfig {
            jobs: 1,
            top_k: 3,
            ..BatchConfig::default()
        };
        let (baseline_report, baseline_time) = timed(|| run_batch(&manifest, &config));
        let cache = Arc::new(AnalysisCache::new(DEFAULT_CACHE_BYTES));
        let cached_config = BatchConfig {
            cache: Some(Arc::clone(&cache)),
            ..config.clone()
        };
        let (cold_report, cold_time) = timed(|| run_batch(&manifest, &cached_config));
        let cold_stats = cache.stats();
        let (warm_report, warm_time) = timed(|| run_batch(&manifest, &cached_config));
        let warm_stats = cache.stats();
        assert_eq!(
            baseline_report.to_deterministic_json(),
            cold_report.to_deterministic_json(),
            "cache-on and cache-off reports must be byte-identical ({nodes} nodes)"
        );
        assert_eq!(
            cold_report.to_deterministic_json(),
            warm_report.to_deterministic_json(),
            "warm replays must reproduce the cold report ({nodes} nodes)"
        );
        let warm_hits = warm_stats.hits - cold_stats.hits;
        let warm_misses = warm_stats.misses - cold_stats.misses;
        rows.push(CacheReuseRow {
            nodes,
            trees: manifest.len(),
            baseline_time,
            cold_time,
            warm_time,
            cold_speedup: baseline_time.as_secs_f64() / cold_time.as_secs_f64().max(1e-12),
            warm_speedup: cold_time.as_secs_f64() / warm_time.as_secs_f64().max(1e-12),
            cold_hits: cold_stats.hits,
            cold_misses: cold_stats.misses,
            warm_hit_rate: warm_hits as f64 / ((warm_hits + warm_misses) as f64).max(1.0),
            entries: warm_stats.entries,
            bytes: warm_stats.bytes,
        });
    }
    rows
}

/// Formats already-measured E15 rows.
pub fn cache_reuse_table(rows: &[CacheReuseRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "# E15 — analysis-cache reuse on shared-module-heavy batches (cache-off vs cold vs warm, 1 worker)\n",
    );
    out.push_str(
        "nodes   trees  off_ms     cold_ms    warm_ms    cold_x   warm_x   cold_hits  cold_miss  warm_hit%  entries  bytes\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<7} {:<6} {:<10.2} {:<10.2} {:<10.2} {:<8.2} {:<8.2} {:<10} {:<10} {:<10.1} {:<8} {}\n",
            row.nodes,
            row.trees,
            ms(row.baseline_time),
            ms(row.cold_time),
            ms(row.warm_time),
            row.cold_speedup,
            row.warm_speedup,
            row.cold_hits,
            row.cold_misses,
            row.warm_hit_rate * 100.0,
            row.entries,
            row.bytes,
        ));
    }
    out
}

/// E15 convenience wrapper: measures and renders in one call.
pub fn cache_reuse(sizes: &[usize], num_trees: usize, seed: u64) -> String {
    cache_reuse_table(&cache_reuse_rows(sizes, num_trees, seed))
}

// ---------------------------------------------------------------------------
// E16 — mission-time sweep scaling
// ---------------------------------------------------------------------------

/// One measured row of the E16 sweep-scaling study: the incremental
/// `probability_sweep` (structure solved once, each mission time
/// re-quantified in O(size)) against the naive loop re-solving the structure
/// at every grid point.
#[derive(Clone, Debug)]
pub struct SweepScalingRow {
    /// Generator family name.
    pub family: String,
    /// Analysis engine ("bdd" or "maxsat").
    pub backend: &'static str,
    /// Requested node count of the generated tree.
    pub target_nodes: usize,
    /// Mission times quantified.
    pub points: usize,
    /// Wall time of one incremental sweep over the whole grid.
    pub incremental_time: Duration,
    /// Wall time of the naive loop re-solving the structure per point.
    pub naive_time: Duration,
    /// `naive_time / incremental_time`.
    pub speedup: f64,
}

/// The mission-time grid of the E16 study: `points` times evenly spaced over
/// `[0, 4]` — both sides of the default mission time, where the generated
/// probabilities live.
pub fn sweep_grid(points: usize) -> Vec<f64> {
    assert!(points >= 2, "a sweep grid needs at least two mission times");
    (0..points)
        .map(|i| 4.0 * i as f64 / (points - 1) as f64)
        .collect()
}

/// Attaches an exponential failure law `1 − exp(−λt)` to every event, with λ
/// chosen so the law reproduces the event's stored probability at the
/// default mission time — the sweep curves genuinely move over the grid,
/// while every `t = 1` answer still matches the untimed tree's.
pub fn with_exponential_models(tree: &FaultTree) -> FaultTree {
    let mut events = tree.events().to_vec();
    for event in events.iter_mut() {
        let p = event.probability().value().clamp(1e-9, 1.0 - 1e-9);
        let model = FailureModel::exponential(-(1.0 - p).ln()).expect("finite rate");
        event.set_model(Some(model));
    }
    FaultTree::from_parts(tree.name(), events, tree.gates().to_vec(), tree.top())
        .expect("re-attaching models preserves validity")
}

/// E16: measures both legs on two generated families × the BDD and MaxSAT
/// routes, first proving every incremental point **bit-identical** to the
/// naive point query at that time — timings are only published for answers
/// already shown to be the same bits.
pub fn sweep_scaling_rows(sizes: &[usize], points: usize, seed: u64) -> Vec<SweepScalingRow> {
    let grid = sweep_grid(points);
    let mut rows = Vec::new();
    for &nodes in sizes {
        for family in [Family::RandomMixed, Family::SharedDag] {
            let tree = with_exponential_models(&family.generate(nodes, seed));
            for (backend_name, kind) in [("bdd", BackendKind::Bdd), ("maxsat", BackendKind::MaxSat)]
            {
                let (_, backend) = backend_for(kind, &tree, &BackendConfig::default());
                let reference = backend
                    .probability_sweep(&tree, &grid)
                    .expect("in-budget sweep");
                for (i, &t) in grid.iter().enumerate() {
                    let point = backend
                        .top_event_probability(&tree.at_time(t))
                        .expect("in-budget point query");
                    assert_eq!(
                        reference[i].to_bits(),
                        point.to_bits(),
                        "{}-{nodes}/{backend_name}: sweep diverged at t={t}",
                        family.name()
                    );
                }
                let (swept, incremental_time) = timed(|| {
                    backend
                        .probability_sweep(&tree, &grid)
                        .expect("in-budget sweep")
                });
                let (naive, naive_time) = timed(|| {
                    grid.iter()
                        .map(|&t| {
                            backend
                                .top_event_probability(&tree.at_time(t))
                                .expect("in-budget point query")
                        })
                        .collect::<Vec<f64>>()
                });
                assert_eq!(swept, naive, "timed legs must reproduce the proven curve");
                rows.push(SweepScalingRow {
                    family: family.name().to_string(),
                    backend: backend_name,
                    target_nodes: nodes,
                    points,
                    incremental_time,
                    naive_time,
                    speedup: naive_time.as_secs_f64() / incremental_time.as_secs_f64().max(1e-12),
                });
            }
        }
    }
    rows
}

/// Formats already-measured E16 rows.
pub fn sweep_scaling_table(rows: &[SweepScalingRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "# E16 — mission-time sweep scaling (incremental re-quantification vs naive per-point re-solve)\n",
    );
    out.push_str("family         backend  nodes   points  incremental_ms  naive_ms    speedup\n");
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:<8} {:<7} {:<7} {:<15.2} {:<11.2} {:.2}\n",
            row.family,
            row.backend,
            row.target_nodes,
            row.points,
            ms(row.incremental_time),
            ms(row.naive_time),
            row.speedup,
        ));
    }
    out
}

/// E16 convenience wrapper: measures and renders in one call.
pub fn sweep_scaling(sizes: &[usize], points: usize, seed: u64) -> String {
    sweep_scaling_table(&sweep_scaling_rows(sizes, points, seed))
}

// ---------------------------------------------------------------------------
// E17 — HTTP server load (latency/throughput curve)
// ---------------------------------------------------------------------------

/// One measured row of the E17 server-load study: `connections` concurrent
/// keep-alive clients each issuing `requests / connections` MPMCS queries
/// against the HTTP front end, with the shared analysis cache off ("cold")
/// or on ("warm").
#[derive(Clone, Debug)]
pub struct ServerLoadRow {
    /// Cache mode: "cold" (every request re-solves) or "warm" (the shared
    /// content-addressed cache answers repeats).
    pub mode: &'static str,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total requests completed across all connections.
    pub requests: usize,
    /// Median per-request latency.
    pub p50: Duration,
    /// 99th-percentile per-request latency.
    pub p99: Duration,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Connections shed with 503 during the measurement (queue sized to
    /// keep this at zero; non-zero values flag an under-provisioned run).
    pub shed: u64,
}

fn nearest_rank(sorted: &[Duration], percentile: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentiles need at least one sample");
    let rank = ((sorted.len() as f64 - 1.0) * percentile / 100.0).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// E17: boots one server per cache mode, registers a generated tree, and
/// drives it with ladders of concurrent keep-alive clients — after first
/// proving every answer byte-identical to the first one (timings are only
/// published for answers already shown to be the same bytes, modulo the
/// per-solution wall-clock line).
pub fn server_load_rows(
    connection_counts: &[usize],
    requests_per_client: usize,
    seed: u64,
) -> Vec<ServerLoadRow> {
    use std::io::{BufReader, Write};
    use std::net::TcpStream;
    use std::sync::{Arc, Barrier};

    let tree = Family::RandomMixed.generate(60, seed);
    let max_connections = connection_counts.iter().copied().max().unwrap_or(1);
    let redact = |text: &str| -> String {
        text.lines()
            .filter(|line| !line.contains("\"solve_time_ms\""))
            .collect::<Vec<_>>()
            .join("\n")
    };

    let mut rows = Vec::new();
    for (mode, cache_bytes) in [("cold", None), ("warm", Some(64 * 1024 * 1024))] {
        let handle = ft_server::Server::start(ft_server::ServerConfig {
            workers: 4,
            queue_depth: max_connections * 2 + 4,
            cache_bytes,
            ..ft_server::ServerConfig::default()
        })
        .expect("the load server binds an ephemeral loopback port");
        handle.service().register("bench", tree.clone());
        let addr = handle.addr();
        let request =
            "GET /trees/bench/mpmcs HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n";

        // Prime, then capture the reference answer. The first request in
        // warm mode pays the solve and feeds the cache, so its report
        // carries solve-side counters (`sat_calls`) that cached replays
        // don't; the *second* request is the steady state every measured
        // response is held byte-identical to.
        let one_request = || {
            let mut stream = TcpStream::connect(addr).expect("connect to the load server");
            stream
                .write_all(request.as_bytes())
                .expect("write the reference request");
            let mut reader = BufReader::new(stream);
            let response =
                ft_server::http::read_response(&mut reader).expect("read the reference response");
            assert_eq!(response.status, 200, "{}", response.text());
            redact(&response.text())
        };
        one_request();
        let reference = one_request();

        for &connections in connection_counts {
            let shed_before = handle.counters().shed;
            let barrier = Arc::new(Barrier::new(connections + 1));
            let clients: Vec<_> = (0..connections)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    let reference = reference.clone();
                    std::thread::spawn(move || {
                        let stream = TcpStream::connect(addr).expect("connect to the load server");
                        let mut writer = stream.try_clone().expect("clone the client socket");
                        let mut reader = BufReader::new(stream);
                        barrier.wait();
                        let mut latencies = Vec::with_capacity(requests_per_client);
                        for _ in 0..requests_per_client {
                            let start = Instant::now();
                            writer
                                .write_all(request.as_bytes())
                                .expect("write a measured request");
                            let response = ft_server::http::read_response(&mut reader)
                                .expect("read a measured response");
                            latencies.push(start.elapsed());
                            assert_eq!(response.status, 200);
                            assert_eq!(
                                redact(&response.text()),
                                reference,
                                "a measured answer diverged from the reference"
                            );
                        }
                        latencies
                    })
                })
                .collect();
            barrier.wait();
            let start = Instant::now();
            let mut latencies: Vec<Duration> = clients
                .into_iter()
                .flat_map(|client| client.join().expect("a load client panicked"))
                .collect();
            let wall = start.elapsed();
            latencies.sort();
            let requests = latencies.len();
            rows.push(ServerLoadRow {
                mode,
                connections,
                requests,
                p50: nearest_rank(&latencies, 50.0),
                p99: nearest_rank(&latencies, 99.0),
                throughput_rps: requests as f64 / wall.as_secs_f64().max(1e-9),
                shed: handle.counters().shed - shed_before,
            });
        }
        handle.shutdown();
    }
    rows
}

/// Formats already-measured E17 rows.
pub fn server_load_table(rows: &[ServerLoadRow]) -> String {
    let mut out = String::new();
    out.push_str("# E17 — HTTP server load (concurrent keep-alive clients, MPMCS query)\n");
    out.push_str("mode   connections  requests  p50_ms    p99_ms    throughput_rps  shed\n");
    for row in rows {
        out.push_str(&format!(
            "{:<6} {:<12} {:<9} {:<9.2} {:<9.2} {:<15.1} {}\n",
            row.mode,
            row.connections,
            row.requests,
            ms(row.p50),
            ms(row.p99),
            row.throughput_rps,
            row.shed,
        ));
    }
    out
}

/// E17 convenience wrapper: measures and renders in one call.
pub fn server_load(connection_counts: &[usize], requests_per_client: usize, seed: u64) -> String {
    server_load_table(&server_load_rows(
        connection_counts,
        requests_per_client,
        seed,
    ))
}

// ---------------------------------------------------------------------------
// Machine-readable `BENCH_*.json` snapshots
// ---------------------------------------------------------------------------

/// Wraps rendered study rows in the standard snapshot envelope the
/// `BENCH_*.json` files carry, so perf trajectories survive ROADMAP
/// re-anchors in a diffable, machine-readable form.
pub fn bench_snapshot_json(experiment: &str, seed: u64, rows: Vec<serde::Value>) -> String {
    use serde::Serialize;
    let mut map = serde::Map::new();
    map.insert("experiment".to_string(), experiment.to_value());
    map.insert("seed".to_string(), seed.to_value());
    map.insert("rows".to_string(), serde::Value::Array(rows));
    serde_json::to_string_pretty(&serde::Value::Object(map)).expect("snapshots always serialise")
}

/// The `BENCH_hotpath.json` document for measured E14 rows.
pub fn hot_path_snapshot(rows: &[HotPathRow], seed: u64) -> String {
    use serde::Serialize;
    bench_snapshot_json(
        "E14-hot-path",
        seed,
        rows.iter().map(|r| r.to_value()).collect(),
    )
}

/// The `BENCH_enumeration_scaling.json` document for measured E11 rows.
pub fn enumeration_scaling_snapshot(rows: &[EnumerationScalingRow], seed: u64) -> String {
    use serde::Serialize;
    let rows = rows
        .iter()
        .map(|r| {
            let mut map = serde::Map::new();
            map.insert("family".to_string(), r.family.to_value());
            map.insert("target_nodes".to_string(), r.target_nodes.to_value());
            map.insert("k".to_string(), r.k.to_value());
            map.insert("found".to_string(), r.found.to_value());
            map.insert(
                "incremental_ms".to_string(),
                ms(r.incremental_time).to_value(),
            );
            map.insert("scratch_ms".to_string(), ms(r.scratch_time).to_value());
            map.insert("speedup".to_string(), r.speedup.to_value());
            map.insert(
                "incremental_sat_calls".to_string(),
                r.incremental_sat_calls.to_value(),
            );
            map.insert(
                "scratch_sat_calls".to_string(),
                r.scratch_sat_calls.to_value(),
            );
            serde::Value::Object(map)
        })
        .collect();
    bench_snapshot_json("E11-enumeration-scaling", seed, rows)
}

/// The `BENCH_cache.json` document for measured E15 rows.
pub fn cache_reuse_snapshot(rows: &[CacheReuseRow], seed: u64) -> String {
    use serde::Serialize;
    let rows = rows
        .iter()
        .map(|r| {
            let mut map = serde::Map::new();
            map.insert("nodes".to_string(), r.nodes.to_value());
            map.insert("trees".to_string(), r.trees.to_value());
            map.insert("baseline_ms".to_string(), ms(r.baseline_time).to_value());
            map.insert("cold_ms".to_string(), ms(r.cold_time).to_value());
            map.insert("warm_ms".to_string(), ms(r.warm_time).to_value());
            map.insert("cold_speedup".to_string(), r.cold_speedup.to_value());
            map.insert("warm_speedup".to_string(), r.warm_speedup.to_value());
            map.insert("cold_hits".to_string(), r.cold_hits.to_value());
            map.insert("cold_misses".to_string(), r.cold_misses.to_value());
            map.insert("warm_hit_rate".to_string(), r.warm_hit_rate.to_value());
            map.insert("entries".to_string(), r.entries.to_value());
            map.insert("bytes".to_string(), r.bytes.to_value());
            serde::Value::Object(map)
        })
        .collect();
    bench_snapshot_json("E15-cache-reuse", seed, rows)
}

/// The `BENCH_sweep.json` document for measured E16 rows.
pub fn sweep_scaling_snapshot(rows: &[SweepScalingRow], seed: u64) -> String {
    use serde::Serialize;
    let rows = rows
        .iter()
        .map(|r| {
            let mut map = serde::Map::new();
            map.insert("family".to_string(), r.family.to_value());
            map.insert("backend".to_string(), r.backend.to_value());
            map.insert("target_nodes".to_string(), r.target_nodes.to_value());
            map.insert("points".to_string(), r.points.to_value());
            map.insert(
                "incremental_ms".to_string(),
                ms(r.incremental_time).to_value(),
            );
            map.insert("naive_ms".to_string(), ms(r.naive_time).to_value());
            map.insert("speedup".to_string(), r.speedup.to_value());
            serde::Value::Object(map)
        })
        .collect();
    bench_snapshot_json("E16-sweep-scaling", seed, rows)
}

/// The `BENCH_server.json` document for measured E17 rows.
pub fn server_load_snapshot(rows: &[ServerLoadRow], seed: u64) -> String {
    use serde::Serialize;
    let rows = rows
        .iter()
        .map(|r| {
            let mut map = serde::Map::new();
            map.insert("mode".to_string(), r.mode.to_value());
            map.insert("connections".to_string(), r.connections.to_value());
            map.insert("requests".to_string(), r.requests.to_value());
            map.insert("p50_ms".to_string(), ms(r.p50).to_value());
            map.insert("p99_ms".to_string(), ms(r.p99).to_value());
            map.insert("throughput_rps".to_string(), r.throughput_rps.to_value());
            map.insert("shed".to_string(), r.shed.to_value());
            serde::Value::Object(map)
        })
        .collect();
    bench_snapshot_json("E17-server-load", seed, rows)
}

/// The `BENCH_session_streaming.json` document for measured E13 rows.
pub fn session_streaming_snapshot(rows: &[SessionStreamingRow], seed: u64) -> String {
    use serde::Serialize;
    let rows = rows
        .iter()
        .map(|r| {
            let mut map = serde::Map::new();
            map.insert("family".to_string(), r.family.to_value());
            map.insert("target_nodes".to_string(), r.target_nodes.to_value());
            map.insert("prefix".to_string(), r.prefix.to_value());
            map.insert("collected_k".to_string(), r.collected_k.to_value());
            map.insert("found".to_string(), r.found.to_value());
            map.insert("stream_ms".to_string(), ms(r.stream_time).to_value());
            map.insert("collected_ms".to_string(), ms(r.collected_time).to_value());
            map.insert(
                "stream_sat_calls".to_string(),
                r.stream_sat_calls.to_value(),
            );
            map.insert(
                "collected_sat_calls".to_string(),
                r.collected_sat_calls.to_value(),
            );
            serde::Value::Object(map)
        })
        .collect();
    bench_snapshot_json("E13-session-streaming", seed, rows)
}

#[cfg(test)]
mod hot_path_tests {
    use super::*;

    #[test]
    fn hot_path_rows_measure_both_legs_and_render() {
        let rows = hot_path_rows(&[250], &[100], 5, 2020);
        // 3 raw-cdcl families × 1 size + 3 top-k families × 1 size.
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.found > 0, "{}-{}", row.leg, row.family);
            assert!(row.propagations > 0);
            assert!(row.ns_per_prop > 0.0);
        }
        // The captured baseline grid covers every measured workload here.
        assert!(rows.iter().all(|r| r.speedup.is_some()));
        let table = hot_path_table(&rows);
        assert!(table.contains("E14"));
        assert!(table.contains("raw-cdcl"));
        assert!(table.contains("top-k"));
        let json = hot_path_snapshot(&rows, 2020);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["experiment"].as_str(), Some("E14-hot-path"));
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 6);
        assert!(parsed["rows"][0]["ns_per_prop"].as_f64().unwrap() > 0.0);
        assert!(parsed["rows"][0]["baseline_ns_per_prop"].as_f64().is_some());
    }

    #[test]
    fn cache_reuse_rows_prove_identity_and_measure_reuse() {
        let rows = cache_reuse_rows(&[90], 6, 33);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.trees, 6);
        // The corpus cycles over three seeds, so even the cold run replays
        // whole trees; the warm run answers everything from the cache.
        assert!(row.cold_hits > 0, "cold run reuses repeated trees");
        assert!(
            row.warm_hit_rate > 0.99,
            "warm run must be all hits (got {})",
            row.warm_hit_rate
        );
        assert!(row.entries > 0 && row.bytes > 0);
        let table = cache_reuse_table(&rows);
        assert!(table.contains("E15"));
        let json = cache_reuse_snapshot(&rows, 33);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["experiment"].as_str(), Some("E15-cache-reuse"));
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 1);
        assert!(parsed["rows"][0]["warm_speedup"].as_f64().is_some());
    }

    #[test]
    fn sweep_scaling_rows_prove_identity_and_measure_both_legs() {
        // Debug-mode unit test: tiny trees and a short grid — every naive
        // point (and every identity check) is a full exact quantification.
        let rows = sweep_scaling_rows(&[24], 6, 2020);
        // 2 families × 2 backends.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.points, 6);
            assert!(row.incremental_time > Duration::ZERO);
            assert!(row.naive_time > Duration::ZERO);
            assert!(row.speedup > 0.0);
        }
        assert!(rows.iter().any(|r| r.backend == "bdd"));
        assert!(rows.iter().any(|r| r.backend == "maxsat"));
        let table = sweep_scaling_table(&rows);
        assert!(table.contains("E16"));
        assert!(table.contains("random-mixed"));
        let json = sweep_scaling_snapshot(&rows, 2020);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["experiment"].as_str(), Some("E16-sweep-scaling"));
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 4);
        assert!(parsed["rows"][0]["speedup"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn server_load_rows_prove_identity_and_measure_the_ladder() {
        // Debug-mode unit test: a tiny connection ladder and few requests —
        // every answer is still byte-compared to the reference.
        let rows = server_load_rows(&[1, 2], 3, 2020);
        // 2 modes × 2 ladder steps.
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.requests, row.connections * 3);
            assert!(row.p50 > Duration::ZERO);
            assert!(row.p99 >= row.p50);
            assert!(row.throughput_rps > 0.0);
            assert_eq!(row.shed, 0, "the sized queue must not shed");
        }
        assert!(rows.iter().any(|r| r.mode == "cold"));
        assert!(rows.iter().any(|r| r.mode == "warm"));
        let table = server_load_table(&rows);
        assert!(table.contains("E17"));
        let json = server_load_snapshot(&rows, 2020);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["experiment"].as_str(), Some("E17-server-load"));
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 4);
        assert!(parsed["rows"][0]["p99_ms"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn study_snapshots_carry_the_envelope_and_rows() {
        let rows = enumeration_scaling_rows(&[40], 3, 6);
        let json = enumeration_scaling_snapshot(&rows, 6);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            parsed["experiment"].as_str(),
            Some("E11-enumeration-scaling")
        );
        assert_eq!(parsed["rows"].as_array().unwrap().len(), rows.len());
        assert!(parsed["rows"][0]["incremental_sat_calls"].as_u64().unwrap() > 0);

        let rows = session_streaming_rows(&[60], 3, 8, 9);
        let json = session_streaming_snapshot(&rows, 9);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["experiment"].as_str(), Some("E13-session-streaming"));
        assert_eq!(parsed["rows"].as_array().unwrap().len(), rows.len());
    }
}
