//! Request routing: the content-addressed tree registry and the typed
//! query endpoints, mapped 1:1 onto the [`ft_session`] facade.
//!
//! Every query answer is rendered by [`ft_session::report`] — the same
//! functions the CLI uses — so an HTTP response body is byte-identical to
//! the equivalent local run. Enumeration endpoints additionally support
//! `?stream=true`, which delivers the answer as a chunked body with one
//! equal-cost tie group per chunk; the concatenated chunks reassemble to
//! exactly the collected rendering of the same solutions, and the
//! termination label travels in the `x-termination`/`x-truncated`
//! trailers (they are only known once the stream ends).

use std::io::{self, Write};
use std::sync::Arc;

use fault_tree::FaultTree;
use ft_backend::scaled_cut_cost;
use ft_session::report;
use ft_session::{
    AlgorithmChoice, Analyzer, BackendKind, BackendSolution, Budget, SessionError, SolutionStream,
    SweepRange, Termination,
};
use serde_json::json;

use crate::http::{ChunkedWriter, Request, Response};
use crate::Shared;

/// Trailer names declared by every streamed response.
const STREAM_TRAILERS: &[&str] = &["x-termination", "x-truncated", "x-delivered", "x-error"];

/// What the router decided: either a complete response, or a streaming
/// plan the connection loop executes against the raw socket.
pub(crate) enum Handled {
    /// A fixed-length response, ready to write.
    Full(Response),
    /// A chunked enumeration: the first solution is already pulled (so
    /// pre-body errors still get a proper status code).
    Stream(Box<StreamPlan>),
}

/// A chunked enumeration in flight, handed to [`stream_solutions`].
pub(crate) struct StreamPlan {
    tree: Arc<FaultTree>,
    stream: SolutionStream,
    first: Option<BackendSolution>,
    /// `Some(k)` for `top-k` — used to relabel a cap that merely satisfied
    /// the request as `complete`, mirroring the collected query.
    requested_k: Option<usize>,
    /// Whether the caller's `max-solutions` cap binds tighter than the
    /// request itself (only then may `solution-cap` be reported).
    cap_constrains: bool,
    stats: bool,
}

fn error_body(message: &str) -> String {
    serde_json::to_string_pretty(&json!({ "error": message }))
        .expect("error bodies always serialise")
}

pub(crate) fn error_json(status: u16, message: &str) -> Response {
    Response::json(status, error_body(message))
}

fn session_error_response(error: SessionError) -> Response {
    let status = match &error {
        SessionError::NoCutSet => 422,
        SessionError::Stopped(_) => 504,
        SessionError::UnknownTree(_) => 404,
        _ => 500,
    };
    if let SessionError::Stopped(termination) = &error {
        let body = serde_json::to_string_pretty(&json!({
            "error": error.to_string(),
            "termination": termination.label(),
        }))
        .expect("error bodies always serialise");
        return Response::json(status, body);
    }
    error_json(status, &error.to_string())
}

/// The query parameters shared by every analysis endpoint.
struct QuerySpec {
    backend: BackendKind,
    preprocess: bool,
    timeout_ms: Option<u64>,
    max_solutions: Option<usize>,
    stats: bool,
    stream: bool,
}

impl QuerySpec {
    /// Whether a budget is in force — selects the explicit
    /// `{"truncated", "termination", "report"}` envelope, exactly like the
    /// CLI's `--timeout-ms`/`--max-solutions` flags.
    fn budgeted(&self) -> bool {
        self.timeout_ms.is_some() || self.max_solutions.is_some()
    }
}

fn bool_param(request: &Request, name: &str) -> Result<bool, Response> {
    match request.param(name) {
        None => Ok(false),
        Some("true") | Some("1") => Ok(true),
        Some("false") | Some("0") => Ok(false),
        Some(other) => Err(error_json(
            400,
            &format!("parameter {name}={other:?} is not a boolean (true/false)"),
        )),
    }
}

fn u64_param(request: &Request, name: &str) -> Result<Option<u64>, Response> {
    match request.param(name) {
        None => Ok(None),
        Some(text) => text.parse::<u64>().map(Some).map_err(|_| {
            error_json(
                400,
                &format!("parameter {name}={text:?} is not a non-negative integer"),
            )
        }),
    }
}

fn query_spec(request: &Request) -> Result<QuerySpec, Response> {
    let backend = match request.param("backend") {
        None => BackendKind::MaxSat,
        Some(name) => BackendKind::parse(name).ok_or_else(|| {
            error_json(
                400,
                &format!("unknown backend {name:?} (expected maxsat, bdd, mocus or auto)"),
            )
        })?,
    };
    Ok(QuerySpec {
        backend,
        preprocess: bool_param(request, "preprocess")?,
        timeout_ms: u64_param(request, "timeout-ms")?,
        max_solutions: u64_param(request, "max-solutions")?.map(|n| n as usize),
        stats: bool_param(request, "stats")?,
        stream: bool_param(request, "stream")?,
    })
}

/// Builds the per-request analyzer. The server always runs the
/// deterministic sequential portfolio so that answers are reproducible
/// and byte-comparable across front ends.
fn analyzer_for(shared: &Shared, tree: &Arc<FaultTree>, spec: &QuerySpec) -> Analyzer {
    let mut analyzer = Analyzer::for_shared(Arc::clone(tree))
        .backend(spec.backend)
        .preprocess(spec.preprocess)
        .algorithm(AlgorithmChoice::SequentialPortfolio)
        .budget(Budget::from_limits(spec.timeout_ms, spec.max_solutions))
        .cancel_token(shared.cancel.clone());
    if let Some(cache) = shared.service.shared_cache() {
        analyzer = analyzer.cache(Arc::clone(cache));
    }
    analyzer
}

fn tree_entry(name: &str, tree: &FaultTree) -> serde_json::Value {
    json!({
        "hash": name,
        "tree": tree.name(),
        "events": tree.num_events(),
        "gates": tree.num_gates(),
    })
}

fn handle_upload(shared: &Shared, request: &Request) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return error_json(400, "request body is not valid UTF-8"),
    };
    let format = match request.param("format") {
        None => {
            if text.trim_start().starts_with('{') {
                "json"
            } else {
                "galileo"
            }
        }
        Some("json") => "json",
        Some("galileo") => "galileo",
        Some(other) => {
            return error_json(
                400,
                &format!("unknown format {other:?} (expected json or galileo)"),
            )
        }
    };
    let parsed = if format == "json" {
        fault_tree::parser::json::from_json_str(text)
    } else {
        fault_tree::parser::galileo::parse_galileo(text)
    };
    let tree = match parsed {
        Ok(tree) => tree,
        Err(error) => return error_json(400, &format!("could not parse {format} input: {error}")),
    };
    let (hash, tree, created) = shared.service.register_by_hash(tree);
    let mut entry = tree_entry(&hash, &tree);
    if let serde_json::Value::Object(map) = &mut entry {
        map.insert("created".to_string(), serde_json::Value::Bool(created));
    }
    let body = serde_json::to_string_pretty(&entry).expect("tree entries always serialise");
    Response::json(if created { 201 } else { 200 }, body)
}

fn handle_list(shared: &Shared) -> Response {
    let entries: Vec<serde_json::Value> = shared
        .service
        .list_trees()
        .iter()
        .map(|(name, tree)| tree_entry(name, tree))
        .collect();
    let body = serde_json::to_string_pretty(&json!({ "trees": entries }))
        .expect("tree listings always serialise");
    Response::json(200, body)
}

fn handle_delete(shared: &Shared, hash: &str) -> Response {
    if shared.service.remove(hash) {
        Response::empty(204)
    } else {
        error_json(404, &format!("no fault tree registered under {hash:?}"))
    }
}

fn handle_health(shared: &Shared) -> Response {
    let body = serde_json::to_string_pretty(&json!({
        "status": "ok",
        "trees": shared.service.len(),
    }))
    .expect("health reports always serialise");
    Response::json(200, body)
}

fn handle_stats(shared: &Shared) -> Response {
    let counters = shared.counters();
    let body = serde_json::to_string_pretty(&json!({
        "accepted": counters.accepted,
        "requests": counters.requests,
        "shed": counters.shed,
        "streamed": counters.streamed,
        "trees": shared.service.len(),
    }))
    .expect("stats reports always serialise");
    Response::json(200, body)
}

fn handle_query(shared: &Shared, request: &Request, hash: &str, query: &str) -> Handled {
    let tree = match shared.service.tree(hash) {
        Some(tree) => tree,
        None => {
            return Handled::Full(error_json(
                404,
                &format!("no fault tree registered under {hash:?}"),
            ))
        }
    };
    let spec = match query_spec(request) {
        Ok(spec) => spec,
        Err(response) => return Handled::Full(response),
    };

    match query {
        "mpmcs" => {
            let mut analyzer = analyzer_for(shared, &tree, &spec);
            Handled::Full(match analyzer.mpmcs() {
                Ok(best) => Response::json(
                    200,
                    report::render_report(
                        &tree,
                        std::slice::from_ref(&best),
                        Termination::Complete,
                        spec.budgeted(),
                        spec.stats,
                    ),
                ),
                Err(error) => session_error_response(error),
            })
        }
        "top-k" => {
            let k = match request.param("k") {
                Some(text) => match text.parse::<usize>() {
                    Ok(k) if k > 0 => k,
                    _ => {
                        return Handled::Full(error_json(
                            400,
                            &format!("parameter k={text:?} is not a positive integer"),
                        ))
                    }
                },
                None => {
                    return Handled::Full(error_json(
                        400,
                        "the top-k endpoint requires a k parameter",
                    ))
                }
            };
            enumeration(shared, &tree, spec, Some(k))
        }
        "all-mcs" => enumeration(shared, &tree, spec, None),
        "probability" => {
            let mut analyzer = analyzer_for(shared, &tree, &spec);
            let backend = analyzer.resolved_backend();
            Handled::Full(match analyzer.probability() {
                Ok(probability) => Response::json(
                    200,
                    report::render_probability(&tree, backend, spec.preprocess, probability),
                ),
                Err(error) => session_error_response(error),
            })
        }
        "importance" => {
            let mut analyzer = analyzer_for(shared, &tree, &spec);
            Handled::Full(match analyzer.importance() {
                Ok(table) => Response::json(200, report::render_importance(&table)),
                Err(error) => session_error_response(error),
            })
        }
        "sweep" => {
            let range = match request.param("range") {
                Some(text) => match SweepRange::parse(text) {
                    Ok(range) => range,
                    Err(message) => return Handled::Full(error_json(400, &message)),
                },
                None => {
                    return Handled::Full(error_json(
                        400,
                        "the sweep endpoint requires a range=START:END:STEP parameter",
                    ))
                }
            };
            let csv = match request.param("format") {
                None | Some("json") => false,
                Some("csv") => true,
                Some(other) => {
                    return Handled::Full(error_json(
                        400,
                        &format!("unknown sweep format {other:?} (expected json or csv)"),
                    ))
                }
            };
            let mut analyzer = analyzer_for(shared, &tree, &spec);
            let backend = analyzer.resolved_backend();
            Handled::Full(match analyzer.sweep(&range.grid()) {
                Ok(curve) if csv => Response {
                    status: 200,
                    headers: Vec::new(),
                    content_type: "text/csv",
                    body: report::render_sweep_csv(&curve).into_bytes(),
                },
                Ok(curve) => Response::json(
                    200,
                    report::render_sweep_json(&tree, backend, spec.preprocess, &curve),
                ),
                Err(error) => session_error_response(error),
            })
        }
        other => Handled::Full(error_json(404, &format!("unknown query {other:?}"))),
    }
}

/// A collected or streamed enumeration (`top-k` with `Some(k)`,
/// `all-mcs` with `None`).
fn enumeration(
    shared: &Shared,
    tree: &Arc<FaultTree>,
    spec: QuerySpec,
    k: Option<usize>,
) -> Handled {
    if !spec.stream {
        let mut analyzer = analyzer_for(shared, tree, &spec);
        let answer = match k {
            Some(k) => analyzer.top_k(k),
            None => analyzer.all_mcs(),
        };
        return Handled::Full(match answer {
            Ok(set) => Response::json(
                200,
                report::render_solution_set(tree, &set, spec.budgeted(), spec.stats),
            ),
            Err(error) => session_error_response(error),
        });
    }

    // Streamed: the effective cap is the tighter of the request size and
    // the caller's max-solutions (exactly the collected query's `target`).
    let cap_constrains = match (k, spec.max_solutions) {
        (Some(k), Some(cap)) => cap < k,
        (None, Some(_)) => true,
        _ => false,
    };
    let effective_cap = match (k, spec.max_solutions) {
        (Some(k), Some(cap)) => Some(k.min(cap)),
        (Some(k), None) => Some(k),
        (None, cap) => cap,
    };
    let adjusted = QuerySpec {
        max_solutions: effective_cap,
        ..spec
    };
    let analyzer = analyzer_for(shared, tree, &adjusted);
    let mut stream = analyzer.stream();
    // Pull the first item before committing to a 200: a query that fails
    // outright still earns its proper error status.
    let first = match stream.next() {
        Some(Ok(solution)) => Some(solution),
        Some(Err(error)) => return Handled::Full(session_error_response(error)),
        None => None,
    };
    Handled::Stream(Box::new(StreamPlan {
        tree: Arc::clone(tree),
        stream,
        first,
        requested_k: k,
        cap_constrains,
        stats: adjusted.stats,
    }))
}

/// One report object, pretty-printed as an element of a JSON array at
/// nesting level 1 (every line after the first gains one indent step), so
/// that concatenated tie-group chunks reproduce `to_string_pretty` of the
/// whole array byte-for-byte.
fn array_element(tree: &FaultTree, solution: &BackendSolution, stats: bool) -> String {
    report::render_report(
        tree,
        std::slice::from_ref(solution),
        Termination::Complete,
        false,
        stats,
    )
    .replace('\n', "\n  ")
}

/// Executes a [`StreamPlan`] as a chunked response: one equal-cost tie
/// group per chunk, termination labels in the trailers.
pub(crate) fn stream_solutions<W: Write>(
    plan: StreamPlan,
    out: W,
    keep_alive: bool,
) -> io::Result<()> {
    let StreamPlan {
        tree,
        mut stream,
        first,
        requested_k,
        cap_constrains,
        stats,
    } = plan;
    let mut writer =
        ChunkedWriter::start(out, 200, "application/json", STREAM_TRAILERS, keep_alive)?;

    let mut group: Vec<BackendSolution> = Vec::new();
    let mut group_cost: Option<u64> = None;
    let mut groups_emitted = 0usize;
    let mut failure: Option<SessionError> = None;
    let mut delivered = 0usize;

    // `close_group` flushes the buffered tie group as one chunk. The very
    // first flush decides the collected shape: a single solution that is
    // the entire answer renders as a bare object, anything else opens an
    // array. `more` says whether further solutions are known to follow.
    let flush_group = |group: &mut Vec<BackendSolution>,
                       groups_emitted: &mut usize,
                       more: bool,
                       writer: &mut ChunkedWriter<W>|
     -> io::Result<()> {
        if group.is_empty() {
            return Ok(());
        }
        let mut chunk = String::new();
        if *groups_emitted == 0 {
            if !more && group.len() == 1 {
                // The whole answer is one solution: the bare-object shape.
                chunk =
                    report::render_report(&tree, &group[..1], Termination::Complete, false, stats);
                writer.write_chunk(chunk.as_bytes())?;
                group.clear();
                *groups_emitted += 1;
                return Ok(());
            }
            chunk.push_str("[\n  ");
        } else {
            chunk.push_str(",\n  ");
        }
        let elements: Vec<String> = group
            .iter()
            .map(|solution| array_element(&tree, solution, stats))
            .collect();
        chunk.push_str(&elements.join(",\n  "));
        writer.write_chunk(chunk.as_bytes())?;
        group.clear();
        *groups_emitted += 1;
        Ok(())
    };

    let push = |solution: BackendSolution,
                group: &mut Vec<BackendSolution>,
                group_cost: &mut Option<u64>,
                groups_emitted: &mut usize,
                writer: &mut ChunkedWriter<W>|
     -> io::Result<()> {
        let cost = scaled_cut_cost(&tree, &solution.cut_set);
        if group_cost.is_some_and(|current| current != cost) {
            flush_group(group, groups_emitted, true, writer)?;
        }
        *group_cost = Some(cost);
        group.push(solution);
        Ok(())
    };

    if let Some(solution) = first {
        delivered += 1;
        push(
            solution,
            &mut group,
            &mut group_cost,
            &mut groups_emitted,
            &mut writer,
        )?;
    }
    for item in stream.by_ref() {
        match item {
            Ok(solution) => {
                delivered += 1;
                push(
                    solution,
                    &mut group,
                    &mut group_cost,
                    &mut groups_emitted,
                    &mut writer,
                )?;
            }
            Err(error) => {
                failure = Some(error);
                break;
            }
        }
    }
    let single = groups_emitted == 0 && group.len() == 1 && failure.is_none();
    flush_group(&mut group, &mut groups_emitted, false, &mut writer)?;
    if delivered == 0 {
        // An empty family (budget fired before the first solution, or a
        // capped query over an empty prefix) is the empty-array shape.
        writer.write_chunk(b"[]")?;
    } else if !single {
        writer.write_chunk(b"\n]")?;
    }

    let termination = match &failure {
        Some(_) => Termination::Failed,
        None => {
            let raw = stream.termination().unwrap_or(Termination::Complete);
            // A cap that merely satisfied the requested k is not a
            // truncation — mirror the collected query's labelling.
            if raw == Termination::SolutionCap && !cap_constrains && requested_k == Some(delivered)
            {
                Termination::Complete
            } else {
                raw
            }
        }
    };
    let mut trailers = vec![
        ("x-termination", termination.label().to_string()),
        ("x-truncated", termination.is_truncated().to_string()),
        ("x-delivered", delivered.to_string()),
    ];
    if let Some(error) = &failure {
        trailers.push(("x-error", error.to_string().replace(['\r', '\n'], " ")));
    }
    writer.finish(&trailers)
}

/// The verbs a known path shape answers to, for `405 Method Not Allowed`.
fn allowed_methods(segments: &[&str]) -> Option<&'static str> {
    match segments {
        ["health"] | ["stats"] => Some("GET"),
        ["trees"] => Some("GET, POST"),
        ["trees", _] => Some("DELETE"),
        ["trees", _, "mpmcs" | "top-k" | "all-mcs" | "probability" | "importance" | "sweep"] => {
            Some("GET")
        }
        _ => None,
    }
}

/// Routes one parsed request.
pub(crate) fn handle(shared: &Shared, request: &Request) -> Handled {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["health"]) => Handled::Full(handle_health(shared)),
        ("GET", ["stats"]) => Handled::Full(handle_stats(shared)),
        ("POST", ["trees"]) => Handled::Full(handle_upload(shared, request)),
        ("GET", ["trees"]) => Handled::Full(handle_list(shared)),
        ("DELETE", ["trees", hash]) => Handled::Full(handle_delete(shared, hash)),
        ("GET", ["trees", hash, query]) => handle_query(shared, request, hash, query),
        (_, segments) => Handled::Full(match allowed_methods(segments) {
            Some(allow) => error_json(
                405,
                &format!("method {} is not allowed here", request.method),
            )
            .with_header("Allow", allow.to_string()),
            None => error_json(404, &format!("no route for {:?}", request.path)),
        }),
    }
}
