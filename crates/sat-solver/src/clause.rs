//! Flat arena clause storage.
//!
//! All clauses — original and learnt — live in one flat arena (`Vec<Lit>`,
//! where the header words reuse the `Lit` newtype as a raw `u32` cell). Each
//! clause is a contiguous block:
//!
//! ```text
//! offset + 0 : len               number of literals
//! offset + 1 : flags | lbd << 2  bit 0 = learnt, bit 1 = deleted
//! offset + 2 : activity (hi)     upper 32 bits of the f64 activity
//! offset + 3 : activity (lo)     lower 32 bits of the f64 activity
//! offset + 4 : lit[0] … lit[len-1]
//! ```
//!
//! A [`ClauseRef`] is the arena offset of the header, so dereferencing a
//! clause is one add and no pointer chase — propagation touches a single
//! contiguous allocation instead of a `Vec<Vec<Lit>>`. Deletion is lazy
//! (the `deleted` flag plus a `wasted` word counter); when enough of the
//! arena is dead, [`ClauseDb::compact`] rewrites the arena in place and
//! returns an old-offset → new-offset table so the solver can rewrite its
//! watch lists and reason references.

use crate::lit::Lit;

/// Number of header words preceding the literals of every clause.
const HEADER: u32 = 4;
const LEARNT_BIT: u32 = 0b01;
const DELETED_BIT: u32 = 0b10;
const LBD_SHIFT: u32 = 2;

/// A reference to a clause stored in the solver's clause database: the arena
/// offset of the clause header.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClauseRef(pub(crate) u32);

impl ClauseRef {
    /// The arena offset of the clause header inside the database.
    #[inline(always)]
    pub fn offset(self) -> usize {
        self.0 as usize
    }
}

/// A read-only view of one clause in the database, borrowed from the arena.
#[derive(Clone, Copy, Debug)]
pub struct Clause<'a> {
    lits: &'a [Lit],
    learnt: bool,
}

impl<'a> Clause<'a> {
    /// The literals of this clause.
    #[inline]
    pub fn literals(&self) -> &'a [Lit] {
        self.lits
    }

    /// Number of literals in the clause.
    #[inline]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` if the clause has no literals (the empty clause, i.e. ⊥).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// `true` if this clause was learnt during conflict analysis.
    #[inline]
    pub fn is_learnt(&self) -> bool {
        self.learnt
    }
}

/// The clause database: one flat arena of header-prefixed literal blocks,
/// addressed by [`ClauseRef`] offsets.
#[derive(Default, Debug)]
pub(crate) struct ClauseDb {
    /// The flat storage. Header words are stored as raw `u32`s wrapped in
    /// `Lit` so the literal region can be handed out as a plain `&[Lit]`
    /// slice without any unsafe casting.
    arena: Vec<Lit>,
    /// Header offsets of every clause ever added (deleted ones included
    /// until the next compaction), in insertion order.
    refs: Vec<u32>,
    /// Number of non-deleted learnt clauses.
    pub(crate) num_learnt: usize,
    /// Arena words occupied by deleted or shrunk clauses; triggers
    /// compaction.
    pub(crate) wasted: usize,
}

impl ClauseDb {
    pub(crate) fn add(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        let offset = self.arena.len() as u32;
        self.arena.push(Lit(lits.len() as u32));
        self.arena.push(Lit(if learnt { LEARNT_BIT } else { 0 }));
        let bits = 0f64.to_bits();
        self.arena.push(Lit((bits >> 32) as u32));
        self.arena.push(Lit(bits as u32));
        self.arena.extend_from_slice(lits);
        self.refs.push(offset);
        if learnt {
            self.num_learnt += 1;
        }
        ClauseRef(offset)
    }

    /// Number of clauses (original + learnt, including lazily deleted ones).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.refs.len()
    }

    /// Total arena words in use (live + wasted), the denominator of the
    /// compaction trigger.
    #[inline]
    pub(crate) fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Iterates the header offsets of all clauses in insertion order
    /// (deleted clauses included; filter with [`ClauseDb::is_deleted`]).
    #[inline]
    pub(crate) fn refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        self.refs.iter().map(|&offset| ClauseRef(offset))
    }

    /// Number of literals in the clause.
    #[inline(always)]
    pub(crate) fn len_of(&self, cref: ClauseRef) -> usize {
        self.arena[cref.offset()].0 as usize
    }

    #[inline(always)]
    fn flags(&self, cref: ClauseRef) -> u32 {
        self.arena[cref.offset() + 1].0
    }

    #[inline(always)]
    pub(crate) fn is_learnt(&self, cref: ClauseRef) -> bool {
        self.flags(cref) & LEARNT_BIT != 0
    }

    #[inline(always)]
    pub(crate) fn is_deleted(&self, cref: ClauseRef) -> bool {
        self.flags(cref) & DELETED_BIT != 0
    }

    #[inline(always)]
    pub(crate) fn lbd(&self, cref: ClauseRef) -> u32 {
        self.flags(cref) >> LBD_SHIFT
    }

    #[inline(always)]
    pub(crate) fn set_lbd(&mut self, cref: ClauseRef, lbd: u32) {
        let word = &mut self.arena[cref.offset() + 1];
        *word = Lit((word.0 & (LEARNT_BIT | DELETED_BIT)) | (lbd << LBD_SHIFT));
    }

    #[inline(always)]
    pub(crate) fn activity(&self, cref: ClauseRef) -> f64 {
        let hi = self.arena[cref.offset() + 2].0 as u64;
        let lo = self.arena[cref.offset() + 3].0 as u64;
        f64::from_bits(hi << 32 | lo)
    }

    #[inline(always)]
    pub(crate) fn set_activity(&mut self, cref: ClauseRef, activity: f64) {
        let bits = activity.to_bits();
        self.arena[cref.offset() + 2] = Lit((bits >> 32) as u32);
        self.arena[cref.offset() + 3] = Lit(bits as u32);
    }

    /// The literals of the clause as a contiguous slice.
    #[inline(always)]
    pub(crate) fn lits(&self, cref: ClauseRef) -> &[Lit] {
        let start = cref.offset() + HEADER as usize;
        &self.arena[start..start + self.arena[cref.offset()].0 as usize]
    }

    /// The `k`-th literal of the clause.
    #[inline(always)]
    pub(crate) fn lit_at(&self, cref: ClauseRef, k: usize) -> Lit {
        self.arena[cref.offset() + HEADER as usize + k]
    }

    /// Swaps two literal positions of the clause in place (watch moves).
    #[inline(always)]
    pub(crate) fn swap_lits(&mut self, cref: ClauseRef, i: usize, j: usize) {
        let base = cref.offset() + HEADER as usize;
        self.arena.swap(base + i, base + j);
    }

    /// A public read-only view of the clause.
    #[inline]
    pub(crate) fn view(&self, cref: ClauseRef) -> Clause<'_> {
        Clause {
            lits: self.lits(cref),
            learnt: self.is_learnt(cref),
        }
    }

    /// Promotes a learnt clause to irredundant (inprocessing does this when
    /// a learnt clause subsumes an original one, so learnt-DB reduction can
    /// no longer discard it). No-op for originals and deleted clauses.
    pub(crate) fn promote(&mut self, cref: ClauseRef) {
        if self.is_learnt(cref) && !self.is_deleted(cref) {
            let word = &mut self.arena[cref.offset() + 1];
            *word = Lit(word.0 & !LEARNT_BIT);
            self.num_learnt -= 1;
        }
    }

    /// Marks the clause deleted (lazy: watchers and the arena block are
    /// reclaimed later). Idempotent.
    pub(crate) fn delete(&mut self, cref: ClauseRef) {
        if self.is_deleted(cref) {
            return;
        }
        if self.is_learnt(cref) {
            self.num_learnt -= 1;
        }
        let word = &mut self.arena[cref.offset() + 1];
        *word = Lit(word.0 | DELETED_BIT);
        self.wasted += HEADER as usize + self.len_of(cref);
    }

    /// Overwrites the clause's literals with a shorter set (inprocessing
    /// strengthening). The freed tail words stay in place until compaction.
    ///
    /// # Panics
    ///
    /// Panics if `new_lits` is longer than the current clause.
    pub(crate) fn shrink(&mut self, cref: ClauseRef, new_lits: &[Lit]) {
        let old_len = self.len_of(cref);
        assert!(new_lits.len() <= old_len, "shrink cannot grow a clause");
        let base = cref.offset() + HEADER as usize;
        self.arena[base..base + new_lits.len()].copy_from_slice(new_lits);
        self.arena[cref.offset()] = Lit(new_lits.len() as u32);
        self.wasted += old_len - new_lits.len();
    }

    /// Rewrites the arena in place, dropping deleted clauses and closing the
    /// gaps left by shrunk ones. Returns `(old_offset, new_offset)` pairs for
    /// every surviving clause, sorted by old offset, so the solver can rewrite
    /// watch lists and reason references (see [`remap`]).
    pub(crate) fn compact(&mut self) -> Vec<(u32, u32)> {
        let mut remap = Vec::with_capacity(self.refs.len());
        let mut new_arena: Vec<Lit> = Vec::with_capacity(self.arena.len() - self.wasted);
        let mut new_refs: Vec<u32> = Vec::with_capacity(self.refs.len());
        for &offset in &self.refs {
            let cref = ClauseRef(offset);
            if self.is_deleted(cref) {
                continue;
            }
            let new_offset = new_arena.len() as u32;
            let len = self.len_of(cref);
            let start = cref.offset();
            new_arena.extend_from_slice(&self.arena[start..start + HEADER as usize + len]);
            new_refs.push(new_offset);
            remap.push((offset, new_offset));
        }
        self.arena = new_arena;
        self.refs = new_refs;
        self.wasted = 0;
        remap
    }
}

/// Looks up a surviving clause's new offset in a [`ClauseDb::compact`] table
/// (`None` when the clause was deleted by the compaction).
#[inline]
pub(crate) fn remap(table: &[(u32, u32)], cref: ClauseRef) -> Option<ClauseRef> {
    table
        .binary_search_by_key(&cref.0, |&(old, _)| old)
        .ok()
        .map(|i| ClauseRef(table[i].1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::{Lit, Var};

    fn lit(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }

    #[test]
    fn adding_and_fetching_clauses() {
        let mut db = ClauseDb::default();
        let c0 = db.add(&[lit(0), lit(1)], false);
        let c1 = db.add(&[lit(2)], true);
        assert_eq!(db.len(), 2);
        assert_eq!(db.len_of(c0), 2);
        assert_eq!(db.lits(c0), &[lit(0), lit(1)]);
        assert!(db.is_learnt(c1));
        assert!(!db.is_learnt(c0));
        assert_eq!(db.num_learnt, 1);
        assert!(!db.view(c0).is_empty());
        assert_eq!(db.view(c1).literals(), &[lit(2)]);
    }

    #[test]
    fn headers_hold_lbd_and_activity_without_clobbering_flags() {
        let mut db = ClauseDb::default();
        let c = db.add(&[lit(0), lit(1), lit(2)], true);
        db.set_lbd(c, 17);
        db.set_activity(c, 3.5);
        assert_eq!(db.lbd(c), 17);
        assert_eq!(db.activity(c), 3.5);
        assert!(db.is_learnt(c));
        assert!(!db.is_deleted(c));
        db.set_lbd(c, 2);
        assert_eq!(db.lbd(c), 2);
        assert!(db.is_learnt(c), "LBD updates must preserve the flag bits");
        assert_eq!(db.activity(c), 3.5);
    }

    #[test]
    fn deleting_learnt_clauses_updates_counters() {
        let mut db = ClauseDb::default();
        let c = db.add(&[lit(0), lit(1), lit(2)], true);
        assert_eq!(db.num_learnt, 1);
        db.delete(c);
        assert_eq!(db.num_learnt, 0);
        assert_eq!(db.wasted, 4 + 3, "header plus literal words are wasted");
        // Deleting twice is idempotent.
        db.delete(c);
        assert_eq!(db.num_learnt, 0);
        assert_eq!(db.wasted, 4 + 3);
    }

    #[test]
    fn shrink_rewrites_literals_and_counts_waste() {
        let mut db = ClauseDb::default();
        let c = db.add(&[lit(0), lit(1), lit(2), lit(3)], false);
        db.shrink(c, &[lit(3), lit(1)]);
        assert_eq!(db.len_of(c), 2);
        assert_eq!(db.lits(c), &[lit(3), lit(1)]);
        assert_eq!(db.wasted, 2);
    }

    #[test]
    fn compaction_drops_deleted_clauses_and_remaps_survivors() {
        let mut db = ClauseDb::default();
        let c0 = db.add(&[lit(0), lit(1)], false);
        let c1 = db.add(&[lit(2), lit(3), lit(4)], true);
        let c2 = db.add(&[lit(5), lit(6)], false);
        db.set_activity(c1, 2.25);
        db.delete(c0);
        let table = db.compact();
        assert_eq!(db.len(), 2);
        assert_eq!(db.wasted, 0);
        assert_eq!(remap(&table, c0), None, "deleted clauses have no new home");
        let n1 = remap(&table, c1).expect("survivor");
        let n2 = remap(&table, c2).expect("survivor");
        assert_eq!(db.lits(n1), &[lit(2), lit(3), lit(4)]);
        assert_eq!(db.lits(n2), &[lit(5), lit(6)]);
        assert!(db.is_learnt(n1));
        assert_eq!(db.activity(n1), 2.25);
        assert_eq!(n1.offset(), 0, "survivors are packed from the start");
    }

    #[test]
    fn compaction_reclaims_shrink_waste() {
        let mut db = ClauseDb::default();
        let c0 = db.add(&[lit(0), lit(1), lit(2), lit(3)], false);
        let c1 = db.add(&[lit(4), lit(5)], false);
        db.shrink(c0, &[lit(0), lit(3)]);
        let before = db.arena_len();
        let table = db.compact();
        assert!(db.arena_len() < before);
        let n0 = remap(&table, c0).expect("survivor");
        let n1 = remap(&table, c1).expect("survivor");
        assert_eq!(db.lits(n0), &[lit(0), lit(3)]);
        assert_eq!(db.lits(n1), &[lit(4), lit(5)]);
    }
}
