//! The session-oriented analysis facade of the MPMCS4FTA-rs workspace.
//!
//! Everything below this crate is assemble-it-yourself: parse a
//! [`fault_tree::FaultTree`], pick a [`ft_backend::BackendKind`], wire a
//! [`ft_backend::BackendConfig`] through [`ft_backend::backend_for`], and
//! call per-query methods that collect everything into `Vec`s with no way
//! to stop early. This crate is the durable entry point that replaces that
//! plumbing:
//!
//! * [`Analyzer`] — a builder-style facade owning the parsed tree and the
//!   warm incremental solver state, answering typed queries
//!   ([`Analyzer::mpmcs`], [`Analyzer::top_k`], [`Analyzer::all_mcs`],
//!   [`Analyzer::probability`], [`Analyzer::importance`], and the
//!   incremental mission-time [`Analyzer::sweep`]);
//! * [`SolutionStream`] — lazy streaming: one cut set at a time from the
//!   live CDCL session, bounded memory, early exit, byte-identical to the
//!   collected answers;
//! * [`Budget`] / [`CancelToken`] — per-query wall-clock deadlines, solution
//!   caps and cross-thread cancellation, threaded down through the MPMCS
//!   enumeration and the engine loops into the SAT search itself, with
//!   partial results always well-labelled ([`SolutionSet::termination`]);
//! * [`AnalysisService`] — a `Send + Sync` registry sharing immutable parsed
//!   trees across threads with per-thread warm sessions, for concurrent
//!   query serving.
//!
//! # Quick start
//!
//! ```rust
//! use fault_tree::examples::fire_protection_system;
//! use ft_session::{Analyzer, BackendKind, Budget};
//!
//! let mut analyzer = Analyzer::for_tree(fire_protection_system())
//!     .backend(BackendKind::MaxSat)
//!     .budget(Budget::wall_ms(5_000));
//!
//! // Typed collected queries share one warm incremental session:
//! let best = analyzer.mpmcs().unwrap();
//! assert!((best.probability - 0.02).abs() < 1e-9);
//! let all = analyzer.all_mcs().unwrap();
//! assert_eq!(all.solutions.len(), 5);
//! assert!(!all.is_truncated());
//!
//! // Streaming pulls one solution at a time from a live session:
//! let first_two: Vec<_> = analyzer.stream().take(2).collect();
//! assert_eq!(first_two.len(), 2);
//! ```
//!
//! The re-exported [`BackendKind`], [`Budget`], [`CancelToken`] and
//! [`BackendSolution`] types make this crate a one-stop import for
//! consumers; the CLI, the batch engine and the bench harness all go through
//! it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analyzer;
mod grid;
pub mod report;
mod results;
mod service;
mod stream;

pub use analyzer::Analyzer;
pub use grid::{SweepRange, MAX_SWEEP_POINTS};
pub use results::{
    ImportanceReport, ImportanceRow, SessionError, SolutionSet, SweepReport, Termination,
};
pub use service::{AnalysisService, ServiceConfig};
pub use stream::SolutionStream;

// The facade's vocabulary types, re-exported so consumers need one import.
pub use bdd_engine::VariableOrdering;
pub use ft_backend::{
    AnalysisCache, BackendKind, BackendSolution, Budget, CacheStats, CancelToken, StopCause,
};
pub use mpmcs::AlgorithmChoice;

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::examples::fire_protection_system;

    fn assert_send<T: Send>() {}

    #[test]
    fn analyzers_move_between_threads() {
        // An Analyzer owns its warm solver state outright, so a worker
        // thread can be handed one wholesale.
        assert_send::<Analyzer>();
    }

    #[test]
    fn the_issue_example_compiles_and_answers() {
        let mut analyzer = Analyzer::for_tree(fire_protection_system())
            .backend(BackendKind::MaxSat)
            .preprocess(false)
            .budget(Budget::wall_ms(500).max_solutions(16));
        let best = analyzer.mpmcs().expect("solvable");
        assert_eq!(best.event_names(analyzer.tree()), vec!["x1", "x2"]);
        let top = analyzer.top_k(2).expect("solvable");
        assert_eq!(top.solutions.len(), 2);
        assert_eq!(top.termination, Termination::Complete);
    }
}
