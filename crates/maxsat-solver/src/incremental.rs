//! A persistent incremental Weighted Partial MaxSAT session.
//!
//! Repeated-query workloads — top-k cut-set enumeration, importance tables,
//! what-if sweeps — solve a *sequence* of MaxSAT problems that differ only by
//! added hard clauses (blocking clauses, scenario constraints). Rebuilding a
//! solver per query throws away every learnt clause, variable activity and
//! saved phase the previous query paid for. [`IncrementalMaxSat`] keeps one
//! [`Session`] alive instead: hard clauses may be added **between optima**,
//! and each [`IncrementalMaxSat::solve`] call resumes the core-guided OLL
//! search from the accumulated state.
//!
//! The soundness argument, the session-compaction safety valve and a
//! runnable example live on the [`IncrementalMaxSat`] type itself.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use sat_solver::{InterruptHook, Lit, Session, SolveResult, SolverStats};

use crate::encodings::totalizer::Totalizer;
use crate::instance::WcnfInstance;
use crate::oll::{extract_model, normalize_softs, OllConfig};
use crate::result::{MaxSatOutcome, MaxSatResult, MaxSatStats};

/// When one `solve` call extracts this many unsatisfiable cores, the session
/// assumes its accumulated OLL reformulation state has degenerated (weight
/// fragmentation can make the lower bound climb in unit steps) and compacts:
/// the solver is rebuilt from the original instance plus every added hard
/// clause, exactly as a from-scratch solve would see it. At most one
/// compaction happens per call, and never on a session's first call, so a
/// one-shot solve behaves exactly like the historical `OllSolver`.
///
/// The budget is deliberately small: healthy warm-started queries in the
/// enumeration workloads need a handful of cores, while a degenerate one
/// burns thousands — and each wasted core in the degenerate regime is
/// expensive (the assumption set has exploded), so detecting early matters
/// more than avoiding a rare false positive (whose cost is just one
/// from-scratch solve, the historical behaviour).
const COMPACTION_CORE_BUDGET: u64 = 64;

/// A persistent incremental MaxSAT handle: one solver session shared by a
/// sequence of optima, with hard clauses accepted between
/// [`solve`](IncrementalMaxSat::solve) calls.
///
/// Created directly via [`IncrementalMaxSat::new`] /
/// [`IncrementalMaxSat::with_config`], or through
/// [`PortfolioSolver::incremental`](crate::PortfolioSolver::incremental).
///
/// Soundness rests on two standard properties of OLL/RC2: the core
/// reformulation (totalizer counting + weight splitting) is cost-preserving
/// for *every* model, not just the optimal one, so the lower bound and
/// residual weights stay valid when added hard clauses remove models; and
/// added hard clauses only strengthen the formula, so hardened singleton
/// cores (clauses implied by the hard part) remain implied.
///
/// Reuse is a heuristic, not a guarantee: accumulating the reformulation
/// across many optima can fragment the residual weights until a query
/// degenerates (the classic weighted-OLL pathology). A call that blows
/// through an internal core budget therefore *compacts* the session —
/// rebuilds the solver from the original instance plus all added hard
/// clauses — which restores exactly the from-scratch behaviour for that
/// query while keeping every answer and all cumulative statistics intact.
///
/// ```rust
/// use maxsat_solver::{IncrementalMaxSat, MaxSatOutcome, WcnfInstance};
/// use sat_solver::{Lit, Var};
///
/// let a = Lit::positive(Var::from_index(0));
/// let b = Lit::positive(Var::from_index(1));
/// let mut inst = WcnfInstance::with_vars(2);
/// inst.add_hard([a, b]);
/// inst.add_soft([!a], 5);
/// inst.add_soft([!b], 3);
///
/// let mut session = IncrementalMaxSat::new(&inst);
/// let first = session.solve();
/// assert_eq!(first.outcome.cost(), Some(3)); // {b} is cheapest
///
/// // Block the first optimum and ask for the next one.
/// session.add_hard([!b]);
/// let second = session.solve();
/// assert_eq!(second.outcome.cost(), Some(5)); // forced onto {a}
/// assert!(second.stats.session_calls > first.stats.session_calls);
/// ```
pub struct IncrementalMaxSat<'a> {
    session: Session,
    /// The original instance — borrowed for one-shot consumers (like
    /// `OllSolver`, which pays no clone) or owned for self-contained
    /// streaming sessions ([`IncrementalMaxSat::owned`]). Used for model
    /// extraction, exact cost accounting and session compaction; never
    /// mutated, so the `Cow` never actually copies after construction.
    instance: Cow<'a, WcnfInstance>,
    /// Hard clauses added after construction, replayed on compaction.
    added_hard: Vec<Vec<Lit>>,
    /// Residual soft weights per assumption literal (OLL reformulation
    /// state, shared across calls).
    weights: BTreeMap<Lit, u64>,
    /// Lower bound established so far; carried across calls, re-derived
    /// after a compaction.
    lower_bound: u64,
    config: OllConfig,
    /// Counters of solvers retired by compaction, so cumulative statistics
    /// survive the rebuild.
    retired: SolverStats,
    /// Cumulative counters at the end of the previous call (per-call deltas
    /// are measured against this).
    checkpoint: SolverStats,
    /// A compaction is only worthwhile when the degenerate state came from
    /// *accumulation*: never on a session's first call, and at most once per
    /// call (the flag rearms when a call completes).
    compaction_allowed: bool,
    calls: u64,
    /// The cancellation probe forwarded into the SAT search loop (and
    /// re-installed after a compaction rebuilds the solver).
    interrupt: Option<InterruptHook>,
}

impl std::fmt::Debug for IncrementalMaxSat<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalMaxSat")
            .field("session", &self.session)
            .field("added_hard", &self.added_hard.len())
            .field("lower_bound", &self.lower_bound)
            .field("calls", &self.calls)
            .field("interruptible", &self.interrupt.is_some())
            .finish()
    }
}

impl<'a> IncrementalMaxSat<'a> {
    /// Creates a session over `instance` with the default (deterministic)
    /// configuration.
    pub fn new(instance: &'a WcnfInstance) -> Self {
        Self::with_config(instance, OllConfig::default())
    }

    /// Creates a session over `instance` with an explicit OLL configuration.
    pub fn with_config(instance: &'a WcnfInstance, config: OllConfig) -> Self {
        Self::from_cow(Cow::Borrowed(instance), config)
    }

    /// Creates a self-contained `'static` session that owns its instance —
    /// the building block of streaming enumerations, which must carry their
    /// solver state around without borrowing from an encoding.
    pub fn owned(instance: WcnfInstance, config: OllConfig) -> IncrementalMaxSat<'static> {
        IncrementalMaxSat::from_cow(Cow::Owned(instance), config)
    }

    fn from_cow(instance: Cow<'a, WcnfInstance>, config: OllConfig) -> Self {
        let (session, weights, baseline) = build_state(&config, &instance, &[]);
        IncrementalMaxSat {
            session,
            instance,
            added_hard: Vec::new(),
            weights,
            lower_bound: baseline,
            config,
            retired: SolverStats::default(),
            checkpoint: SolverStats::default(),
            compaction_allowed: false,
            calls: 0,
            interrupt: None,
        }
    }

    /// Installs (or clears) the cancellation probe polled by the underlying
    /// SAT search loop. When the probe fires, the current
    /// [`solve_with_stop`](IncrementalMaxSat::solve_with_stop) call returns
    /// `None`; the session state stays consistent, so a later call resumes
    /// the search.
    pub fn set_interrupt(&mut self, hook: Option<InterruptHook>) {
        self.session.set_interrupt(hook.clone());
        self.interrupt = hook;
    }

    /// Adds a hard clause between optima (e.g. a blocking clause excluding
    /// the previous solution and its supersets). The session is at decision
    /// level 0 between calls, so the addition takes effect immediately.
    pub fn add_hard<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        self.session.add_clause(clause.iter().copied());
        self.added_hard.push(clause);
    }

    /// Number of `solve` calls completed so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// The lower bound on the current optimum established so far.
    pub fn lower_bound(&self) -> u64 {
        self.lower_bound
    }

    /// Cumulative statistics of the underlying SAT session, including any
    /// solvers retired by compaction.
    pub fn solver_stats(&self) -> SolverStats {
        self.retired.merged(self.session.stats())
    }

    /// Solves for the optimum of the hard clauses added so far.
    ///
    /// Subsequent calls (typically after [`IncrementalMaxSat::add_hard`])
    /// resume from the accumulated search state; their cost is non-decreasing
    /// since hard clauses only remove models.
    ///
    /// # Panics
    ///
    /// Panics if an installed [interrupt hook](IncrementalMaxSat::set_interrupt)
    /// fires mid-call; interruptible consumers use
    /// [`IncrementalMaxSat::try_solve`] instead.
    pub fn solve(&mut self) -> MaxSatResult {
        self.try_solve()
            .expect("solve cannot be interrupted without a stop request")
    }

    /// Like [`IncrementalMaxSat::solve`], but returns `None` when the
    /// [interrupt hook](IncrementalMaxSat::set_interrupt) fired before a
    /// proven optimum was found. The session state stays consistent, so a
    /// later call picks the search up again.
    pub fn try_solve(&mut self) -> Option<MaxSatResult> {
        self.solve_with_stop(&AtomicBool::new(false))
    }

    /// Like [`IncrementalMaxSat::solve`], checking `stop` between SAT calls;
    /// returns `None` if the flag was raised first. The session state stays
    /// consistent, so a later call can pick the search up again.
    pub fn solve_with_stop(&mut self, stop: &AtomicBool) -> Option<MaxSatResult> {
        let mut stats = MaxSatStats {
            algorithm: "oll".to_string(),
            ..MaxSatStats::default()
        };
        loop {
            if stop.load(Ordering::Relaxed) {
                return None;
            }
            let assumptions: Vec<Lit> = self.weights.keys().copied().collect();
            stats.sat_calls += 1;
            match self.session.solve_with_assumptions(&assumptions) {
                SolveResult::Sat(model) => {
                    let model_vec = extract_model(&model, self.instance.num_vars());
                    let (hard_ok, cost) = self
                        .instance
                        .evaluate(&model_vec)
                        .expect("model covers instance variables");
                    debug_assert!(hard_ok, "SAT model must satisfy all hard clauses");
                    debug_assert_eq!(
                        cost, self.lower_bound,
                        "OLL invariant: model cost equals the established lower bound"
                    );
                    stats.lower_bound = self.lower_bound;
                    stats.upper_bound = cost;
                    return Some(self.finish_call(
                        stats,
                        MaxSatOutcome::Optimum {
                            model: model_vec,
                            cost,
                        },
                    ));
                }
                SolveResult::Interrupted => return None,
                SolveResult::Unsat => {
                    let core: Vec<Lit> = self.session.unsat_core().to_vec();
                    if core.is_empty() {
                        return Some(self.finish_call(stats, MaxSatOutcome::Unsatisfiable));
                    }
                    stats.cores += 1;
                    if self.compaction_allowed && stats.cores >= COMPACTION_CORE_BUDGET {
                        self.compact();
                        continue;
                    }
                    let w_min = core
                        .iter()
                        .map(|l| self.weights.get(l).copied().unwrap_or(u64::MAX))
                        .min()
                        .expect("non-empty core");
                    debug_assert!(w_min > 0 && w_min < u64::MAX);
                    self.lower_bound += w_min;
                    stats.lower_bound = self.lower_bound;
                    for lit in &core {
                        if let Some(w) = self.weights.get_mut(lit) {
                            *w -= w_min;
                            if *w == 0 {
                                self.weights.remove(lit);
                            }
                        }
                    }
                    if core.len() == 1 {
                        if self.config.harden_singleton_cores {
                            self.session.add_clause([!core[0]]);
                        }
                    } else {
                        // Count how many core members are violated; paying
                        // w_min once is already accounted for in the lower
                        // bound, every additional violation costs w_min more.
                        // The totalizer is grown in place inside the live
                        // session — never re-encoded.
                        let violated: Vec<Lit> = core.iter().map(|&l| !l).collect();
                        let totalizer = Totalizer::build(self.session.solver_mut(), &violated);
                        for bound in 2..=violated.len() {
                            let output = totalizer.at_least(bound);
                            *self.weights.entry(!output).or_insert(0) += w_min;
                        }
                    }
                }
            }
        }
    }

    /// Retires the current solver and rebuilds the reformulation state from
    /// the original instance plus every added hard clause — the state a
    /// from-scratch solve would start from. Answers are unaffected; the
    /// retired solver's counters keep contributing to the cumulative
    /// statistics.
    fn compact(&mut self) {
        self.retired = self.solver_stats();
        let (mut session, weights, baseline) =
            build_state(&self.config, &self.instance, &self.added_hard);
        session.set_interrupt(self.interrupt.clone());
        self.session = session;
        self.weights = weights;
        self.lower_bound = baseline;
        self.compaction_allowed = false;
    }

    /// Stamps the per-call SAT work and session counters into `stats` and
    /// wraps up the result.
    fn finish_call(&mut self, mut stats: MaxSatStats, outcome: MaxSatOutcome) -> MaxSatResult {
        self.calls += 1;
        self.compaction_allowed = true;
        let cumulative = self.solver_stats();
        stats.absorb_solver(&cumulative.delta_since(&self.checkpoint));
        stats.session_calls = cumulative.solve_calls;
        self.checkpoint = cumulative;
        MaxSatResult { outcome, stats }
    }
}

/// Builds a fresh solver session over `instance` plus `added_hard`, with the
/// softs normalised into assumption literals. Shared by construction and
/// compaction.
fn build_state(
    config: &OllConfig,
    instance: &WcnfInstance,
    added_hard: &[Vec<Lit>],
) -> (Session, BTreeMap<Lit, u64>, u64) {
    let mut session = Session::with_config(config.sat_config.clone());
    session.ensure_vars(instance.num_vars());
    for clause in instance.hard_clauses() {
        session.add_clause(clause.iter().copied());
    }
    for clause in added_hard {
        session.add_clause(clause.iter().copied());
    }
    let (weights, baseline) = normalize_softs(&mut session, instance);
    (session, weights, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests_support::{brute_force_optimum, random_instance};
    use sat_solver::Var;

    fn pos(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }
    fn neg(i: usize) -> Lit {
        Lit::negative(Var::from_index(i))
    }

    #[test]
    fn optima_are_non_decreasing_under_added_hard_clauses() {
        let mut inst = WcnfInstance::with_vars(3);
        inst.add_hard([pos(0), pos(1), pos(2)]);
        inst.add_soft([neg(0)], 9);
        inst.add_soft([neg(1)], 2);
        inst.add_soft([neg(2)], 5);
        let mut session = IncrementalMaxSat::new(&inst);
        let mut costs = Vec::new();
        loop {
            let result = session.solve();
            let Some(model) = result.outcome.model().map(<[bool]>::to_vec) else {
                break;
            };
            costs.push(result.outcome.cost().unwrap());
            // Block exactly this assignment of the instance variables.
            session.add_hard((0..inst.num_vars()).map(|i| Lit::new(Var::from_index(i), model[i])));
        }
        assert_eq!(costs.first(), Some(&2));
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
        assert_eq!(costs.len(), 7, "all satisfying assignments enumerated");
    }

    #[test]
    fn incremental_optima_match_from_scratch_resolves() {
        // After each optimum, block it as a hard clause and compare the next
        // incremental optimum against a from-scratch solve of the grown
        // instance.
        use crate::{MaxSatAlgorithm, OllSolver};
        for seed in 300..308 {
            let inst = random_instance(seed, 7, 10, 5);
            // The session borrows `inst`; the from-scratch comparison solves
            // its own growing copy.
            let mut grown = inst.clone();
            let mut session = IncrementalMaxSat::new(&inst);
            for _ in 0..4 {
                let incremental = session.solve();
                let scratch = OllSolver::default().solve(&grown);
                assert_eq!(
                    incremental.outcome.cost(),
                    scratch.outcome.cost(),
                    "seed {seed}"
                );
                let Some(model) = incremental.outcome.model().map(<[bool]>::to_vec) else {
                    break;
                };
                let block: Vec<Lit> = (0..inst.num_vars())
                    .map(|i| Lit::new(Var::from_index(i), model[i]))
                    .collect();
                session.add_hard(block.clone());
                grown.add_hard(block);
            }
        }
    }

    #[test]
    fn unsatisfiable_hard_clauses_stay_unsatisfiable() {
        let mut inst = WcnfInstance::with_vars(1);
        inst.add_hard([pos(0)]);
        inst.add_soft([neg(0)], 2);
        let mut session = IncrementalMaxSat::new(&inst);
        assert_eq!(session.solve().outcome.cost(), Some(2));
        session.add_hard([neg(0)]);
        assert_eq!(session.solve().outcome, MaxSatOutcome::Unsatisfiable);
        // Once unsatisfiable, always unsatisfiable.
        assert_eq!(session.solve().outcome, MaxSatOutcome::Unsatisfiable);
        assert_eq!(session.calls(), 3);
    }

    #[test]
    fn session_counters_grow_across_calls() {
        let inst = random_instance(42, 8, 12, 6);
        let expected = brute_force_optimum(&inst);
        let mut session = IncrementalMaxSat::new(&inst);
        let first = session.solve();
        assert_eq!(first.outcome.cost(), expected);
        let second = session.solve();
        assert_eq!(second.outcome.cost(), expected, "idempotent without edits");
        assert!(second.stats.session_calls > first.stats.session_calls);
        assert_eq!(
            session.solver_stats().solve_calls,
            first.stats.sat_calls + second.stats.sat_calls
        );
    }

    /// Session compaction keeps answers and cumulative counters intact: a
    /// manually triggered compaction mid-sequence must be invisible except
    /// for the rebuilt solver.
    #[test]
    fn compaction_preserves_answers_and_counters() {
        let mut inst = WcnfInstance::with_vars(3);
        inst.add_hard([pos(0), pos(1), pos(2)]);
        inst.add_soft([neg(0)], 9);
        inst.add_soft([neg(1)], 2);
        inst.add_soft([neg(2)], 5);
        let mut session = IncrementalMaxSat::new(&inst);
        assert_eq!(session.solve().outcome.cost(), Some(2));
        // Force the most expensive event in, then compact: the rebuilt
        // session must still report the correct next optimum.
        session.add_hard([pos(0)]);
        let before = session.solver_stats().solve_calls;
        session.compact();
        let result = session.solve();
        assert_eq!(result.outcome.cost(), Some(9));
        assert!(
            result.stats.session_calls > before,
            "cumulative counters must survive compaction"
        );
    }
}
