//! A recursive-descent JSON parser with line tracking.

use serde::{Error, Map, Number, Value};

/// Nesting depth cap protecting the recursive parser from stack overflow on
/// adversarial inputs.
const MAX_DEPTH: usize = 256;

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] (carrying the 1-based line) for malformed input,
/// trailing content, or nesting deeper than an internal limit.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        line: 1,
    };
    parser.skip_whitespace();
    let value = parser.value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        Error::at_line(self.line, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        if byte == b'\n' {
            self.line += 1;
        }
        Some(byte)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, expected: u8) -> Result<(), Error> {
        match self.bump() {
            Some(byte) if byte == expected => Ok(()),
            Some(byte) => Err(self.error(format!(
                "expected {:?}, found {:?}",
                expected as char, byte as char
            ))),
            None => Err(self.error(format!(
                "expected {:?}, found end of input",
                expected as char
            ))),
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        for &expected in keyword.as_bytes() {
            match self.bump() {
                Some(byte) if byte == expected => {}
                _ => return Err(self.error(format!("invalid literal, expected `{keyword}`"))),
            }
        }
        Ok(())
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(byte) if byte == b'-' || byte.is_ascii_digit() => self.number(),
            Some(byte) => Err(self.error(format!("unexpected character {:?}", byte as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Array(elements));
        }
        loop {
            self.skip_whitespace();
            elements.push(self.value(depth + 1)?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(elements)),
                Some(byte) => {
                    return Err(self.error(format!(
                        "expected ',' or ']' in array, found {:?}",
                        byte as char
                    )))
                }
                None => return Err(self.error("unterminated array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string object key"));
            }
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(map)),
                Some(byte) => {
                    return Err(self.error(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        byte as char
                    )))
                }
                None => return Err(self.error("unterminated object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped UTF-8 runs wholesale.
            while let Some(byte) = self.peek() {
                if byte == b'"' || byte == b'\\' || byte < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, so the run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.error("invalid escape sequence")),
                },
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let byte = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (byte as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                return Err(self.error("unpaired surrogate in \\u escape"));
            }
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.error("invalid low surrogate in \\u escape"));
            }
            let code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
            char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(first).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut integral = true;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.bump();
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(n)));
            }
        }
        let x: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number {text:?}")))?;
        if !x.is_finite() {
            return Err(self.error(format!("number {text:?} is out of range")));
        }
        Ok(Value::Number(Number::Float(x)))
    }
}
