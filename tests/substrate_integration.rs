//! Integration tests exercising the solving substrates (SAT, MaxSAT, WCNF,
//! DIMACS) through the fault-tree encodings, plus the CLI-facing formats.

use fault_tree::examples::{fire_protection_system, redundant_sensor_network};
use fault_tree::StructureFormula;
use ft_generators::{random_tree, RandomTreeConfig};
use maxsat_solver::{wcnf, MaxSatAlgorithm, OllSolver, PortfolioSolver};
use mpmcs::{AlgorithmChoice, MpmcsOptions, MpmcsSolver};
use sat_solver::tseitin::TseitinEncoder;
use sat_solver::{dimacs, SolveResult, Solver};

/// The Tseitin CNF of the failure formula is satisfiable, and conjoined with
/// the success formula it becomes unsatisfiable (f ∧ ¬f).
#[test]
fn failure_and_success_formulas_are_contradictory() {
    for tree in [fire_protection_system(), redundant_sensor_network()] {
        let formula = StructureFormula::of(&tree);
        let mut encoder = TseitinEncoder::with_reserved_vars(tree.num_events());
        encoder.assert_true(formula.failure_expr());
        let mut solver = Solver::from_cnf(encoder.cnf());
        assert!(solver.solve().is_sat(), "{}", tree.name());

        let mut encoder = TseitinEncoder::with_reserved_vars(tree.num_events());
        encoder.assert_true(formula.failure_expr());
        encoder.assert_true(&formula.success_expr());
        let mut solver = Solver::from_cnf(encoder.cnf());
        assert_eq!(solver.solve(), SolveResult::Unsat, "{}", tree.name());
    }
}

/// The hard part of the MPMCS encoding survives a DIMACS round trip.
#[test]
fn dimacs_round_trip_of_the_encoding_hard_clauses() {
    let tree = fire_protection_system();
    let formula = StructureFormula::of(&tree);
    let mut encoder = TseitinEncoder::with_reserved_vars(tree.num_events());
    encoder.assert_true(formula.failure_expr());
    let cnf = encoder.into_cnf();
    let text = dimacs::to_dimacs_string(&cnf);
    let parsed = dimacs::parse_dimacs_str(&text).expect("round trip");
    assert_eq!(parsed.num_clauses(), cnf.num_clauses());
    let mut solver = Solver::from_cnf(&parsed);
    assert!(solver.solve().is_sat());
}

/// The full Weighted Partial MaxSAT instance survives a WCNF round trip and
/// still has the same optimum — so the encoding can be exported to any
/// off-the-shelf MaxSAT solver, as the original tool does.
#[test]
fn wcnf_round_trip_preserves_the_optimum() {
    let tree = fire_protection_system();
    let encoding = MpmcsSolver::new().encode(&tree);
    let text = wcnf::to_wcnf_string(encoding.instance());
    let parsed = wcnf::parse_wcnf_str(&text).expect("round trip");
    let original = OllSolver::default().solve(encoding.instance());
    let reparsed = OllSolver::default().solve(&parsed);
    assert_eq!(original.outcome.cost(), reparsed.outcome.cost());
    // Decoding the re-parsed model still gives the paper's MPMCS.
    let cut = encoding.decode(reparsed.outcome.model().expect("optimum"));
    assert_eq!(cut.display_names(&tree), "{x1, x2}");
}

/// The parallel portfolio and the plain OLL solver agree on generated
/// encodings of moderate size.
#[test]
fn portfolio_and_oll_agree_on_generated_encodings() {
    for seed in 0..5u64 {
        let tree = random_tree(
            &RandomTreeConfig {
                num_events: 60,
                ..RandomTreeConfig::default()
            },
            seed,
        );
        let encoding = MpmcsSolver::new().encode(&tree);
        let portfolio = PortfolioSolver::default().solve(encoding.instance());
        let oll = OllSolver::default().solve(encoding.instance());
        assert_eq!(portfolio.outcome.cost(), oll.outcome.cost(), "seed {seed}");
    }
}

/// A moderately sized generated tree runs through the full pipeline quickly
/// and all algorithm choices agree on the optimal probability.
#[test]
fn all_algorithms_agree_on_a_midsize_generated_tree() {
    let tree = random_tree(
        &RandomTreeConfig {
            num_events: 150,
            ..RandomTreeConfig::default()
        },
        9,
    );
    let mut probabilities = Vec::new();
    for algorithm in [
        AlgorithmChoice::Portfolio,
        AlgorithmChoice::SequentialPortfolio,
        AlgorithmChoice::Oll,
        AlgorithmChoice::LinearSu,
    ] {
        let solver = MpmcsSolver::with_options(MpmcsOptions {
            algorithm,
            ..MpmcsOptions::new()
        });
        let solution = solver.solve(&tree).expect("solvable");
        assert!(tree.is_minimal_cut_set(&solution.cut_set));
        probabilities.push(solution.probability);
    }
    for pair in probabilities.windows(2) {
        assert!((pair[0] - pair[1]).abs() <= 1e-9 * pair[0].max(1e-300));
    }
}
