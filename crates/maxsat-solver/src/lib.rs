//! Weighted Partial MaxSAT solvers.
//!
//! This crate is the optimisation substrate of the MPMCS4FTA-rs workspace
//! (paper Steps 4 and 5). A [`WcnfInstance`] holds *hard* clauses that every
//! solution must satisfy and *soft* clauses with positive integer weights; the
//! solvers find a model of the hard clauses that minimises the total weight of
//! falsified soft clauses.
//!
//! Three solving strategies are provided:
//!
//! * [`OllSolver`] — core-guided OLL/RC2-style search. Repeatedly solves under
//!   the assumption that every remaining soft clause holds; each unsatisfiable
//!   core raises the lower bound and is reformulated with a totalizer counting
//!   how many of its members are violated. Very effective when the optimum
//!   violates only a few soft clauses — exactly the situation of minimal cut
//!   sets, which are small.
//! * [`LinearSuSolver`] — model-improving linear SAT–UNSAT search. Finds any
//!   model, then adds a pseudo-Boolean bound `Σ w·(violated) ≤ cost − 1`
//!   (generalized totalizer encoding) and repeats until unsatisfiable.
//! * [`PortfolioSolver`] — the paper's Step 5: several differently-configured
//!   solvers race in parallel threads and the first to finish wins.
//!
//! For *sequences* of closely related optima (top-k enumeration, what-if
//! sweeps), [`IncrementalMaxSat`] keeps one solver session alive across
//! queries: hard clauses may be added between optima, and every call resumes
//! from the learnt clauses, activities and phases the previous calls paid
//! for. [`PortfolioSolver::incremental`] opens such a session.
//!
//! # Example
//!
//! ```rust
//! use maxsat_solver::{MaxSatOutcome, OllSolver, MaxSatAlgorithm, WcnfInstance};
//! use sat_solver::{Lit, Var};
//!
//! let mut inst = WcnfInstance::with_vars(2);
//! let a = Lit::positive(Var::from_index(0));
//! let b = Lit::positive(Var::from_index(1));
//! // Hard: a ∨ b. Soft: prefer ¬a (weight 5) and ¬b (weight 3).
//! inst.add_hard([a, b]);
//! inst.add_soft([!a], 5);
//! inst.add_soft([!b], 3);
//! let result = OllSolver::default().solve(&inst);
//! match result.outcome {
//!     MaxSatOutcome::Optimum { cost, ref model } => {
//!         assert_eq!(cost, 3); // violate the cheaper soft clause
//!         assert!(!model[0] && model[1]);
//!     }
//!     MaxSatOutcome::Unsatisfiable => unreachable!(),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encodings;
mod incremental;
mod instance;
mod linear;
mod oll;
mod portfolio;
mod result;
#[cfg(test)]
mod tests_support;
pub mod wcnf;

pub use encodings::gte::{GteBuilder, GteError};
pub use encodings::totalizer::Totalizer;
pub use incremental::IncrementalMaxSat;
pub use instance::{SoftClause, WcnfInstance};
pub use linear::{LinearSuConfig, LinearSuSolver};
pub use oll::{OllConfig, OllSolver};
pub use portfolio::{PortfolioConfig, PortfolioEntry, PortfolioSolver};
pub use result::{MaxSatOutcome, MaxSatResult, MaxSatStats};

use std::sync::atomic::AtomicBool;

/// A Weighted Partial MaxSAT solving strategy.
pub trait MaxSatAlgorithm {
    /// Human-readable name of the algorithm (used in portfolio reports).
    fn name(&self) -> &'static str;

    /// Solves the instance to optimality.
    fn solve(&self, instance: &WcnfInstance) -> MaxSatResult {
        self.solve_with_stop(instance, &AtomicBool::new(false))
            .expect("solve cannot be interrupted without a stop request")
    }

    /// Solves the instance, checking `stop` between SAT calls; returns `None`
    /// if the stop flag was raised before a proven optimum was found.
    fn solve_with_stop(&self, instance: &WcnfInstance, stop: &AtomicBool) -> Option<MaxSatResult>;
}
