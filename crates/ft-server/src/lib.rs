//! A zero-dependency HTTP/1.1 front end for fault-tree analysis.
//!
//! This crate turns the [`ft_session::AnalysisService`] facade into a
//! network service using nothing but `std::net`: a hand-rolled HTTP/1.1
//! layer ([`http`]), a content-addressed tree registry, typed query
//! endpoints mapped 1:1 onto the facade, chunked streaming of solution
//! enumerations, and explicit capacity management — a fixed worker pool,
//! a bounded accept queue with `503` load shedding, per-connection
//! read/write timeouts, and graceful drain on shutdown.
//!
//! # Endpoints
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /trees` | Register a Galileo or JSON model; the handle is its canonical content hash (idempotent) |
//! | `GET /trees` | List registered trees |
//! | `DELETE /trees/{hash}` | Evict a tree |
//! | `GET /trees/{hash}/mpmcs` | The Maximum Probability Minimal Cut Set |
//! | `GET /trees/{hash}/top-k?k=N` | The `k` most probable minimal cut sets |
//! | `GET /trees/{hash}/all-mcs` | Every minimal cut set |
//! | `GET /trees/{hash}/probability` | Exact top-event probability |
//! | `GET /trees/{hash}/importance` | Per-event importance measures |
//! | `GET /trees/{hash}/sweep?range=S:E:T` | Mission-time probability curve |
//! | `GET /health`, `GET /stats` | Liveness and served/shed counters |
//!
//! Query endpoints accept `backend` (`maxsat`/`bdd`/`mocus`/`auto`),
//! `preprocess`, `timeout-ms`, `max-solutions` and `stats` parameters —
//! the exact vocabulary of the CLI flags — and budget-truncated answers
//! always arrive in the explicit `{"truncated", "termination", "report"}`
//! envelope. Enumeration endpoints take `stream=true` to deliver the
//! answer chunk-by-chunk, one equal-cost tie group per chunk, with the
//! termination label in the `x-termination`/`x-truncated` trailers. All
//! response bodies are rendered by [`ft_session::report`], the same
//! functions the CLI uses, so HTTP answers are **byte-identical** to
//! local runs.
//!
//! # Quick start
//!
//! ```rust
//! use ft_server::{Server, ServerConfig};
//! use std::io::{BufReader, Write};
//! use std::net::TcpStream;
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let mut socket = TcpStream::connect(handle.addr()).unwrap();
//! write!(socket, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
//! let response = ft_server::http::read_response(&mut BufReader::new(&socket)).unwrap();
//! assert_eq!(response.status, 200);
//! handle.shutdown();
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod http;
mod routes;
pub mod signal;

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ft_backend::AnalysisCache;
use ft_session::{AnalysisService, CancelToken};

use http::{read_request, write_response, Response};
use routes::Handled;

/// How a [`Server`] listens and how much work it admits.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Interface to bind (default `127.0.0.1`).
    pub host: String,
    /// Port to bind; `0` picks an ephemeral port (default).
    pub port: u16,
    /// Fixed worker-pool size (default 4).
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it are shed with
    /// `503` + `Retry-After` (default 16).
    pub queue_depth: usize,
    /// Attach a shared [`AnalysisCache`] of this many bytes (default none).
    pub cache_bytes: Option<usize>,
    /// Largest accepted request body (default 8 MiB).
    pub max_body_bytes: usize,
    /// Per-connection read timeout while inside a request (default 10 s).
    pub read_timeout_ms: u64,
    /// Per-connection write timeout (default 10 s).
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 4,
            queue_depth: 16,
            cache_bytes: None,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
        }
    }
}

/// A snapshot of the server's admission counters (`GET /stats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted (admitted or shed).
    pub accepted: u64,
    /// Requests parsed and routed.
    pub requests: u64,
    /// Connections refused with `503` because the queue was full.
    pub shed: u64,
    /// Requests answered with a chunked streaming body.
    pub streamed: u64,
}

/// State shared between the accept thread, the workers and the handle.
pub(crate) struct Shared {
    pub(crate) service: AnalysisService,
    pub(crate) cancel: CancelToken,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    accepted: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    streamed: AtomicU64,
    queue_depth: usize,
    max_body_bytes: usize,
    read_timeout: Duration,
    write_timeout: Duration,
}

impl Shared {
    pub(crate) fn counters(&self) -> ServerCounters {
        ServerCounters {
            accepted: self.accepted.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            streamed: self.streamed.load(Ordering::Relaxed),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The zero-dependency HTTP front end. [`Server::start`] binds the
/// listener and returns a [`ServerHandle`] that owns the threads.
pub struct Server;

impl Server {
    /// Binds `config.host:config.port`, spawns the accept thread and the
    /// worker pool, and returns the controlling handle.
    ///
    /// # Errors
    ///
    /// Propagates socket-level failures (bind, local-address lookup).
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let addr = listener.local_addr()?;
        let mut service = AnalysisService::new();
        if let Some(bytes) = config.cache_bytes {
            service = service.with_cache(Arc::new(AnalysisCache::new(bytes)));
        }
        let shared = Arc::new(Shared {
            service,
            cancel: CancelToken::new(),
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            streamed: AtomicU64::new(0),
            queue_depth: config.queue_depth.max(1),
            max_body_bytes: config.max_body_bytes,
            read_timeout: Duration::from_millis(config.read_timeout_ms.max(1)),
            write_timeout: Duration::from_millis(config.write_timeout_ms.max(1)),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ft-server-accept".to_string())
                .spawn(move || accept_loop(&shared, listener))?
        };
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ft-server-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;

        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }
}

/// Owns a running server: its address, threads and shared state.
/// Dropping the handle shuts the server down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (reports the real port when `port` was 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The tree registry behind the endpoints — lets embedders preload
    /// models without a round trip.
    pub fn service(&self) -> &AnalysisService {
        &self.shared.service
    }

    /// Current admission counters.
    pub fn counters(&self) -> ServerCounters {
        self.shared.counters()
    }

    /// Graceful shutdown: stop accepting, cancel in-flight queries via
    /// the shared [`CancelToken`], drain the queue, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.cancel.cancel();
        self.shared.available.notify_all();
        // Unblock the accept thread with a throwaway connection; if the
        // connect fails the listener is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept.take() {
            let _ = thread.join();
        }
        self.shared.available.notify_all();
        for thread in self.workers.drain(..) {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down() {
                    break;
                }
                continue;
            }
        };
        if shared.shutting_down() {
            break;
        }
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(shared.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.write_timeout));
        let mut queue = shared.queue.lock().expect("accept queue poisoned");
        if queue.len() >= shared.queue_depth {
            drop(queue);
            shared.shed.fetch_add(1, Ordering::Relaxed);
            let response = routes::error_json(503, "server is saturated; retry shortly")
                .with_header("Retry-After", "1".to_string());
            let mut stream = stream;
            let _ = write_response(&mut stream, &response, false);
        } else {
            queue.push_back(stream);
            drop(queue);
            shared.available.notify_one();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let next = {
            let mut queue = shared.queue.lock().expect("accept queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.shutting_down() {
                    break None;
                }
                queue = shared.available.wait(queue).expect("accept queue poisoned");
            }
        };
        let Some(stream) = next else { break };
        let _ = serve_connection(shared, stream);
    }
}

/// How often an idle keep-alive connection re-checks the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Waits for the first byte of the next request without consuming it,
/// polling so an idle connection notices shutdown within [`IDLE_POLL`].
/// Returns `false` when the connection should close (EOF, idle timeout,
/// socket error or shutdown).
fn await_next_request(
    shared: &Shared,
    stream: &TcpStream,
    reader: &mut BufReader<TcpStream>,
) -> bool {
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(IDLE_POLL.min(shared.read_timeout)));
    let ready = loop {
        match reader.fill_buf() {
            Ok([]) => break false,
            Ok(_) => break true,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() || started.elapsed() >= shared.read_timeout {
                    break false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break false,
        }
    };
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    ready
}

fn serve_connection(shared: &Shared, stream: TcpStream) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        if !await_next_request(shared, &writer, &mut reader) {
            break;
        }
        match read_request(&mut reader, shared.max_body_bytes) {
            Ok(None) => break,
            Ok(Some(request)) => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let keep_alive = request.wants_keep_alive() && !shared.shutting_down();
                match routes::handle(shared, &request) {
                    Handled::Full(response) => {
                        write_response(&mut writer, &response, keep_alive)?;
                    }
                    Handled::Stream(plan) => {
                        shared.streamed.fetch_add(1, Ordering::Relaxed);
                        routes::stream_solutions(*plan, &mut writer, keep_alive)?;
                    }
                }
                if !keep_alive {
                    break;
                }
            }
            Err(error) => {
                let status = error.status();
                if status != 0 {
                    let response = Response::json(
                        status,
                        serde_json::to_string_pretty(&serde_json::json!({
                            "error": error.message(),
                        }))
                        .expect("error bodies always serialise"),
                    );
                    let _ = write_response(&mut writer, &response, false);
                }
                break;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn get(addr: SocketAddr, target: &str) -> http::ClientResponse {
        let mut socket = TcpStream::connect(addr).unwrap();
        write!(socket, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        http::read_response(&mut BufReader::new(&socket)).unwrap()
    }

    #[test]
    fn boots_answers_health_and_shuts_down() {
        let handle = Server::start(ServerConfig::default()).unwrap();
        let health = get(handle.addr(), "/health");
        assert_eq!(health.status, 200);
        assert!(health.text().contains("\"status\": \"ok\""));
        let missing = get(handle.addr(), "/nope");
        assert_eq!(missing.status, 404);
        let counters = handle.counters();
        assert_eq!(counters.requests, 2);
        assert_eq!(counters.shed, 0);
        let addr = handle.addr();
        handle.shutdown();
        // The listener is gone: connections are refused (or reset).
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err() || get_err(addr)
        );
    }

    fn get_err(addr: SocketAddr) -> bool {
        let Ok(mut socket) = TcpStream::connect(addr) else {
            return true;
        };
        let _ = write!(socket, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        http::read_response(&mut BufReader::new(&socket)).is_err()
    }

    #[test]
    fn upload_query_and_stream_round_trip() {
        let handle = Server::start(ServerConfig::default()).unwrap();
        let tree = fault_tree::examples::fire_protection_system();
        let body = fault_tree::parser::json::to_json_string(&tree);

        let mut socket = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(socket.try_clone().unwrap());
        write!(
            socket,
            "POST /trees HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let created = http::read_response(&mut reader).unwrap();
        assert_eq!(created.status, 201, "{}", created.text());
        let hash = fault_tree::tree_hash(&tree).weighted_hex();
        assert!(created.text().contains(&hash));

        // Idempotent re-upload: same hash, 200 + created=false.
        write!(
            socket,
            "POST /trees HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .unwrap();
        let again = http::read_response(&mut reader).unwrap();
        assert_eq!(again.status, 200);
        assert!(again.text().contains("\"created\": false"));

        // Collected all-mcs and its streamed twin are byte-identical.
        write!(
            socket,
            "GET /trees/{hash}/all-mcs HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let collected = http::read_response(&mut reader).unwrap();
        assert_eq!(collected.status, 200);
        write!(
            socket,
            "GET /trees/{hash}/all-mcs?stream=true HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let streamed = http::read_response(&mut reader).unwrap();
        assert_eq!(streamed.status, 200);
        assert_eq!(streamed.trailer("x-termination"), Some("complete"));
        assert_eq!(streamed.trailer("x-truncated"), Some("false"));
        assert_eq!(streamed.trailer("x-delivered"), Some("5"));
        assert!(streamed.chunks.len() > 1, "one tie group per chunk");
        let redact = |text: &str| {
            text.lines()
                .filter(|line| !line.contains("\"solve_time_ms\""))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(redact(&streamed.text()), redact(&collected.text()));

        // The budget envelope labels a deliberately capped enumeration.
        write!(
            socket,
            "GET /trees/{hash}/all-mcs?max-solutions=2 HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let capped = http::read_response(&mut reader).unwrap();
        assert_eq!(capped.status, 200);
        assert!(capped.text().contains("\"truncated\": true"));
        assert!(capped.text().contains("\"termination\": \"solution-cap\""));

        // Single-solution stream uses the bare-object shape.
        write!(
            socket,
            "GET /trees/{hash}/top-k?k=1&stream=true HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let single = http::read_response(&mut reader).unwrap();
        assert!(single.text().starts_with('{'), "{}", single.text());
        assert_eq!(single.trailer("x-termination"), Some("complete"));

        // Probability, importance and sweep answer on the same connection.
        write!(
            socket,
            "GET /trees/{hash}/probability?backend=bdd HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let probability = http::read_response(&mut reader).unwrap();
        assert_eq!(probability.status, 200);
        assert!(probability.text().contains("\"probability\""));
        write!(
            socket,
            "GET /trees/{hash}/importance HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        assert_eq!(http::read_response(&mut reader).unwrap().status, 200);
        write!(
            socket,
            "GET /trees/{hash}/sweep?range=0:1:0.5&format=csv HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        let sweep = http::read_response(&mut reader).unwrap();
        assert_eq!(sweep.status, 200);
        assert!(sweep.text().starts_with("t,probability\n"));

        // Evict and observe the 404.
        write!(socket, "DELETE /trees/{hash} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(http::read_response(&mut reader).unwrap().status, 204);
        write!(
            socket,
            "GET /trees/{hash}/mpmcs HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        .unwrap();
        assert_eq!(http::read_response(&mut reader).unwrap().status, 404);
        handle.shutdown();
    }

    #[test]
    fn saturated_queue_sheds_with_503_and_retry_after() {
        // One worker, queue depth one; a slow client holds the worker by
        // never finishing its request, a second connection fills the
        // queue, so the third is shed immediately.
        let handle = Server::start(ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout_ms: 2_000,
            ..ServerConfig::default()
        })
        .unwrap();
        let mut slow = TcpStream::connect(handle.addr()).unwrap();
        write!(slow, "GET /health HTTP/1.1\r\n").unwrap(); // never finishes
        std::thread::sleep(Duration::from_millis(300)); // worker picks it up
        let _queued = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        let mut third = TcpStream::connect(handle.addr()).unwrap();
        write!(third, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let shed = http::read_response(&mut BufReader::new(&third)).unwrap();
        assert_eq!(shed.status, 503);
        assert_eq!(shed.header("retry-after"), Some("1"));
        assert!(handle.counters().shed >= 1);
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let handle = Server::start(ServerConfig::default()).unwrap();
        let mut socket = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(socket.try_clone().unwrap());
        for _ in 0..3 {
            write!(socket, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let response = http::read_response(&mut reader).unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        write!(
            socket,
            "GET /health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let last = http::read_response(&mut reader).unwrap();
        assert_eq!(last.header("connection"), Some("close"));
        handle.shutdown();
    }
}
