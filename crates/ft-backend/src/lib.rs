//! The unified analysis-backend layer.
//!
//! The paper's central claim (Barrère & Hankin, DSN 2020) is that the
//! MaxSAT formulation of the MPMCS problem outperforms the classical
//! BDD/MOCUS pipelines. Demonstrating that head-to-head requires all three
//! engines to answer the *same* queries through the *same* interface — which
//! is what this crate provides:
//!
//! * [`AnalysisBackend`] — one trait for the four core fault-tree queries:
//!   the MPMCS, top-k enumeration, all-MCS enumeration, and the exact
//!   top-event probability;
//! * [`MaxSatBackend`] — the paper's pipeline, wrapping the incremental
//!   [`mpmcs::MpmcsSolver`];
//! * [`BddBackend`] — the classical exact engine, wrapping
//!   [`bdd_engine::McsEnumeration`] and Shannon-decomposition probabilities;
//! * [`MocusBackend`] — the classic top-down cut-set generator, wrapping
//!   [`ft_analysis::mocus::Mocus`] plus an exact pivotal-decomposition
//!   quantification over the enumerated cut sets;
//! * [`PreprocessedBackend`] — a modular divide-and-conquer pass manager
//!   that simplifies the tree, splits it at independent modules
//!   ([`ft_analysis::modules`]), solves every module separately through the
//!   *same* backend, and composes the results — shrinking SAT encodings,
//!   BDD sizes and MOCUS expansions alike;
//! * [`choose_backend`] — the `auto` selection heuristic, picking an engine
//!   from cheap structural features ([`StructuralFeatures`]).
//!
//! Every backend canonicalises its output with the same ordering key the
//! MaxSAT enumeration uses (exact integer scaled cost, then cut set), so two
//! backends — or the same backend with preprocessing on and off — produce
//! byte-identical reports modulo timings and solver statistics. The
//! cross-backend equivalence is enforced by `tests/backend_equivalence.rs`
//! at the workspace root and by the CLI's `--cross-check` mode.
//!
//! # Quick start
//!
//! ```rust
//! use fault_tree::examples::fire_protection_system;
//! use ft_backend::{backend_for, BackendConfig, BackendKind};
//!
//! let tree = fire_protection_system();
//! let config = BackendConfig::default();
//! let (kind, backend) = backend_for(BackendKind::Bdd, &tree, &config);
//! assert_eq!(kind, BackendKind::Bdd);
//! let best = backend.mpmcs(&tree).unwrap();
//! assert_eq!(best.event_names(&tree), vec!["x1", "x2"]);
//! assert!((best.probability - 0.02).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod auto;
mod bdd;
mod cache;
mod control;
mod maxsat;
mod mocus;
mod preprocess;
mod solution;

use std::fmt;
use std::sync::Arc;

use bdd_engine::VariableOrdering;
use fault_tree::FaultTree;
use mpmcs::{AlgorithmChoice, BranchingChoice, MpmcsOptions};

pub use auto::{choose_backend, StructuralFeatures};
pub use bdd::BddBackend;
pub use cache::{
    config_fingerprint, sweep_fingerprint, AnalysisCache, CacheHandle, CacheStats, Cached,
    CachedBackend, QueryKind, DEFAULT_CACHE_BYTES,
};
pub use control::{Budget, CancelToken, QueryControl, StopCause};
pub use maxsat::MaxSatBackend;
pub use mocus::{exact_union_probability, reprice_sweep, MocusBackend};
pub use preprocess::{decompose, ModularDecomposition, ModulePiece, PreprocessedBackend};
pub use solution::{canonical_sort, scaled_cut_cost, BackendSolution};

/// Which analysis engine answers the queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The paper's Weighted Partial MaxSAT pipeline (default).
    #[default]
    MaxSat,
    /// The classical exact BDD engine.
    Bdd,
    /// The classic MOCUS top-down cut-set algorithm.
    Mocus,
    /// Pick an engine from cheap structural features ([`choose_backend`]).
    Auto,
}

impl BackendKind {
    /// The stable command-line name of the backend, as accepted by
    /// [`BackendKind::parse`].
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::MaxSat => "maxsat",
            BackendKind::Bdd => "bdd",
            BackendKind::Mocus => "mocus",
            BackendKind::Auto => "auto",
        }
    }

    /// Parses a command-line backend name.
    pub fn parse(name: &str) -> Option<BackendKind> {
        match name {
            "maxsat" | "sat" => Some(BackendKind::MaxSat),
            "bdd" => Some(BackendKind::Bdd),
            "mocus" => Some(BackendKind::Mocus),
            "auto" => Some(BackendKind::Auto),
            _ => None,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration shared by every backend construction site (CLI, batch,
/// bench harness).
#[derive(Clone, Copy, Debug)]
pub struct BackendConfig {
    /// The MaxSAT strategy used by [`MaxSatBackend`].
    pub algorithm: AlgorithmChoice,
    /// The SAT branching heuristic used by [`MaxSatBackend`]'s solvers.
    pub branching: BranchingChoice,
    /// The BDD variable ordering used by [`BddBackend`].
    pub bdd_ordering: VariableOrdering,
    /// Budget on intermediate MOCUS sets ([`MocusBackend`]).
    pub mocus_budget: usize,
    /// Budget on enumerated BDD paths ([`BddBackend`]).
    pub bdd_path_budget: usize,
    /// Budget on the pivotal-decomposition recursion nodes the MCS-based
    /// backends (MOCUS, MaxSAT) may spend computing the exact
    /// `top_event_probability` from their cut sets; beyond it they report
    /// [`BackendError::ProbabilityUnsupported`]. (The BDD backend quantifies
    /// by Shannon decomposition of the diagram and needs no budget.)
    pub probability_budget: usize,
    /// Run the modular divide-and-conquer preprocessing pass manager
    /// ([`PreprocessedBackend`]) in front of the backend.
    pub preprocess: bool,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            algorithm: AlgorithmChoice::SequentialPortfolio,
            branching: BranchingChoice::Vsids,
            bdd_ordering: VariableOrdering::DepthFirst,
            mocus_budget: 1_000_000,
            bdd_path_budget: 1_000_000,
            probability_budget: 50_000,
            preprocess: false,
        }
    }
}

/// Errors surfaced by the analysis backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The tree has no cut set at all (the top event cannot occur).
    NoCutSet,
    /// A classical engine exceeded its enumeration budget.
    Budget {
        /// The backend that gave up.
        backend: &'static str,
        /// Human-readable description of the exceeded budget.
        detail: String,
    },
    /// The exact top-event probability cannot be computed by this backend
    /// within its budget (the cut-set family's pivotal decomposition outgrew
    /// the recursion budget).
    ProbabilityUnsupported {
        /// The backend that gave up.
        backend: &'static str,
        /// Number of minimal cut sets of the tree.
        cut_sets: usize,
    },
    /// An internal invariant was violated (indicates a bug).
    Internal(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::NoCutSet => write!(f, "the fault tree has no cut set"),
            BackendError::Budget { backend, detail } => {
                write!(f, "{backend} backend exceeded its budget: {detail}")
            }
            BackendError::ProbabilityUnsupported { backend, cut_sets } => write!(
                f,
                "{backend} backend cannot compute the exact top-event probability: \
                 the pivotal decomposition of {cut_sets} minimal cut sets exceeds \
                 the quantification budget"
            ),
            BackendError::Internal(message) => write!(f, "internal backend error: {message}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// An enumeration outcome under a [`QueryControl`]: the solutions reported
/// before the query completed or was stopped, plus the stop cause (if any).
///
/// Only the MaxSAT engine is *anytime* — a stopped query still reports the
/// canonical prefix it had proven. The classical engines (BDD path walks,
/// MOCUS expansion) compute the full family before any solution is known, so
/// a stopped query reports an empty prefix; either way the partial result is
/// well-labelled rather than silently wrong.
#[derive(Clone, Debug)]
pub struct Enumerated {
    /// The reported solutions, in the canonical cross-backend order. A
    /// complete query reports the full family; a stopped MaxSAT query
    /// reports the proven prefix.
    pub solutions: Vec<BackendSolution>,
    /// `None` when the query ran to completion; otherwise why it stopped.
    pub stopped: Option<StopCause>,
}

impl Enumerated {
    /// `true` when the query ran to completion (the solutions are the whole
    /// minimal-cut-set family).
    pub fn is_complete(&self) -> bool {
        self.stopped.is_none()
    }
}

/// One interface for the four core fault-tree analysis queries, implemented
/// by all three engines.
///
/// Implementations return cut sets over the event identifiers of the tree
/// passed to the query, in the canonical order of [`canonical_sort`]
/// (non-increasing probability, refined by exact scaled cost, ties broken by
/// cut set) — so any two backends are directly comparable. Backends are
/// `Send + Sync`: they hold configuration, not per-query state, so one
/// instance may serve concurrent queries from many threads.
pub trait AnalysisBackend: Send + Sync {
    /// The stable engine name (`"maxsat"`, `"bdd"`, `"mocus"`).
    fn name(&self) -> &'static str;

    /// The Maximum Probability Minimal Cut Set of `tree`.
    ///
    /// # Errors
    ///
    /// [`BackendError::NoCutSet`] when the top event cannot occur, or a
    /// budget error from the classical engines.
    fn mpmcs(&self, tree: &FaultTree) -> Result<BackendSolution, BackendError>;

    /// The `k` most probable minimal cut sets, most probable first. Fewer
    /// than `k` are returned when the tree has fewer minimal cut sets.
    ///
    /// # Errors
    ///
    /// [`BackendError::NoCutSet`] when the tree has no cut set at all, or a
    /// budget error from the classical engines.
    fn top_k(&self, tree: &FaultTree, k: usize) -> Result<Vec<BackendSolution>, BackendError>;

    /// Every minimal cut set, most probable first.
    ///
    /// # Errors
    ///
    /// [`BackendError::NoCutSet`] when the tree has no cut set at all, or a
    /// budget error from the classical engines.
    fn all_mcs(&self, tree: &FaultTree) -> Result<Vec<BackendSolution>, BackendError>;

    /// The exact probability of the top event.
    ///
    /// # Errors
    ///
    /// [`BackendError::ProbabilityUnsupported`] when the engine cannot answer
    /// exactly within its budget (MCS-based engines on trees with many cut
    /// sets), or a budget error.
    fn top_event_probability(&self, tree: &FaultTree) -> Result<f64, BackendError>;

    /// The exact top-event probability at every mission time in `grid` — a
    /// *mission-time sweep*. Point `i` of the result equals
    /// [`top_event_probability`](AnalysisBackend::top_event_probability) on
    /// [`FaultTree::at_time`]`(grid[i])`, bit for bit.
    ///
    /// The default implementation is exactly that naive per-point loop.
    /// Every engine overrides it with an incremental path that solves the
    /// structure **once** and re-quantifies each timepoint in time linear in
    /// the solved representation (BDD nodes, cut-set family, or module
    /// decomposition) — mission times move only the leaf probabilities, never
    /// the structure.
    ///
    /// # Errors
    ///
    /// The same errors as
    /// [`top_event_probability`](AnalysisBackend::top_event_probability).
    ///
    /// # Panics
    ///
    /// Panics when `grid` contains a negative or non-finite mission time and
    /// the tree has time-dependent events (see
    /// [`fault_tree::FailureModel::probability_at`]).
    fn probability_sweep(&self, tree: &FaultTree, grid: &[f64]) -> Result<Vec<f64>, BackendError> {
        grid.iter()
            .map(|&t| self.top_event_probability(&tree.at_time(t)))
            .collect()
    }

    /// Every minimal cut set, most probable first, under a deadline /
    /// cancellation control — the entry point the session facade's budgets
    /// flow through.
    ///
    /// The default implementation brackets the collected
    /// [`all_mcs`](AnalysisBackend::all_mcs) with control checks, so a query
    /// is only stopped at the boundaries; engines with interruptible inner loops
    /// override it (the MaxSAT engine streams and reports the proven prefix,
    /// MOCUS polls the control inside its expansion loop).
    ///
    /// # Errors
    ///
    /// The same errors as [`all_mcs`](AnalysisBackend::all_mcs); a *stopped*
    /// query is not an error — it reports [`Enumerated::stopped`].
    fn all_mcs_under(
        &self,
        tree: &FaultTree,
        control: &QueryControl,
    ) -> Result<Enumerated, BackendError> {
        if let Some(cause) = control.stop_cause() {
            return Ok(Enumerated {
                solutions: Vec::new(),
                stopped: Some(cause),
            });
        }
        Ok(Enumerated {
            solutions: self.all_mcs(tree)?,
            stopped: None,
        })
    }
}

/// Resolves [`BackendKind::Auto`] against a concrete tree; other kinds pass
/// through unchanged.
pub fn resolve_backend(kind: BackendKind, tree: &FaultTree) -> BackendKind {
    match kind {
        BackendKind::Auto => choose_backend(tree),
        concrete => concrete,
    }
}

/// Builds the backend for `kind` (resolving [`BackendKind::Auto`] against
/// `tree`), wrapping it in the modular preprocessing pass manager when
/// [`BackendConfig::preprocess`] is set. Returns the resolved kind alongside
/// the engine.
pub fn backend_for(
    kind: BackendKind,
    tree: &FaultTree,
    config: &BackendConfig,
) -> (BackendKind, Box<dyn AnalysisBackend>) {
    backend_for_cached(kind, tree, config, None)
}

/// [`backend_for`], optionally sharing a content-addressed
/// [`AnalysisCache`]: whole-tree queries go through a [`CachedBackend`]
/// wrapper, and (when preprocessing is on) the [`PreprocessedBackend`] pass
/// manager additionally consults the same cache for every module solve, so
/// repeated isomorphic modules — within one tree or across the trees of a
/// batch — are solved once.
pub fn backend_for_cached(
    kind: BackendKind,
    tree: &FaultTree,
    config: &BackendConfig,
    cache: Option<Arc<AnalysisCache>>,
) -> (BackendKind, Box<dyn AnalysisBackend>) {
    let resolved = resolve_backend(kind, tree);
    let raw: Box<dyn AnalysisBackend> = match resolved {
        BackendKind::MaxSat => Box::new(MaxSatBackend::with_options(
            MpmcsOptions {
                algorithm: config.algorithm,
                branching: config.branching,
                ..MpmcsOptions::new()
            },
            config.probability_budget,
        )),
        BackendKind::Bdd => Box::new(BddBackend::new(config.bdd_ordering, config.bdd_path_budget)),
        BackendKind::Mocus => Box::new(MocusBackend::new(
            config.mocus_budget,
            config.probability_budget,
        )),
        BackendKind::Auto => unreachable!("resolve_backend never returns Auto"),
    };
    let fingerprint = cache.as_ref().map(|_| config_fingerprint(resolved, config));
    let backend: Box<dyn AnalysisBackend> = if config.preprocess {
        let pass_manager = match (&cache, fingerprint) {
            (Some(cache), Some(fingerprint)) => {
                PreprocessedBackend::with_cache(raw, cache.clone(), fingerprint)
            }
            _ => PreprocessedBackend::new(raw),
        };
        Box::new(pass_manager)
    } else {
        raw
    };
    let backend = match (cache, fingerprint) {
        (Some(cache), Some(fingerprint)) => {
            Box::new(CachedBackend::new(backend, cache, fingerprint))
        }
        _ => backend,
    };
    (resolved, backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::examples::fire_protection_system;

    #[test]
    fn kinds_round_trip_through_their_names() {
        for kind in [
            BackendKind::MaxSat,
            BackendKind::Bdd,
            BackendKind::Mocus,
            BackendKind::Auto,
        ] {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::parse("zbdd"), None);
    }

    #[test]
    fn factory_resolves_auto_to_a_concrete_backend() {
        let tree = fire_protection_system();
        let (resolved, backend) = backend_for(BackendKind::Auto, &tree, &BackendConfig::default());
        assert_ne!(resolved, BackendKind::Auto);
        assert_eq!(backend.name(), resolved.name());
    }

    #[test]
    fn all_three_backends_agree_on_the_paper_example() {
        let tree = fire_protection_system();
        let config = BackendConfig::default();
        let mut answers = Vec::new();
        for kind in [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus] {
            let (_, backend) = backend_for(kind, &tree, &config);
            let all = backend.all_mcs(&tree).expect("small tree");
            assert_eq!(all.len(), 5, "{kind}");
            let best = backend.mpmcs(&tree).expect("small tree");
            assert_eq!(best.event_names(&tree), vec!["x1", "x2"], "{kind}");
            assert!((best.probability - 0.02).abs() < 1e-9, "{kind}");
            let p = backend.top_event_probability(&tree).expect("small tree");
            answers.push((all.iter().map(|s| s.cut_set.clone()).collect::<Vec<_>>(), p));
        }
        // The three engines return the same ordered cut-set lists and agree
        // on the exact top-event probability.
        assert_eq!(answers[0].0, answers[1].0);
        assert_eq!(answers[0].0, answers[2].0);
        assert!((answers[0].1 - answers[1].1).abs() < 1e-12);
        assert!((answers[0].1 - answers[2].1).abs() < 1e-12);
    }
}
