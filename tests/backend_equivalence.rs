//! Cross-backend equivalence: the unified analysis-backend layer must make
//! the MaxSAT pipeline, the BDD engine and MOCUS interchangeable. For every
//! bundled model under `examples/trees/` plus generated families, all three
//! backends must report the identical minimal-cut-set family (same sets,
//! same canonical order), the identical MPMCS (modulo canonical tie order),
//! and exact top-event probabilities agreeing within 1e-9 — and the modular
//! divide-and-conquer preprocessing pass must change none of it.
//!
//! JSON-level acceptance: `--backend bdd` / `--backend mocus` produce the
//! same deterministic report as `--backend maxsat` modulo wall-clock timings
//! and solver metadata (the `solver_stats` block, `sat_calls` counters and
//! the per-engine `algorithm` tag).

use std::fs;
use std::path::{Path, PathBuf};

use fault_tree::parser::{galileo, json};
use fault_tree::FaultTree;
use ft_backend::{backend_for, BackendConfig, BackendError, BackendKind};
use ft_generators::Family;
use mpmcs4fta_cli::{parse_args, run};

const BACKENDS: [BackendKind; 3] = [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus];

fn bundled_trees() -> Vec<(String, FaultTree)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("examples/trees/ ships with the repository")
        .map(|entry| entry.expect("readable directory entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "examples/trees/ must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).expect("readable model file");
            let tree = if path.extension().and_then(|e| e.to_str()) == Some("json") {
                json::from_json_str(&text).expect("valid JSON model")
            } else {
                galileo::parse_galileo(&text).expect("valid Galileo model")
            };
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                tree,
            )
        })
        .collect()
}

fn config(preprocess: bool) -> BackendConfig {
    BackendConfig {
        preprocess,
        ..BackendConfig::default()
    }
}

fn tree_probability(tree: &FaultTree, cut: &fault_tree::CutSet) -> f64 {
    cut.probability(tree)
}

/// Normalises a JSON report for cross-backend comparison: wall-clock timings
/// (`*_ms`), the `solver_stats` blocks, the `sat_calls` counters and the
/// per-engine `algorithm` tags legitimately differ between engines;
/// everything else — tree summary, cut sets, probabilities, log weights,
/// order — must match byte for byte.
fn normalize(json_text: &str) -> String {
    fn scrub(value: &serde::Value) -> serde::Value {
        match value {
            serde::Value::Object(map) => serde::Value::Object(
                map.iter()
                    .map(|(key, entry)| {
                        let entry = match key {
                            "sat_calls" => serde::Value::Number(serde::Number::from_i128(0)),
                            "algorithm" => serde::Value::String(String::new()),
                            _ => scrub(entry),
                        };
                        (key.to_string(), entry)
                    })
                    .collect(),
            ),
            serde::Value::Array(elements) => {
                serde::Value::Array(elements.iter().map(scrub).collect())
            }
            other => other.clone(),
        }
    }
    let value: serde::Value = serde_json::from_str(json_text).expect("valid report JSON");
    let value = ft_batch::redact_timings(&ft_batch::redact_solver_stats(&value));
    serde_json::to_string_pretty(&scrub(&value)).expect("reports always serialise")
}

/// All three backends return the identical canonical all-MCS report for
/// every bundled model — byte for byte, modulo timings and solver metadata.
#[test]
fn all_backends_report_identical_mcs_families_on_bundled_models() {
    for (name, tree) in bundled_trees() {
        let mut reference: Option<String> = None;
        for kind in BACKENDS {
            let (_, backend) = backend_for(kind, &tree, &config(false));
            let all = backend.all_mcs(&tree).expect("bundled models are solvable");
            assert!(!all.is_empty(), "{name}");
            for solution in &all {
                assert!(
                    tree.is_minimal_cut_set(&solution.cut_set),
                    "{name}: {kind} reported a non-minimal cut set"
                );
            }
            let reports: Vec<_> = all.iter().map(|s| s.to_report(&tree, true)).collect();
            let rendered = normalize(
                &serde_json::to_string_pretty(&reports).expect("reports always serialise"),
            );
            match &reference {
                None => reference = Some(rendered),
                Some(expected) => assert_eq!(
                    expected, &rendered,
                    "{name}: {kind} diverged from the maxsat report"
                ),
            }
        }
    }
}

/// The MPMCS agrees across backends on every bundled model: identical
/// probability (within 1e-9) and — modulo an equal-probability tie — the
/// same cut set; every reported optimum is a verified minimal cut set.
#[test]
fn all_backends_agree_on_the_mpmcs_of_bundled_models() {
    for (name, tree) in bundled_trees() {
        let mut reference: Option<(f64, fault_tree::CutSet)> = None;
        for kind in BACKENDS {
            let (_, backend) = backend_for(kind, &tree, &config(false));
            let best = backend.mpmcs(&tree).expect("bundled models are solvable");
            assert!(tree.is_minimal_cut_set(&best.cut_set), "{name} {kind}");
            match &reference {
                None => reference = Some((best.probability, best.cut_set.clone())),
                Some((probability, cut_set)) => {
                    // Identical optimum value always; a different cut set is
                    // only acceptable as an equal-probability tie (both
                    // sides verified minimal above).
                    assert!(
                        (probability - best.probability).abs() < 1e-9,
                        "{name}: {kind} MPMCS probability diverged"
                    );
                    if *cut_set != best.cut_set {
                        assert!(
                            (tree_probability(&tree, cut_set) - best.probability).abs() < 1e-9,
                            "{name}: {kind} reported a different, non-tied MPMCS"
                        );
                    }
                }
            }
        }
    }
}

/// Exact top-event probabilities agree within 1e-9 wherever an engine can
/// answer; the BDD (budget-free Shannon decomposition) must always answer.
#[test]
fn top_event_probabilities_agree_across_backends() {
    for (name, tree) in bundled_trees() {
        let (_, bdd) = backend_for(BackendKind::Bdd, &tree, &config(false));
        let exact = bdd
            .top_event_probability(&tree)
            .expect("the BDD probability is budget-free");
        for kind in [BackendKind::MaxSat, BackendKind::Mocus] {
            let (_, backend) = backend_for(kind, &tree, &config(false));
            match backend.top_event_probability(&tree) {
                Ok(p) => assert!(
                    (p - exact).abs() < 1e-9,
                    "{name}: {kind} probability {p} vs BDD {exact}"
                ),
                Err(BackendError::ProbabilityUnsupported { .. }) => {
                    // In-budget on every bundled model; tolerated for the
                    // generated families below.
                    panic!("{name}: bundled models must be within the IE budget");
                }
                Err(other) => panic!("{name}: {kind} failed: {other}"),
            }
        }
        // Decomposition composes the exact probability unchanged.
        let (_, pre) = backend_for(BackendKind::Bdd, &tree, &config(true));
        let composed = pre.top_event_probability(&tree).expect("exact");
        assert!((composed - exact).abs() < 1e-9, "{name}");
    }
}

/// Generated families: identical MCS families across backends, both raw and
/// through the preprocessing pass (the module-decomposition on/off
/// equivalence case), over every generator family.
#[test]
fn all_backends_agree_on_generated_families() {
    // One workload per generator family, sized so the full MCS family stays
    // enumerable by every engine (or-heavy trees explode combinatorially
    // past ~50 nodes: 28k+ cut sets, which only the MaxSAT backend could
    // enumerate in reasonable time).
    for (family, size, seed) in [
        (Family::RandomMixed, 40usize, 11u64),
        (Family::OrHeavy, 40, 11),
        (Family::AndHeavy, 70, 29),
        (Family::SharedDag, 70, 29),
        (Family::VotingHeavy, 40, 11),
    ] {
        {
            let tree = family.generate(size, seed);
            let name = format!("{}-{size}", family.name());
            let mut reference: Option<Vec<fault_tree::CutSet>> = None;
            for kind in BACKENDS {
                for preprocess in [false, true] {
                    let (_, backend) = backend_for(kind, &tree, &config(preprocess));
                    let all = backend
                        .all_mcs(&tree)
                        .expect("generated trees have cut sets");
                    let cuts: Vec<fault_tree::CutSet> =
                        all.iter().map(|s| s.cut_set.clone()).collect();
                    match &reference {
                        None => reference = Some(cuts),
                        Some(expected) => assert_eq!(
                            expected, &cuts,
                            "{name}: {kind} (preprocess={preprocess}) diverged"
                        ),
                    }
                }
            }
        }
    }
}

/// Module-decomposition on/off produces byte-identical normalized reports
/// for the same backend — the pass manager is a pure optimisation.
#[test]
fn preprocessing_produces_byte_identical_reports() {
    for (name, tree) in bundled_trees() {
        for kind in BACKENDS {
            let mut rendered: Vec<String> = Vec::new();
            for preprocess in [false, true] {
                let (_, backend) = backend_for(kind, &tree, &config(preprocess));
                let all = backend.all_mcs(&tree).expect("bundled models are solvable");
                let reports: Vec<_> = all.iter().map(|s| s.to_report(&tree, true)).collect();
                rendered.push(normalize(
                    &serde_json::to_string_pretty(&reports).expect("reports always serialise"),
                ));
            }
            assert_eq!(rendered[0], rendered[1], "{name} {kind}");
        }
    }
}

/// The CLI acceptance path: `--backend bdd` and `--backend mocus` emit the
/// same deterministic JSON as `--backend maxsat` (modulo timings and solver
/// metadata) for every bundled example file, through the real argument
/// parser and runner.
#[test]
fn cli_backends_emit_identical_deterministic_json() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("examples/trees/ ships with the repository")
        .map(|entry| entry.expect("readable directory entry").path())
        .collect();
    paths.sort();
    for path in paths {
        let path_str = path.to_str().expect("UTF-8 path");
        let mut reference: Option<String> = None;
        for backend in ["maxsat", "bdd", "mocus"] {
            let mut args = vec![path_str, "--backend", backend, "--all", "--quiet"];
            if backend == "maxsat" {
                args.extend(["--algorithm", "sequential"]);
            }
            let options = parse_args(args).expect("valid arguments");
            let (json_text, _) = run(&options).expect("bundled examples are solvable");
            let rendered = normalize(&json_text);
            match &reference {
                None => reference = Some(rendered),
                Some(expected) => assert_eq!(
                    expected,
                    &rendered,
                    "{}: --backend {backend} JSON diverged",
                    path.display()
                ),
            }
        }
    }
}

/// Attaching a shared analysis cache changes no answer: for every bundled
/// model, every backend (including `auto`) and preprocess on/off, the
/// cache-off, cache-cold and cache-warm runs of MPMCS, top-k, all-MCS and
/// probability agree bit for bit — and the warm run actually hits.
#[test]
fn cached_analyzers_answer_byte_identically_across_backends() {
    use ft_backend::{AnalysisCache, BackendSolution, DEFAULT_CACHE_BYTES};
    use ft_session::Analyzer;
    use std::sync::Arc;

    fn key(solution: &BackendSolution) -> (Vec<usize>, u64, u64) {
        (
            solution.cut_set.iter().map(|e| e.index()).collect(),
            solution.probability.to_bits(),
            solution.log_weight.to_bits(),
        )
    }

    type Fingerprint = (
        Vec<(Vec<usize>, u64, u64)>,
        Vec<(Vec<usize>, u64, u64)>,
        (Vec<usize>, u64, u64),
        u64,
    );
    fn fingerprint(mut analyzer: Analyzer) -> Fingerprint {
        let best = analyzer.mpmcs().expect("bundled models are solvable");
        let top = analyzer.top_k(3).expect("bundled models are solvable");
        let all = analyzer.all_mcs().expect("bundled models are solvable");
        let probability = analyzer
            .probability()
            .expect("bundled models are within the IE budget");
        (
            all.solutions.iter().map(key).collect(),
            top.solutions.iter().map(key).collect(),
            key(&best),
            probability.to_bits(),
        )
    }

    for (name, tree) in bundled_trees() {
        for kind in [
            BackendKind::MaxSat,
            BackendKind::Bdd,
            BackendKind::Mocus,
            BackendKind::Auto,
        ] {
            for preprocess in [false, true] {
                let analyzer = |cache: Option<Arc<AnalysisCache>>| {
                    let mut a = Analyzer::for_tree(tree.clone())
                        .backend(kind)
                        .preprocess(preprocess);
                    if let Some(cache) = cache {
                        a = a.cache(cache);
                    }
                    a
                };
                let plain = fingerprint(analyzer(None));
                let cache = Arc::new(AnalysisCache::new(DEFAULT_CACHE_BYTES));
                let cold = fingerprint(analyzer(Some(Arc::clone(&cache))));
                let cold_hits = cache.stats().hits;
                let warm = fingerprint(analyzer(Some(Arc::clone(&cache))));
                assert_eq!(
                    plain, cold,
                    "{name}/{kind}/preprocess={preprocess}: cold cache changed an answer"
                );
                assert_eq!(
                    plain, warm,
                    "{name}/{kind}/preprocess={preprocess}: warm cache changed an answer"
                );
                assert!(
                    cache.stats().hits > cold_hits,
                    "{name}/{kind}/preprocess={preprocess}: the warm run must hit"
                );
            }
        }
    }
}

/// `--cross-check` passes on the bundled examples for every backend and
/// query shape.
#[test]
fn cli_cross_check_passes_on_bundled_examples() {
    for backend in ["maxsat", "bdd", "mocus", "auto"] {
        let options = parse_args([
            "--example",
            "crossing",
            "--backend",
            backend,
            "--cross-check",
            "--top-k",
            "3",
            "--quiet",
        ])
        .expect("valid arguments");
        let (json_text, _) = run(&options).expect("cross-check must pass");
        let value: serde::Value = serde_json::from_str(&json_text).expect("valid JSON");
        assert_eq!(value["cross_check"]["match"].as_bool(), Some(true));
    }
}
