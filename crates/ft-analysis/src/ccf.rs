//! Common-cause failure (CCF) modelling with the beta-factor model.
//!
//! Minimal cut sets computed under the independence assumption can be badly
//! optimistic when a group of components shares a susceptibility (same
//! manufacturing batch, same power feed, same maintenance crew, same
//! software). The *beta-factor* model is the standard first-order remedy:
//! a fraction `β` of each group member's failure probability is attributed
//! to a single shared common-cause event, and the remaining `1 − β` stays
//! with the individual component.
//!
//! [`apply_beta_factor`] rewrites a fault tree accordingly: every member
//! event `e` of the group is replaced by `OR(e_independent, ccf)` where
//! `p(e_independent) = (1 − β)·p(e)` and the new shared event `ccf` has the
//! probability `β · p̄` for the group's geometric-mean probability `p̄`.
//! The transformed tree can then be fed to any analysis in the workspace —
//! in particular, the MPMCS frequently becomes the common-cause event itself,
//! which is precisely the insight the model is meant to surface.

use fault_tree::{EventId, FaultTree, FaultTreeError, Gate, GateKind, NodeId, Probability};

/// Description of one common-cause group.
#[derive(Clone, Debug)]
pub struct CcfGroup {
    /// Name given to the shared common-cause basic event.
    pub name: String,
    /// The member events (must contain at least two distinct events).
    pub members: Vec<EventId>,
    /// The beta factor, in `[0, 1]`: the fraction of each member's failure
    /// probability attributed to the common cause.
    pub beta: f64,
}

/// Errors reported by the CCF transformation.
#[derive(Clone, Debug, PartialEq)]
pub enum CcfError {
    /// The group has fewer than two distinct members.
    GroupTooSmall,
    /// The beta factor is outside `[0, 1]`.
    InvalidBeta(f64),
    /// A member event id does not exist in the tree.
    UnknownMember(EventId),
    /// The requested common-cause event name is already used in the tree.
    NameClash(String),
    /// The rewritten tree failed validation (e.g. a name clash with the
    /// requested common-cause event name).
    Rebuild(FaultTreeError),
}

impl std::fmt::Display for CcfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcfError::GroupTooSmall => write!(f, "a common-cause group needs at least two members"),
            CcfError::InvalidBeta(beta) => write!(f, "beta factor {beta} is outside [0, 1]"),
            CcfError::UnknownMember(event) => {
                write!(
                    f,
                    "common-cause member event index {} not in tree",
                    event.index()
                )
            }
            CcfError::NameClash(name) => {
                write!(f, "the tree already contains a node named {name:?}")
            }
            CcfError::Rebuild(err) => write!(f, "rebuilding the tree failed: {err}"),
        }
    }
}

impl std::error::Error for CcfError {}

impl From<FaultTreeError> for CcfError {
    fn from(err: FaultTreeError) -> Self {
        CcfError::Rebuild(err)
    }
}

/// Applies the beta-factor model for one common-cause group and returns the
/// rewritten tree.
///
/// The returned tree contains one additional basic event (the common cause)
/// and one additional OR gate per group member; all original event ids keep
/// their indices, so cut sets over the original events remain interpretable
/// (the common-cause event is the one whose name equals `group.name`).
///
/// # Errors
///
/// Returns a [`CcfError`] if the group is malformed or the rewritten tree
/// fails validation.
pub fn apply_beta_factor(tree: &FaultTree, group: &CcfGroup) -> Result<FaultTree, CcfError> {
    let mut members = group.members.clone();
    members.sort_by_key(|e| e.index());
    members.dedup();
    if members.len() < 2 {
        return Err(CcfError::GroupTooSmall);
    }
    if !(0.0..=1.0).contains(&group.beta) {
        return Err(CcfError::InvalidBeta(group.beta));
    }
    for &member in &members {
        if member.index() >= tree.num_events() {
            return Err(CcfError::UnknownMember(member));
        }
    }
    if tree.event_by_name(&group.name).is_some() || tree.gate_by_name(&group.name).is_some() {
        return Err(CcfError::NameClash(group.name.clone()));
    }

    // Scale the members' probabilities and append the shared event.
    let mut events = tree.events().to_vec();
    let geometric_mean = {
        let log_sum: f64 = members
            .iter()
            .map(|&m| {
                tree.event(m)
                    .probability()
                    .value()
                    .max(f64::MIN_POSITIVE)
                    .ln()
            })
            .sum();
        (log_sum / members.len() as f64).exp()
    };
    for &member in &members {
        let p = events[member.index()].probability().value();
        events[member.index()]
            .set_probability(Probability::new((1.0 - group.beta) * p).expect("(1-β)p ∈ [0,1]"));
    }
    let ccf_probability = (group.beta * geometric_mean).clamp(0.0, 1.0);
    let ccf_event = EventId::from_index(events.len());
    events.push(fault_tree::BasicEvent::with_description(
        group.name.clone(),
        Probability::new(ccf_probability).expect("β·p̄ ∈ [0,1]"),
        format!(
            "beta-factor common cause (β = {}, {} members)",
            group.beta,
            members.len()
        ),
    ));

    // Insert an OR(member, ccf) gate for every member and redirect all former
    // references to the member towards that gate.
    let mut gates = tree.gates().to_vec();
    let mut replacement = std::collections::HashMap::new();
    for &member in &members {
        let gate_id = fault_tree::GateId::from_index(gates.len());
        gates.push(Gate::new(
            format!("{} (with {})", tree.event(member).name(), group.name),
            GateKind::Or,
            vec![NodeId::Event(member), NodeId::Event(ccf_event)],
        ));
        replacement.insert(NodeId::Event(member), NodeId::Gate(gate_id));
    }
    let original_gates = tree.num_gates();
    for gate in gates.iter_mut().take(original_gates) {
        let rewired: Vec<NodeId> = gate
            .inputs()
            .iter()
            .map(|input| replacement.get(input).copied().unwrap_or(*input))
            .collect();
        *gate = Gate::new(gate.name(), gate.kind(), rewired);
    }
    let top = match tree.top() {
        top @ NodeId::Event(_) => replacement.get(&top).copied().unwrap_or(top),
        top => top,
    };

    Ok(FaultTree::from_parts(
        format!("{} (beta-factor CCF)", tree.name()),
        events,
        gates,
        top,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::mocus::Mocus;
    use fault_tree::examples::fire_protection_system;

    fn sensor_group(tree: &FaultTree, beta: f64) -> CcfGroup {
        CcfGroup {
            name: "sensors common cause".to_string(),
            members: vec![
                tree.event_by_name("x1").unwrap(),
                tree.event_by_name("x2").unwrap(),
            ],
            beta,
        }
    }

    #[test]
    fn beta_factor_increases_the_top_event_probability() {
        let tree = fire_protection_system();
        let before = brute::exact_top_event_probability(&tree);
        let with_ccf = apply_beta_factor(&tree, &sensor_group(&tree, 0.1)).unwrap();
        assert!(with_ccf.validate().is_ok());
        let after = brute::exact_top_event_probability(&with_ccf);
        // The AND of the two sensors is now dominated by the shared cause, so
        // the detection branch (and hence the top) gets more likely even
        // though each individual probability went down.
        assert!(after > before, "after {after} vs before {before}");
    }

    #[test]
    fn zero_beta_keeps_the_distribution_unchanged() {
        let tree = fire_protection_system();
        let rewritten = apply_beta_factor(&tree, &sensor_group(&tree, 0.0)).unwrap();
        let before = brute::exact_top_event_probability(&tree);
        let after = brute::exact_top_event_probability(&rewritten);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn the_common_cause_becomes_a_single_event_cut_set() {
        let tree = fire_protection_system();
        let rewritten = apply_beta_factor(&tree, &sensor_group(&tree, 0.2)).unwrap();
        let ccf = rewritten.event_by_name("sensors common cause").unwrap();
        let cuts = Mocus::new(&rewritten).minimal_cut_sets().unwrap();
        assert!(cuts.iter().any(|c| c.len() == 1 && c.contains(ccf)));
        // The individual-sensor cut set {x1, x2} still exists.
        let x1 = rewritten.event_by_name("x1").unwrap();
        let x2 = rewritten.event_by_name("x2").unwrap();
        assert!(cuts.iter().any(|c| c.contains(x1) && c.contains(x2)));
    }

    #[test]
    fn member_probabilities_are_scaled_by_one_minus_beta() {
        let tree = fire_protection_system();
        let rewritten = apply_beta_factor(&tree, &sensor_group(&tree, 0.25)).unwrap();
        let x1 = rewritten.event_by_name("x1").unwrap();
        assert!((rewritten.event(x1).probability().value() - 0.15).abs() < 1e-12);
        let ccf = rewritten.event_by_name("sensors common cause").unwrap();
        let geometric_mean = (0.2f64 * 0.1).sqrt();
        assert!((rewritten.event(ccf).probability().value() - 0.25 * geometric_mean).abs() < 1e-12);
    }

    #[test]
    fn malformed_groups_are_rejected() {
        let tree = fire_protection_system();
        let x1 = tree.event_by_name("x1").unwrap();
        let small = CcfGroup {
            name: "ccf".into(),
            members: vec![x1, x1],
            beta: 0.1,
        };
        assert!(matches!(
            apply_beta_factor(&tree, &small),
            Err(CcfError::GroupTooSmall)
        ));
        let bad_beta = CcfGroup {
            beta: 1.5,
            ..sensor_group(&tree, 0.1)
        };
        assert!(matches!(
            apply_beta_factor(&tree, &bad_beta),
            Err(CcfError::InvalidBeta(_))
        ));
        let unknown = CcfGroup {
            members: vec![x1, EventId::from_index(99)],
            ..sensor_group(&tree, 0.1)
        };
        assert!(matches!(
            apply_beta_factor(&tree, &unknown),
            Err(CcfError::UnknownMember(_))
        ));
        let clash = CcfGroup {
            name: "x3".into(),
            ..sensor_group(&tree, 0.1)
        };
        assert!(matches!(
            apply_beta_factor(&tree, &clash),
            Err(CcfError::NameClash(_))
        ));
    }
}
