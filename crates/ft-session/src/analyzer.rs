//! The session-oriented [`Analyzer`] facade.

use std::sync::Arc;

use bdd_engine::VariableOrdering;
use fault_tree::{CutSet, FaultTree};
use ft_backend::{
    backend_for_cached, config_fingerprint, exact_union_probability, AnalysisBackend,
    AnalysisCache, BackendConfig, BackendKind, BackendSolution, Budget, CacheHandle, Cached,
    CancelToken, QueryControl, QueryKind,
};
use mpmcs::{AlgorithmChoice, BranchingChoice, McsStream, MpmcsOptions, StreamStep};

use crate::results::{
    ImportanceReport, ImportanceRow, SessionError, SolutionSet, SweepReport, Termination,
};
use crate::stream::SolutionStream;

/// The warm per-analyzer solver state of the incremental MaxSAT engine: one
/// live enumeration session plus the canonical solution prefix it has proven
/// so far. Queries extend the prefix lazily — `top_k(5)` after `top_k(3)`
/// solves two more optima, not eight.
#[derive(Debug, Default)]
pub(crate) struct WarmState {
    stream: Option<McsStream>,
    cache: Vec<BackendSolution>,
    exhausted: bool,
    no_cut_set: bool,
}

/// The session-oriented entry point for fault-tree analysis.
///
/// An `Analyzer` owns the parsed tree and the warm incremental solver state,
/// and answers the core queries through one typed, budget-aware interface —
/// replacing the assemble-it-yourself `FaultTree` → [`BackendConfig`] →
/// [`ft_backend::backend_for`] → per-query wiring:
///
/// ```rust
/// use fault_tree::examples::fire_protection_system;
/// use ft_session::{Analyzer, BackendKind, Budget};
///
/// let mut analyzer = Analyzer::for_tree(fire_protection_system())
///     .backend(BackendKind::MaxSat)
///     .budget(Budget::wall_ms(5_000).max_solutions(64));
/// let best = analyzer.mpmcs().unwrap();
/// assert!((best.probability - 0.02).abs() < 1e-9); // the paper's answer
/// let top = analyzer.top_k(3).unwrap(); // reuses the warm session
/// assert_eq!(top.solutions.len(), 3);
/// assert!(!top.is_truncated());
/// ```
///
/// # Query semantics
///
/// All enumeration queries answer in the **canonical enumeration order**
/// (exact integer scaled cost, then cut set): `top_k(k)` is always the first
/// `k` entries of the full `all_mcs()` sequence, and a streamed prefix of
/// length `n` equals the first `n` entries of the collected answer. Budgets
/// ([`Budget`]) and cancellation ([`CancelToken`]) stop queries cleanly with
/// partial, well-labelled results ([`SolutionSet::termination`]) — the
/// already-delivered prefix is always exactly what an unbudgeted run would
/// have delivered first.
///
/// # Engine modes
///
/// With the (default) MaxSAT backend and no modular preprocessing, queries
/// run through a **warm incremental session**: the tree is encoded once, the
/// CDCL state persists across queries, and every query extends the proven
/// prefix instead of starting over. Classical backends (BDD, MOCUS), the
/// modular preprocessing pass, and explicit `linear-su` algorithm requests
/// delegate to the corresponding [`AnalysisBackend`] per query.
pub struct Analyzer {
    tree: Arc<FaultTree>,
    requested: BackendKind,
    config: BackendConfig,
    budget: Budget,
    cancel: CancelToken,
    /// The shared content-addressed analysis cache, when attached.
    cache: Option<Arc<AnalysisCache>>,
    /// The resolved kind and engine, built lazily on the first query so a
    /// chain of builder setters never constructs throw-away backends.
    engine: Option<(BackendKind, Box<dyn AnalysisBackend>)>,
    warm: WarmState,
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("tree", &self.tree.name())
            .field("backend", &self.resolved_backend())
            .field("preprocess", &self.config.preprocess)
            .field("budget", &self.budget)
            .field("warm_prefix", &self.warm.cache.len())
            .finish()
    }
}

impl Analyzer {
    /// Creates an analyzer owning `tree`, with the default configuration
    /// (MaxSAT backend, no preprocessing, unlimited budget).
    pub fn for_tree(tree: FaultTree) -> Analyzer {
        Analyzer::for_shared(Arc::new(tree))
    }

    /// Creates an analyzer over a shared tree handle — the form the
    /// [`AnalysisService`](crate::AnalysisService) uses to share one parsed
    /// tree across many per-thread analyzers.
    pub fn for_shared(tree: Arc<FaultTree>) -> Analyzer {
        Analyzer {
            tree,
            requested: BackendKind::default(),
            config: BackendConfig::default(),
            budget: Budget::unlimited(),
            cancel: CancelToken::new(),
            cache: None,
            engine: None,
            warm: WarmState::default(),
        }
    }

    /// Selects the analysis engine ([`BackendKind::Auto`] resolves against
    /// the tree's structural features on the first query). Resets the warm
    /// state.
    pub fn backend(mut self, kind: BackendKind) -> Self {
        self.requested = kind;
        self.reset();
        self
    }

    /// Enables (or disables) the modular divide-and-conquer preprocessing
    /// pass in front of the engine. Resets the warm state.
    pub fn preprocess(mut self, enabled: bool) -> Self {
        self.config.preprocess = enabled;
        self.reset();
        self
    }

    /// Selects the MaxSAT strategy used by delegated single-shot queries
    /// (warm-session enumeration always runs the deterministic core-guided
    /// session; an explicit [`AlgorithmChoice::LinearSu`] request opts out of
    /// the warm session entirely). Resets the warm state.
    pub fn algorithm(mut self, algorithm: AlgorithmChoice) -> Self {
        self.config.algorithm = algorithm;
        self.reset();
        self
    }

    /// Selects the SAT decision heuristic used by the MaxSAT backend's
    /// solvers (default [`BranchingChoice::Vsids`]). Resets the warm state.
    pub fn branching(mut self, branching: BranchingChoice) -> Self {
        self.config.branching = branching;
        self.reset();
        self
    }

    /// Selects the BDD variable ordering (BDD backend and the importance
    /// table's exact probability). Resets the warm state.
    pub fn bdd_ordering(mut self, ordering: VariableOrdering) -> Self {
        self.config.bdd_ordering = ordering;
        self.reset();
        self
    }

    /// Sets the per-query [`Budget`]. The wall clock is armed at every query
    /// start; the solution cap applies to each enumeration query's answer.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a [`CancelToken`]: cancelling it (from any thread) stops the
    /// analyzer's in-flight and future queries cleanly.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a shared content-addressed [`AnalysisCache`]: complete query
    /// answers are deposited under the tree's canonical weighted hash and
    /// replayed — bit-identically — for any isomorphic tree queried under
    /// the same configuration, by this analyzer or any other holding the
    /// same cache. Budget-truncated answers are never cached. Resets the
    /// warm state.
    pub fn cache(mut self, cache: Arc<AnalysisCache>) -> Self {
        self.cache = Some(cache);
        self.reset();
        self
    }

    /// The shared analysis cache, when one is attached.
    pub fn shared_cache(&self) -> Option<&Arc<AnalysisCache>> {
        self.cache.as_ref()
    }

    fn reset(&mut self) {
        self.engine = None;
        self.warm = WarmState::default();
    }

    /// Builds (or reuses) the resolved engine. Queries go through this so
    /// builder chains pay for exactly one backend construction.
    fn ensure_engine(&mut self) -> &dyn AnalysisBackend {
        if self.engine.is_none() {
            self.engine = Some(backend_for_cached(
                self.requested,
                &self.tree,
                &self.config,
                self.cache.clone(),
            ));
        }
        &*self.engine.as_ref().expect("just ensured").1
    }

    /// The analysed tree.
    pub fn tree(&self) -> &FaultTree {
        &self.tree
    }

    /// The shared handle to the analysed tree.
    pub fn shared_tree(&self) -> Arc<FaultTree> {
        Arc::clone(&self.tree)
    }

    /// The resolved engine answering this analyzer's queries
    /// ([`BackendKind::Auto`] resolves against the tree's structural
    /// features).
    pub fn resolved_backend(&self) -> BackendKind {
        match &self.engine {
            Some((resolved, _)) => *resolved,
            None => ft_backend::resolve_backend(self.requested, &self.tree),
        }
    }

    /// The per-query budget in effect.
    pub fn query_budget(&self) -> Budget {
        self.budget
    }

    /// `true` when queries run through the warm incremental MaxSAT session
    /// (see the type-level docs for the exact conditions).
    pub fn uses_warm_session(&self) -> bool {
        self.resolved_backend() == BackendKind::MaxSat
            && !self.config.preprocess
            && self.config.algorithm != AlgorithmChoice::LinearSu
    }

    /// The canonical solution prefix proven by the warm session so far
    /// (empty for delegated engines) — exposed for warm-reuse assertions.
    pub fn warm_prefix_len(&self) -> usize {
        self.warm.cache.len()
    }

    pub(crate) fn mpmcs_options(&self) -> MpmcsOptions {
        MpmcsOptions {
            algorithm: self.config.algorithm,
            branching: self.config.branching,
            ..MpmcsOptions::new()
        }
    }

    /// A transient engine for consumers that only hold `&self` (the lazy
    /// stream); queries on `&mut self` use the cached [`ensure_engine`]
    /// instead.
    ///
    /// [`ensure_engine`]: Analyzer::ensure_engine
    pub(crate) fn build_backend(&self) -> Box<dyn AnalysisBackend> {
        backend_for_cached(self.requested, &self.tree, &self.config, self.cache.clone()).1
    }

    /// The cache handle the warm MaxSAT session consults (the delegated
    /// engines consult the cache inside [`backend_for_cached`] instead).
    fn warm_cache_handle(&self) -> Option<CacheHandle> {
        let cache = self.cache.as_ref()?;
        Some(CacheHandle::new(
            Arc::clone(cache),
            config_fingerprint(BackendKind::MaxSat, &self.config),
        ))
    }

    pub(crate) fn control(&self) -> QueryControl {
        QueryControl::begin(&self.budget, &self.cancel)
    }

    /// Extends the warm canonical prefix to `target` solutions (or to
    /// exhaustion when `None`), stopping early when `control` fires. Returns
    /// the stop cause that ended the extension, if any.
    fn extend_prefix(
        &mut self,
        target: Option<usize>,
        control: &QueryControl,
    ) -> Result<Option<Termination>, SessionError> {
        debug_assert!(self.uses_warm_session());
        if self.warm.no_cut_set {
            return Err(SessionError::NoCutSet);
        }
        // Already satisfied: never open (or touch) the live session.
        if self.warm.exhausted || target.is_some_and(|t| self.warm.cache.len() >= t) {
            return Ok(None);
        }
        let handle = self.warm_cache_handle();
        // A shared-cache hit replaces the whole live enumeration: the cached
        // family is complete, so the warm state jumps straight to exhausted.
        if let Some(handle) = &handle {
            if self.warm.stream.is_none() && self.warm.cache.is_empty() {
                match handle.lookup_solutions(&self.tree, QueryKind::AllMcs) {
                    Cached::Hit(solutions) => {
                        self.warm.cache = solutions;
                        self.warm.exhausted = true;
                        return Ok(None);
                    }
                    Cached::NoCutSet => {
                        self.warm.no_cut_set = true;
                        self.warm.exhausted = true;
                        return Err(SessionError::NoCutSet);
                    }
                    Cached::Miss => {}
                }
            }
        }
        let options = self.mpmcs_options();
        let stream = self
            .warm
            .stream
            .get_or_insert_with(|| McsStream::open(Arc::clone(&self.tree), options));
        stream.set_interrupt(Some(control.interrupt_hook()));
        let mut stopped = None;
        while target.is_none_or(|t| self.warm.cache.len() < t) && !self.warm.exhausted {
            if let Some(cause) = control.stop_cause() {
                stopped = Some(Termination::from(cause));
                break;
            }
            match stream.next_step() {
                Ok(StreamStep::Solution(solution)) => {
                    self.warm.cache.push(BackendSolution::from_mpmcs(solution));
                }
                Ok(StreamStep::Exhausted) => self.warm.exhausted = true,
                Ok(StreamStep::Interrupted) => {
                    stopped = Some(
                        control
                            .stop_cause()
                            .map_or(Termination::Cancelled, Termination::from),
                    );
                    break;
                }
                Err(mpmcs::MpmcsError::NoCutSet) => {
                    self.warm.no_cut_set = true;
                    self.warm.exhausted = true;
                    if let Some(handle) = &handle {
                        handle.store_no_cut_set(&self.tree, QueryKind::AllMcs);
                    }
                    return Err(SessionError::NoCutSet);
                }
                Err(other) => return Err(other.into()),
            }
        }
        stream.set_interrupt(None);
        // The tie-group look-ahead may already have proven exhaustion (the
        // last delivered group was closed by UNSAT, not by a costlier
        // optimum) — fold that knowledge in so cap-boundary answers are
        // labelled `Complete`, never conservatively truncated.
        if stream.is_exhausted() {
            self.warm.exhausted = true;
        }
        // Deposit the family once the enumeration is exhausted — and only
        // then: a budget-truncated prefix must never poison the cache.
        if self.warm.exhausted && stopped.is_none() {
            if let Some(handle) = &handle {
                handle.store_solutions(&self.tree, QueryKind::AllMcs, &self.warm.cache);
            }
        }
        Ok(stopped)
    }

    /// The Maximum Probability Minimal Cut Set — deterministically the
    /// *canonical* optimum (smallest cut set among equal-probability ties).
    ///
    /// # Errors
    ///
    /// [`SessionError::NoCutSet`] when the top event cannot occur;
    /// [`SessionError::Stopped`] when the budget or cancellation fired
    /// before the optimum was proven; engine errors otherwise.
    pub fn mpmcs(&mut self) -> Result<BackendSolution, SessionError> {
        let control = self.control();
        if self.uses_warm_session() {
            // A fresh analyzer consults the shared cache before paying for
            // the encoding; a proven optimum is a complete, cacheable answer.
            if self.warm.cache.is_empty() && !self.warm.no_cut_set {
                if let Some(handle) = self.warm_cache_handle() {
                    match handle.lookup_best(&self.tree) {
                        Cached::Hit(best) => return Ok(best),
                        Cached::NoCutSet => return Err(SessionError::NoCutSet),
                        Cached::Miss => {}
                    }
                }
            }
            let stopped = self.extend_prefix(Some(1), &control)?;
            match self.warm.cache.first() {
                Some(best) => {
                    if let Some(handle) = self.warm_cache_handle() {
                        handle.store_best(&self.tree, best);
                    }
                    Ok(best.clone())
                }
                None => Err(stopped_error(stopped, &control)),
            }
        } else {
            if let Some(cause) = control.stop_cause() {
                return Err(SessionError::Stopped(cause.into()));
            }
            let tree = Arc::clone(&self.tree);
            Ok(self.ensure_engine().mpmcs(&tree)?)
        }
    }

    /// The `k` most probable minimal cut sets — always the first `k` entries
    /// of the canonical full enumeration.
    ///
    /// # Errors
    ///
    /// [`SessionError::NoCutSet`] when the tree has no cut set at all;
    /// engine errors otherwise. A budget-stopped query is **not** an error:
    /// it reports its partial prefix with a truncated
    /// [`termination`](SolutionSet::termination).
    pub fn top_k(&mut self, k: usize) -> Result<SolutionSet, SessionError> {
        self.enumerate(Some(k))
    }

    /// Every minimal cut set, most probable first (canonical order).
    ///
    /// # Errors
    ///
    /// Same contract as [`Analyzer::top_k`].
    pub fn all_mcs(&mut self) -> Result<SolutionSet, SessionError> {
        self.enumerate(None)
    }

    fn enumerate(&mut self, k: Option<usize>) -> Result<SolutionSet, SessionError> {
        let control = self.control();
        let cap = self.budget.max_solutions_limit();
        // Whether the solution cap — rather than the request itself — is the
        // binding bound on the answer; only then can `SolutionCap` apply.
        let cap_constrains = match (k, cap) {
            (Some(k), Some(cap)) => cap < k,
            (None, Some(_)) => true,
            _ => false,
        };
        let target = match (k, cap) {
            (Some(k), Some(cap)) => Some(k.min(cap)),
            (Some(k), None) => Some(k),
            (None, cap) => cap,
        };
        if self.uses_warm_session() {
            // A fresh session consults the shared cache for a complete
            // top-`target` prefix before paying for the encoding. The hit
            // bypasses the warm state entirely (restoring a prefix without
            // its live solver session could not be extended later), so a
            // subsequent larger query enumerates normally from scratch.
            if self.warm.stream.is_none()
                && self.warm.cache.is_empty()
                && !self.warm.no_cut_set
                && !self.warm.exhausted
            {
                if let (Some(t), Some(handle)) = (target, self.warm_cache_handle()) {
                    match handle.lookup_solutions(&self.tree, QueryKind::TopK(t)) {
                        Cached::Hit(solutions) => {
                            // Deposits under `TopK` only happen while the
                            // enumeration was provably not exhausted, so the
                            // cache-off labels are reproduced exactly.
                            let termination = if cap_constrains {
                                Termination::SolutionCap
                            } else {
                                Termination::Complete
                            };
                            return Ok(SolutionSet {
                                solutions,
                                termination,
                            });
                        }
                        Cached::NoCutSet => {
                            self.warm.no_cut_set = true;
                            self.warm.exhausted = true;
                            return Err(SessionError::NoCutSet);
                        }
                        Cached::Miss => {}
                    }
                }
            }
            let stopped = self.extend_prefix(target, &control)?;
            // A prefix that reached its target without a budget stop is the
            // *complete* answer to that top-`target` query, cacheable even
            // though the family enumeration is still open. (Exhausted
            // families are already deposited under `AllMcs`.)
            if stopped.is_none() && !self.warm.exhausted {
                if let Some(t) = target {
                    if self.warm.cache.len() >= t {
                        if let Some(handle) = self.warm_cache_handle() {
                            handle.store_solutions(
                                &self.tree,
                                QueryKind::TopK(t),
                                &self.warm.cache[..t],
                            );
                        }
                    }
                }
            }
            let delivered = target.map_or(self.warm.cache.len(), |t| t.min(self.warm.cache.len()));
            let solutions = self.warm.cache[..delivered].to_vec();
            let termination = match stopped {
                Some(cause) => cause,
                // A cache-restored (or previously exhausted) family can be
                // larger than a binding cap: the cap still truncates.
                None if cap_constrains && self.warm.cache.len() > delivered => {
                    Termination::SolutionCap
                }
                None if self.warm.exhausted => Termination::Complete,
                // Not exhausted means the tie-group look-ahead has already
                // proven a costlier solution beyond the prefix, so a binding
                // cap really did truncate; a satisfied `top_k(k)` request is
                // complete by definition.
                None if cap_constrains => Termination::SolutionCap,
                None => Termination::Complete,
            };
            Ok(SolutionSet {
                solutions,
                termination,
            })
        } else if let (Some(t), None) = (target, self.budget.wall_limit()) {
            // Bounded request without a deadline: delegate to the engine's
            // own top-k, which may be far cheaper than a full enumeration
            // (the modular preprocessing pass composes per-module top-k's).
            if let Some(cause) = control.stop_cause() {
                return Err(SessionError::Stopped(cause.into()));
            }
            // When the cap binds, probe one solution deeper so a cap that
            // exactly matches the family size is labelled `Complete`, not
            // conservatively truncated.
            let request = if cap_constrains { t + 1 } else { t };
            let tree = Arc::clone(&self.tree);
            let mut solutions = self.ensure_engine().top_k(&tree, request)?;
            let capped = cap_constrains && solutions.len() > t;
            solutions.truncate(t);
            Ok(SolutionSet {
                solutions,
                termination: if capped {
                    Termination::SolutionCap
                } else {
                    Termination::Complete
                },
            })
        } else {
            let tree = Arc::clone(&self.tree);
            let enumerated = self.ensure_engine().all_mcs_under(&tree, &control)?;
            let total = enumerated.solutions.len();
            let mut solutions = enumerated.solutions;
            if let Some(t) = target {
                solutions.truncate(t);
            }
            let termination = match enumerated.stopped {
                Some(cause) => Termination::from(cause),
                None if cap_constrains && target.is_some_and(|t| total > t) => {
                    Termination::SolutionCap
                }
                None => Termination::Complete,
            };
            Ok(SolutionSet {
                solutions,
                termination,
            })
        }
    }

    /// The exact probability of the top event.
    ///
    /// With the warm MaxSAT session this quantifies the *cached* cut-set
    /// family (extending it to exhaustion first), so repeated probability
    /// queries — or a probability query after `all_mcs()` — never re-run the
    /// enumeration.
    ///
    /// # Errors
    ///
    /// [`SessionError::Stopped`] when the budget fired before the family was
    /// fully enumerated, and the engines' budget errors.
    pub fn probability(&mut self) -> Result<f64, SessionError> {
        let control = self.control();
        if self.uses_warm_session() {
            let handle = self.warm_cache_handle();
            if let Some(handle) = &handle {
                match handle.lookup_probability(&self.tree) {
                    Cached::Hit(probability) => return Ok(probability),
                    Cached::NoCutSet => return Ok(0.0),
                    Cached::Miss => {}
                }
            }
            match self.extend_prefix(None, &control) {
                Ok(None) => {}
                Ok(Some(termination)) => {
                    return Err(stopped_error(Some(termination), &control));
                }
                // The MaxSAT engine's convention: no cut set means the top
                // event cannot occur, so its probability is exactly zero.
                Err(SessionError::NoCutSet) => {
                    if let Some(handle) = &handle {
                        handle.store_probability(&self.tree, 0.0);
                    }
                    return Ok(0.0);
                }
                Err(other) => return Err(other),
            }
            let cut_sets: Vec<CutSet> = self.warm.cache.iter().map(|s| s.cut_set.clone()).collect();
            let probability = exact_union_probability(
                &self.tree,
                &cut_sets,
                self.config.probability_budget,
                "maxsat",
            )?;
            if let Some(handle) = &handle {
                handle.store_probability(&self.tree, probability);
            }
            Ok(probability)
        } else {
            if let Some(cause) = control.stop_cause() {
                return Err(SessionError::Stopped(cause.into()));
            }
            let tree = Arc::clone(&self.tree);
            Ok(self.ensure_engine().top_event_probability(&tree)?)
        }
    }

    /// The exact top-event probability curve over a mission-time grid — the
    /// incremental sweep query.
    ///
    /// The structural solve runs **once** for the whole grid: the warm MaxSAT
    /// session enumerates the minimal-cut-set family a single time and every
    /// timepoint re-prices it under the probabilities at `t` (the family
    /// depends on the structure alone); the delegated engines go through
    /// their own [`AnalysisBackend::probability_sweep`] overrides (the BDD
    /// backend re-quantifies its compiled diagram, the preprocessing pass
    /// recomposes per-module curves). Each point is bit-identical to the
    /// corresponding point [`Analyzer::probability`] query against
    /// [`FaultTree::at_time`]`(t)`.
    ///
    /// With a shared [`AnalysisCache`] attached, complete curves are
    /// deposited under the tree's *structure* hash plus a grid/time-law
    /// fingerprint and replayed bit-identically for isomorphic trees.
    ///
    /// # Errors
    ///
    /// [`SessionError::Stopped`] when the budget or cancellation fired
    /// before the structural solve finished, and the engines' budget errors.
    /// A tree with no cut set yields the all-zero curve, mirroring
    /// [`Analyzer::probability`].
    pub fn sweep(&mut self, grid: &[f64]) -> Result<SweepReport, SessionError> {
        let control = self.control();
        let report = |probabilities: Vec<f64>| SweepReport {
            grid: grid.to_vec(),
            probabilities,
        };
        if self.uses_warm_session() {
            let handle = self.warm_cache_handle();
            if let Some(handle) = &handle {
                match handle.lookup_curve(&self.tree, grid) {
                    Cached::Hit(probabilities) => return Ok(report(probabilities)),
                    Cached::NoCutSet => return Ok(report(vec![0.0; grid.len()])),
                    Cached::Miss => {}
                }
            }
            match self.extend_prefix(None, &control) {
                Ok(None) => {}
                Ok(Some(termination)) => {
                    return Err(stopped_error(Some(termination), &control));
                }
                // No cut set: the top event cannot occur at any time.
                Err(SessionError::NoCutSet) => {
                    let probabilities = vec![0.0; grid.len()];
                    if let Some(handle) = &handle {
                        handle.store_curve(&self.tree, grid, &probabilities);
                    }
                    return Ok(report(probabilities));
                }
                Err(other) => return Err(other),
            }
            let family: Vec<CutSet> = self.warm.cache.iter().map(|s| s.cut_set.clone()).collect();
            let probabilities = ft_backend::reprice_sweep(
                &self.tree,
                &family,
                grid,
                self.config.probability_budget,
                "maxsat",
                true,
            )?;
            if let Some(handle) = &handle {
                handle.store_curve(&self.tree, grid, &probabilities);
            }
            Ok(report(probabilities))
        } else {
            if let Some(cause) = control.stop_cause() {
                return Err(SessionError::Stopped(cause.into()));
            }
            let tree = Arc::clone(&self.tree);
            Ok(report(self.ensure_engine().probability_sweep(&tree, grid)?))
        }
    }

    /// Per-event importance tables over a mission-time grid — one
    /// [`ImportanceReport`] per grid point, each bit-identical to the point
    /// [`Analyzer::importance`] query against [`FaultTree::at_time`]`(t)`.
    ///
    /// The two structural solves are amortized across the whole grid: the
    /// minimal-cut-set family is enumerated once (it depends on the structure
    /// alone, so each point only re-establishes the canonical weight-
    /// dependent order), and the exact-probability oracle compiles the ROBDD
    /// once and re-quantifies it per conditioned probability vector.
    ///
    /// # Errors
    ///
    /// Same contract as [`Analyzer::importance`]: a budget-stopped family
    /// enumeration surfaces as [`SessionError::Stopped`].
    pub fn importance_sweep(
        &mut self,
        grid: &[f64],
    ) -> Result<Vec<ImportanceReport>, SessionError> {
        let family = self.all_mcs()?;
        if family.is_truncated() {
            return Err(SessionError::Stopped(family.termination));
        }
        let cuts: Vec<CutSet> = family
            .solutions
            .into_iter()
            .map(|solution| solution.cut_set)
            .collect();
        let compiled = bdd_engine::compile_fault_tree(&self.tree, self.config.bdd_ordering);
        let mut requantifier = compiled.requantifier();
        let mut reports = Vec::with_capacity(grid.len());
        for &t in grid {
            let tree_t = self.tree.at_time(t);
            // The point query's family arrives in the canonical order at
            // `t`; re-establish it so order-sensitive sums match bit for bit.
            let mut solutions: Vec<BackendSolution> = cuts
                .iter()
                .map(|cut| BackendSolution::from_cut(&tree_t, cut.clone(), "maxsat"))
                .collect();
            ft_backend::canonical_sort(&tree_t, &mut solutions);
            let cuts_t: Vec<CutSet> = solutions.into_iter().map(|s| s.cut_set).collect();
            let exact = |conditioned: &FaultTree| {
                requantifier
                    .probability_with(|event| conditioned.event(event).probability().value())
            };
            let table = ft_analysis::importance::ImportanceTable::compute(&tree_t, &cuts_t, exact);
            reports.push(importance_report(&tree_t, &table));
        }
        Ok(reports)
    }

    /// The per-event importance table (Birnbaum, Fussell-Vesely, RAW, RRW,
    /// criticality, structural), computed from the full minimal-cut-set
    /// family and the exact BDD probability.
    ///
    /// # Errors
    ///
    /// Same contract as [`Analyzer::all_mcs`] for the enumeration part;
    /// budget-stopped enumerations surface as [`SessionError::Stopped`]
    /// (an importance table over a partial family would be silently wrong).
    pub fn importance(&mut self) -> Result<ImportanceReport, SessionError> {
        let family = self.all_mcs()?;
        if family.is_truncated() {
            return Err(SessionError::Stopped(family.termination));
        }
        let cut_sets: Vec<CutSet> = family
            .solutions
            .into_iter()
            .map(|solution| solution.cut_set)
            .collect();
        let ordering = self.config.bdd_ordering;
        let exact = move |t: &FaultTree| {
            bdd_engine::compile_fault_tree(t, ordering).top_event_probability(t)
        };
        let table = ft_analysis::importance::ImportanceTable::compute(&self.tree, &cut_sets, exact);
        Ok(importance_report(&self.tree, &table))
    }

    /// Opens a lazy [`SolutionStream`]: minimal cut sets are pulled one at a
    /// time from a live CDCL session (bounded memory, early exit), in the
    /// same canonical order the collected queries answer in. The analyzer's
    /// budget and cancel token govern the stream; the analyzer's own warm
    /// state is untouched, so streams and collected queries compose freely.
    pub fn stream(&self) -> SolutionStream {
        SolutionStream::open(self)
    }
}

/// Materialises a computed importance table into the facade's typed report
/// (one row per basic event, in event-identifier order).
fn importance_report(
    tree: &FaultTree,
    table: &ft_analysis::importance::ImportanceTable,
) -> ImportanceReport {
    let rows = tree
        .event_ids()
        .map(|event| {
            let i = event.index();
            ImportanceRow {
                event: tree.event(event).name().to_string(),
                birnbaum: table.birnbaum[i],
                fussell_vesely: table.fussell_vesely[i],
                raw: table.raw[i],
                rrw: table.rrw[i],
                criticality: table.criticality[i],
                structural: table.structural[i],
            }
        })
        .collect();
    ImportanceReport { rows }
}

/// Maps a stopped-before-first-answer extension into the facade error.
fn stopped_error(stopped: Option<Termination>, control: &QueryControl) -> SessionError {
    SessionError::Stopped(stopped.unwrap_or_else(|| {
        control
            .stop_cause()
            .map_or(Termination::Cancelled, Termination::from)
    }))
}
