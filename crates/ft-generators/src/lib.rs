//! Synthetic fault-tree workload generators.
//!
//! The paper's evaluation reports that the MaxSAT approach "scales to fault
//! trees with thousands of nodes in seconds", but the instances themselves
//! are not published. This crate provides seeded, reproducible generators
//! covering the same size range and a spectrum of structures, so the
//! scalability experiments (and the property-based tests) have controlled
//! workloads to run on.
//!
//! # Example
//!
//! ```rust
//! use ft_generators::{random_tree, RandomTreeConfig};
//!
//! let config = RandomTreeConfig { num_events: 200, ..RandomTreeConfig::default() };
//! let tree = random_tree(&config, 42);
//! assert_eq!(tree.num_events(), 200);
//! assert!(tree.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use fault_tree::{FaultTree, FaultTreeBuilder, GateKind, NodeId};

/// Parameters of the random fault-tree generator.
#[derive(Clone, Debug)]
pub struct RandomTreeConfig {
    /// Number of basic events.
    pub num_events: usize,
    /// Maximum number of inputs per gate (at least 2).
    pub max_children: usize,
    /// Probability that a generated gate is an AND gate.
    pub and_ratio: f64,
    /// Probability that a generated gate is a voting gate (with a random
    /// threshold); the remainder are OR gates.
    pub vot_ratio: f64,
    /// Probability of adding one extra, already-used event as an additional
    /// gate input (creates shared events, i.e. a DAG).
    pub shared_event_ratio: f64,
    /// Range of basic-event probabilities (uniformly sampled).
    pub probability_range: (f64, f64),
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            num_events: 100,
            max_children: 4,
            and_ratio: 0.4,
            vot_ratio: 0.05,
            shared_event_ratio: 0.1,
            probability_range: (0.001, 0.2),
        }
    }
}

impl RandomTreeConfig {
    /// A configuration aimed at a total node count (events + gates) close to
    /// `total_nodes`, assuming the default branching factor.
    pub fn with_total_nodes(total_nodes: usize) -> Self {
        // With max_children = 4 the average arity is ~3, so roughly 2/3 of the
        // nodes are events and 1/3 are gates.
        let num_events = (total_nodes * 2 / 3).max(2);
        RandomTreeConfig {
            num_events,
            ..RandomTreeConfig::default()
        }
    }
}

/// Generates a random fault tree.
///
/// The construction is bottom-up: basic events are combined by random gates
/// until a single root remains, so every event is reachable from the top and
/// the structure is acyclic by construction. The same `(config, seed)` pair
/// always yields the same tree.
///
/// # Panics
///
/// Panics if `config.num_events == 0` or `config.max_children < 2`.
pub fn random_tree(config: &RandomTreeConfig, seed: u64) -> FaultTree {
    assert!(config.num_events > 0, "at least one event is required");
    assert!(config.max_children >= 2, "gates need at least two children");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder =
        FaultTreeBuilder::new(format!("random-{}events-seed{}", config.num_events, seed));
    let (p_min, p_max) = config.probability_range;
    let mut pool: Vec<NodeId> = (0..config.num_events)
        .map(|i| {
            let p = rng.gen_range(p_min..=p_max);
            NodeId::from(
                builder
                    .basic_event(format!("e{i}"), p)
                    .expect("generated probabilities are valid"),
            )
        })
        .collect();
    let mut consumed_events: Vec<NodeId> = Vec::new();
    let mut gate_index = 0usize;

    if pool.len() == 1 {
        let top = pool[0];
        return builder.build(top).expect("single-event tree is valid");
    }

    while pool.len() > 1 {
        let arity = rng.gen_range(2..=config.max_children.min(pool.len()));
        pool.shuffle(&mut rng);
        let mut inputs: Vec<NodeId> = pool.split_off(pool.len() - arity);
        // Occasionally re-use an already consumed event to create sharing.
        if !consumed_events.is_empty() && rng.gen_bool(config.shared_event_ratio) {
            let extra = consumed_events[rng.gen_range(0..consumed_events.len())];
            if !inputs.contains(&extra) {
                inputs.push(extra);
            }
        }
        for input in &inputs {
            if matches!(input, NodeId::Event(_)) {
                consumed_events.push(*input);
            }
        }
        let choice: f64 = rng.gen();
        let kind = if choice < config.and_ratio {
            GateKind::And
        } else if choice < config.and_ratio + config.vot_ratio && inputs.len() >= 3 {
            GateKind::Vot {
                k: rng.gen_range(2..inputs.len()),
            }
        } else {
            GateKind::Or
        };
        let gate = builder
            .gate(format!("g{gate_index}"), kind, inputs)
            .expect("generated gates are valid");
        gate_index += 1;
        pool.push(gate.into());
    }
    let top = pool[0];
    builder.build(top).expect("generated trees are valid")
}

/// A balanced tree of alternating AND/OR layers (`depth` gate layers over
/// `2^depth` events). ANDs on even layers counted from the leaves.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn alternating_and_or(depth: usize, seed: u64) -> FaultTree {
    assert!(depth > 0, "depth must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = FaultTreeBuilder::new(format!("alternating-depth{depth}-seed{seed}"));
    let num_leaves = 1usize << depth;
    let mut layer: Vec<NodeId> = (0..num_leaves)
        .map(|i| {
            let p = rng.gen_range(0.01..=0.2);
            NodeId::from(builder.basic_event(format!("e{i}"), p).expect("valid"))
        })
        .collect();
    let mut level = 0usize;
    let mut gate_index = 0usize;
    while layer.len() > 1 {
        let kind = if level.is_multiple_of(2) {
            GateKind::And
        } else {
            GateKind::Or
        };
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let gate = builder
                .gate(format!("g{gate_index}"), kind, pair.to_vec())
                .expect("valid");
            gate_index += 1;
            next.push(gate.into());
        }
        layer = next;
        level += 1;
    }
    builder.build(layer[0]).expect("valid alternating tree")
}

/// A single OR gate over `n` events (every singleton is a minimal cut set).
pub fn wide_or(n: usize, seed: u64) -> FaultTree {
    flat_gate(n, seed, GateKind::Or, "wide-or")
}

/// A single AND gate over `n` events (one minimal cut set containing all
/// events).
pub fn wide_and(n: usize, seed: u64) -> FaultTree {
    flat_gate(n, seed, GateKind::And, "wide-and")
}

/// A single `k`-out-of-`n` voting gate over `n` events.
///
/// # Panics
///
/// Panics if `k` is not a valid threshold for `n`.
pub fn wide_voting(k: usize, n: usize, seed: u64) -> FaultTree {
    assert!(k >= 1 && k <= n, "invalid voting threshold");
    flat_gate(n, seed, GateKind::Vot { k }, "wide-voting")
}

fn flat_gate(n: usize, seed: u64, kind: GateKind, name: &str) -> FaultTree {
    assert!(n >= 1, "at least one event is required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = FaultTreeBuilder::new(format!("{name}-{n}-seed{seed}"));
    let events: Vec<NodeId> = (0..n)
        .map(|i| {
            let p = rng.gen_range(0.001..=0.3);
            NodeId::from(builder.basic_event(format!("e{i}"), p).expect("valid"))
        })
        .collect();
    if events.len() == 1 {
        return builder.build(events[0]).expect("valid");
    }
    let kind = match kind {
        GateKind::Vot { k } => GateKind::Vot { k },
        other => other,
    };
    let top = builder.gate("top", kind, events).expect("valid");
    builder.build(top.into()).expect("valid")
}

/// A named scalability workload: a structural family instantiated at a target
/// node count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Random mixed AND/OR/VOT trees (the default scalability family).
    RandomMixed,
    /// Random trees with a high proportion of AND gates (larger cut sets).
    AndHeavy,
    /// Random trees with a high proportion of OR gates (many cut sets).
    OrHeavy,
    /// Random trees with many shared events (DAG structure).
    SharedDag,
    /// Random trees with a sizeable fraction of voting gates.
    VotingHeavy,
    /// Trees dominated by repeated isomorphic modules (see
    /// [`shared_module_tree`]): the reuse-heavy workload behind the analysis
    /// cache benchmarks.
    SharedModules,
}

impl Family {
    /// All families, in a stable order.
    pub fn all() -> [Family; 6] {
        [
            Family::RandomMixed,
            Family::AndHeavy,
            Family::OrHeavy,
            Family::SharedDag,
            Family::VotingHeavy,
            Family::SharedModules,
        ]
    }

    /// Looks up a family by its short [`name`](Family::name); the inverse of
    /// that method, used by batch manifests and command-line front-ends.
    ///
    /// ```rust
    /// use ft_generators::Family;
    ///
    /// assert_eq!(Family::by_name("and-heavy"), Some(Family::AndHeavy));
    /// assert_eq!(Family::by_name("nope"), None);
    /// ```
    pub fn by_name(name: &str) -> Option<Family> {
        Family::all().into_iter().find(|f| f.name() == name)
    }

    /// A short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Family::RandomMixed => "random-mixed",
            Family::AndHeavy => "and-heavy",
            Family::OrHeavy => "or-heavy",
            Family::SharedDag => "shared-dag",
            Family::VotingHeavy => "voting-heavy",
            Family::SharedModules => "shared-modules",
        }
    }

    /// The generator configuration of this family for a target node count.
    ///
    /// For [`Family::SharedModules`] the returned configuration is only a
    /// size proxy: [`Family::generate`] builds that family with the dedicated
    /// [`shared_module_tree`] constructor instead of [`random_tree`].
    pub fn config(&self, total_nodes: usize) -> RandomTreeConfig {
        let base = RandomTreeConfig::with_total_nodes(total_nodes);
        match self {
            Family::RandomMixed => base,
            Family::AndHeavy => RandomTreeConfig {
                and_ratio: 0.7,
                vot_ratio: 0.0,
                ..base
            },
            Family::OrHeavy => RandomTreeConfig {
                and_ratio: 0.15,
                vot_ratio: 0.0,
                ..base
            },
            Family::SharedDag => RandomTreeConfig {
                shared_event_ratio: 0.4,
                ..base
            },
            Family::VotingHeavy => RandomTreeConfig {
                vot_ratio: 0.3,
                ..base
            },
            Family::SharedModules => base,
        }
    }

    /// Generates the family instance with the given target node count.
    pub fn generate(&self, total_nodes: usize, seed: u64) -> FaultTree {
        match self {
            Family::SharedModules => {
                // Each module copy is ~13 nodes (8 events, 4 ORs, 1 AND);
                // spread the copies over up to three distinct shapes.
                let copies = (total_nodes / 13).max(2);
                let shapes = copies.min(3);
                shared_module_tree(shapes, copies / shapes, 8, seed)
            }
            _ => random_tree(&self.config(total_nodes), seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_trees_are_valid_and_reproducible() {
        let config = RandomTreeConfig::default();
        let a = random_tree(&config, 7);
        let b = random_tree(&config, 7);
        let c = random_tree(&config, 8);
        assert_eq!(a, b, "same seed gives the same tree");
        assert_ne!(a, c, "different seeds give different trees");
        assert!(a.validate().is_ok());
        assert_eq!(a.num_events(), config.num_events);
        assert!(a.num_gates() > 0);
    }

    #[test]
    fn all_events_are_reachable_from_the_top() {
        use fault_tree::StructuralAnalysis;
        for seed in 0..5 {
            let tree = random_tree(&RandomTreeConfig::default(), seed);
            assert!(StructuralAnalysis::new(&tree)
                .unreachable_events()
                .is_empty());
        }
    }

    #[test]
    fn total_node_target_is_approximately_met() {
        for target in [50usize, 200, 1000] {
            let config = RandomTreeConfig::with_total_nodes(target);
            let tree = random_tree(&config, 1);
            let total = tree.node_count();
            assert!(
                total as f64 > target as f64 * 0.6 && (total as f64) < target as f64 * 1.5,
                "target {target} produced {total} nodes"
            );
        }
    }

    #[test]
    fn single_event_config_is_handled() {
        let config = RandomTreeConfig {
            num_events: 1,
            ..RandomTreeConfig::default()
        };
        let tree = random_tree(&config, 0);
        assert_eq!(tree.num_events(), 1);
        assert_eq!(tree.num_gates(), 0);
    }

    #[test]
    fn alternating_tree_has_the_expected_shape() {
        let tree = alternating_and_or(4, 3);
        assert_eq!(tree.num_events(), 16);
        assert_eq!(tree.num_gates(), 15);
        assert_eq!(tree.depth(), 4);
        assert!(tree.validate().is_ok());
    }

    #[test]
    fn wide_gates_have_the_expected_cut_structure() {
        use fault_tree::CutSet;
        let or = wide_or(10, 1);
        let first = or.event_ids().next().unwrap();
        assert!(or.is_minimal_cut_set(&CutSet::from_iter([first])));

        let and = wide_and(10, 1);
        let all: CutSet = and.event_ids().collect();
        assert!(and.is_minimal_cut_set(&all));

        let vote = wide_voting(3, 6, 1);
        let three: CutSet = vote.event_ids().take(3).collect();
        let two: CutSet = vote.event_ids().take(2).collect();
        assert!(vote.is_minimal_cut_set(&three));
        assert!(!vote.is_cut_set(&two));
    }

    #[test]
    fn families_generate_valid_trees_with_distinct_structure() {
        for family in Family::all() {
            let tree = family.generate(300, 11);
            assert!(tree.validate().is_ok(), "{}", family.name());
            assert!(tree.num_events() > 50, "{}", family.name());
        }
        // The voting-heavy family actually contains voting gates.
        let voting = Family::VotingHeavy.generate(400, 5);
        use fault_tree::StructuralAnalysis;
        assert!(StructuralAnalysis::new(&voting).stats().num_vot > 0);
        // The shared family actually shares events.
        let shared = Family::SharedDag.generate(400, 5);
        assert!(StructuralAnalysis::new(&shared).stats().shared_events > 0);
    }

    #[test]
    #[should_panic]
    fn zero_events_are_rejected() {
        let config = RandomTreeConfig {
            num_events: 0,
            ..RandomTreeConfig::default()
        };
        let _ = random_tree(&config, 0);
    }
}

/// Generates a *modular* tree: `modules` independent subtrees (each a small
/// random tree over its own private events) combined under a top OR gate.
///
/// Modular trees are the best case for classical modular quantification and a
/// useful contrast workload for the MaxSAT approach, which does not depend on
/// modularity.
///
/// # Panics
///
/// Panics if `modules` is zero or `events_per_module` is zero.
pub fn modular_tree(modules: usize, events_per_module: usize, seed: u64) -> FaultTree {
    assert!(modules > 0, "at least one module is required");
    assert!(events_per_module > 0, "modules need at least one event");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder =
        FaultTreeBuilder::new(format!("modular-{modules}x{events_per_module}-seed{seed}"));
    let mut module_roots: Vec<NodeId> = Vec::with_capacity(modules);
    for m in 0..modules {
        // Each module is a two-level AND-of-ORs block over private events.
        let mut leaves: Vec<NodeId> = (0..events_per_module)
            .map(|i| {
                let p = rng.gen_range(0.001..=0.2);
                NodeId::from(
                    builder
                        .basic_event(format!("m{m}e{i}"), p)
                        .expect("generated probabilities are valid"),
                )
            })
            .collect();
        let mut ors: Vec<NodeId> = Vec::new();
        let mut or_index = 0usize;
        while leaves.len() > 1 {
            let take = 2.min(leaves.len());
            let inputs: Vec<NodeId> = leaves.split_off(leaves.len() - take);
            let gate = builder
                .or_gate(format!("m{m}or{or_index}"), inputs)
                .expect("valid gate");
            or_index += 1;
            ors.push(gate.into());
        }
        ors.extend(leaves);
        let root = if ors.len() == 1 {
            ors[0]
        } else {
            builder
                .and_gate(format!("m{m}root"), ors)
                .expect("valid gate")
                .into()
        };
        module_roots.push(root);
    }
    let top = if module_roots.len() == 1 {
        module_roots[0]
    } else {
        builder
            .or_gate("top", module_roots)
            .expect("valid gate")
            .into()
    };
    builder.build(top).expect("modular trees are valid")
}

/// Generates a tree dominated by *repeated isomorphic modules*: `shapes`
/// distinct module structures, each instantiated `multiplicity` times under a
/// top OR gate.
///
/// Every copy of a shape has private, freshly named events but the *same*
/// structure and the same event probabilities, so the copies are isomorphic
/// both structurally and weight-wise. This is the reuse-heavy workload for
/// the content-addressed analysis cache: within one tree, module-level
/// memoization solves each shape once and replays it `multiplicity - 1`
/// times; across trees of the same seed, whole-tree answers replay from the
/// shared cache.
///
/// Shapes alternate between AND-of-ORs and OR-of-ANDs blocks (by shape
/// parity) with independently seeded probabilities, so distinct shapes do
/// not collide with each other.
///
/// # Panics
///
/// Panics if `shapes`, `multiplicity`, or `events_per_module` is zero.
pub fn shared_module_tree(
    shapes: usize,
    multiplicity: usize,
    events_per_module: usize,
    seed: u64,
) -> FaultTree {
    assert!(shapes > 0, "at least one module shape is required");
    assert!(multiplicity > 0, "each shape needs at least one copy");
    assert!(events_per_module > 0, "modules need at least one event");
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-shape probabilities, sampled once and reused by every copy so the
    // copies agree weight-wise, not just structurally.
    let shape_probabilities: Vec<Vec<f64>> = (0..shapes)
        .map(|_| {
            (0..events_per_module)
                .map(|_| rng.gen_range(0.001..=0.2))
                .collect()
        })
        .collect();
    let mut builder = FaultTreeBuilder::new(format!(
        "shared-modules-{shapes}x{multiplicity}x{events_per_module}-seed{seed}"
    ));
    let mut copy_roots: Vec<NodeId> = Vec::with_capacity(shapes * multiplicity);
    for (s, probabilities) in shape_probabilities.iter().enumerate() {
        // Even shapes are AND-of-ORs, odd shapes OR-of-ANDs.
        let (inner, outer) = if s % 2 == 0 {
            (GateKind::Or, GateKind::And)
        } else {
            (GateKind::And, GateKind::Or)
        };
        for c in 0..multiplicity {
            let mut leaves: Vec<NodeId> = probabilities
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    NodeId::from(
                        builder
                            .basic_event(format!("s{s}c{c}e{i}"), p)
                            .expect("generated probabilities are valid"),
                    )
                })
                .collect();
            let mut inners: Vec<NodeId> = Vec::new();
            let mut inner_index = 0usize;
            while leaves.len() > 1 {
                let take = 2.min(leaves.len());
                let inputs: Vec<NodeId> = leaves.split_off(leaves.len() - take);
                let gate = builder
                    .gate(format!("s{s}c{c}g{inner_index}"), inner, inputs)
                    .expect("valid gate");
                inner_index += 1;
                inners.push(gate.into());
            }
            inners.extend(leaves);
            let root = if inners.len() == 1 {
                inners[0]
            } else {
                builder
                    .gate(format!("s{s}c{c}root"), outer, inners)
                    .expect("valid gate")
                    .into()
            };
            copy_roots.push(root);
        }
    }
    let top = if copy_roots.len() == 1 {
        copy_roots[0]
    } else {
        builder
            .or_gate("top", copy_roots)
            .expect("valid gate")
            .into()
    };
    builder.build(top).expect("shared-module trees are valid")
}

/// Generates a deep chain: a path of alternating AND/OR gates of the given
/// depth, each gate combining one fresh basic event with the previous gate.
///
/// Deep chains stress the Tseitin encoding depth and the BDD ordering
/// heuristics without growing the cut-set count.
///
/// # Panics
///
/// Panics if `depth` is zero.
pub fn deep_chain(depth: usize, seed: u64) -> FaultTree {
    assert!(depth > 0, "the chain needs at least one level");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = FaultTreeBuilder::new(format!("chain-{depth}-seed{seed}"));
    let first = builder
        .basic_event("leaf0", rng.gen_range(0.001..=0.2))
        .expect("valid probability");
    let mut current: NodeId = first.into();
    for level in 1..=depth {
        let event = builder
            .basic_event(format!("leaf{level}"), rng.gen_range(0.001..=0.2))
            .expect("valid probability");
        let gate = if level % 2 == 0 {
            builder
                .and_gate(format!("g{level}"), [current, event.into()])
                .expect("valid gate")
        } else {
            builder
                .or_gate(format!("g{level}"), [current, event.into()])
                .expect("valid gate")
        };
        current = gate.into();
    }
    builder.build(current).expect("chains are valid")
}

/// Replicates the paper's fire-protection-system tree `copies` times under a
/// top OR gate, renaming events `c<i>_x<j>`.
///
/// The result preserves the paper's local structure (so the global MPMCS is a
/// copy of `{x1, x2}`) while scaling the instance size linearly — a
/// reproducible, structure-true scalability workload.
///
/// # Panics
///
/// Panics if `copies` is zero.
pub fn replicated_fps(copies: usize) -> FaultTree {
    assert!(copies > 0, "at least one copy is required");
    let mut builder = FaultTreeBuilder::new(format!("replicated-fps-{copies}"));
    let probabilities = [0.2, 0.1, 0.001, 0.002, 0.05, 0.1, 0.05];
    let mut roots: Vec<NodeId> = Vec::with_capacity(copies);
    for c in 0..copies {
        let events: Vec<_> = probabilities
            .iter()
            .enumerate()
            .map(|(j, &p)| {
                builder
                    .basic_event(format!("c{c}_x{}", j + 1), p)
                    .expect("valid probability")
            })
            .collect();
        let detection = builder
            .and_gate(
                format!("c{c}_detection"),
                [events[0].into(), events[1].into()],
            )
            .expect("valid gate");
        let remote = builder
            .or_gate(format!("c{c}_remote"), [events[5].into(), events[6].into()])
            .expect("valid gate");
        let trigger = builder
            .and_gate(format!("c{c}_trigger"), [events[4].into(), remote.into()])
            .expect("valid gate");
        let suppression = builder
            .or_gate(
                format!("c{c}_suppression"),
                [events[2].into(), events[3].into(), trigger.into()],
            )
            .expect("valid gate");
        let root = builder
            .or_gate(format!("c{c}_fps"), [detection.into(), suppression.into()])
            .expect("valid gate");
        roots.push(root.into());
    }
    let top = if roots.len() == 1 {
        roots[0]
    } else {
        builder.or_gate("top", roots).expect("valid gate").into()
    };
    builder.build(top).expect("replicated FPS trees are valid")
}

/// The named workloads used by the extended benchmark harness, beyond the
/// random [`Family`] sweeps: one representative per structural idiom.
pub fn benchmark_suite(seed: u64) -> Vec<(String, FaultTree)> {
    vec![
        ("modular-20x10".to_string(), modular_tree(20, 10, seed)),
        ("modular-100x10".to_string(), modular_tree(100, 10, seed)),
        ("chain-200".to_string(), deep_chain(200, seed)),
        ("chain-1000".to_string(), deep_chain(1000, seed)),
        ("replicated-fps-50".to_string(), replicated_fps(50)),
        ("replicated-fps-500".to_string(), replicated_fps(500)),
    ]
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use fault_tree::CutSet;

    #[test]
    fn modular_trees_are_valid_and_have_private_events_per_module() {
        let tree = modular_tree(5, 4, 3);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.num_events(), 20);
        // Module event names are prefixed with their module index.
        for m in 0..5 {
            assert!(tree.event_by_name(&format!("m{m}e0")).is_some());
        }
        // Same seed reproduces the same tree.
        assert_eq!(modular_tree(5, 4, 3), modular_tree(5, 4, 3));
    }

    #[test]
    fn shared_module_trees_repeat_isomorphic_copies() {
        let shapes = 2usize;
        let multiplicity = 3usize;
        let events = 6usize;
        let tree = shared_module_tree(shapes, multiplicity, events, 17);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.num_events(), shapes * multiplicity * events);
        // Same seed reproduces the same tree; a different seed does not.
        assert_eq!(
            shared_module_tree(shapes, multiplicity, events, 17),
            shared_module_tree(shapes, multiplicity, events, 17)
        );
        assert_ne!(
            shared_module_tree(shapes, multiplicity, events, 17),
            shared_module_tree(shapes, multiplicity, events, 18)
        );
        // Every copy of a shape carries the same event probabilities, so the
        // copies are isomorphic weight-wise, not just structurally.
        for s in 0..shapes {
            let copy_probabilities = |c: usize| -> Vec<f64> {
                (0..events)
                    .map(|i| {
                        let event = tree
                            .event_by_name(&format!("s{s}c{c}e{i}"))
                            .expect("copy events exist");
                        tree.event(event).probability().value()
                    })
                    .collect()
            };
            let first = copy_probabilities(0);
            for c in 1..multiplicity {
                assert_eq!(first, copy_probabilities(c), "shape {s} copy {c}");
            }
        }
    }

    #[test]
    fn shared_modules_family_is_registered_and_generates() {
        assert_eq!(
            Family::by_name("shared-modules"),
            Some(Family::SharedModules)
        );
        let tree = Family::SharedModules.generate(300, 4);
        assert!(tree.validate().is_ok());
        assert!(tree.num_events() >= 100, "got {}", tree.num_events());
    }

    #[test]
    fn deep_chain_has_one_event_and_gate_per_level() {
        let tree = deep_chain(50, 9);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.num_events(), 51);
        assert_eq!(tree.num_gates(), 50);
        assert_eq!(tree.depth(), 50);
    }

    #[test]
    fn replicated_fps_preserves_the_paper_mpmcs_in_every_copy() {
        let tree = replicated_fps(3);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.num_events(), 21);
        for c in 0..3 {
            let x1 = tree.event_by_name(&format!("c{c}_x1")).unwrap();
            let x2 = tree.event_by_name(&format!("c{c}_x2")).unwrap();
            let cut = CutSet::from_iter([x1, x2]);
            assert!(tree.is_minimal_cut_set(&cut));
            assert!((cut.probability(&tree) - 0.02).abs() < 1e-12);
        }
    }

    #[test]
    fn benchmark_suite_provides_distinctly_named_valid_trees() {
        let suite = benchmark_suite(1);
        assert_eq!(suite.len(), 6);
        let mut names: Vec<&str> = suite.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
        for (name, tree) in &suite {
            assert!(tree.validate().is_ok(), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn replicated_fps_rejects_zero_copies() {
        let _ = replicated_fps(0);
    }
}
