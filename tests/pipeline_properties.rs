//! Property-style tests over the whole pipeline: randomly shaped fault trees
//! with random probabilities, checked against the exhaustive oracle and
//! against structural invariants.
//!
//! Originally written with `proptest`; rewritten as seeded-PRNG case loops so
//! the workspace builds offline with zero external dependencies. Each
//! property runs a fixed number of deterministic cases, and every assertion
//! carries its case seed so failures reproduce directly.

use fault_tree::{
    CutSet, EventId, FaultTree, FaultTreeBuilder, GateKind, NodeId, StructureFormula,
};
use ft_analysis::brute;
use mpmcs::{AlgorithmChoice, MpmcsOptions, MpmcsSolver};

/// Cases per property (the proptest suite ran 24).
const CASES: u64 = 24;

/// The tiny deterministic xorshift generator the original proptest strategy
/// used internally; now it drives the whole suite.
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    /// A value in `0..bound` (`0` when `bound` is 0 or 1).
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() as usize) % bound.max(1)
    }
}

/// Builds a small random fault tree (up to `max_events` basic events) by
/// composing random gates bottom-up — the proptest strategy, parameterised by
/// an explicit seed.
fn arbitrary_tree(max_events: usize, seed: u64) -> FaultTree {
    let mut rng = XorShift64::new(seed);
    let num_events = 2 + rng.below(max_events - 1);
    let mut builder = FaultTreeBuilder::new("property tree");
    let mut pool: Vec<NodeId> = (0..num_events)
        .map(|i| {
            let p = 0.01 + 0.9 * (rng.below(1000) as f64) / 1000.0;
            NodeId::from(
                builder
                    .basic_event(format!("e{i}"), p)
                    .expect("valid probability"),
            )
        })
        .collect();
    let mut gate_index = 0usize;
    while pool.len() > 1 {
        let arity = 2 + rng.below(3).min(pool.len() - 2);
        let mut inputs = Vec::new();
        for _ in 0..arity.min(pool.len()) {
            let pick = rng.below(pool.len());
            inputs.push(pool.swap_remove(pick));
        }
        let kind = match rng.below(4) {
            0 => GateKind::And,
            1 if inputs.len() >= 3 => GateKind::Vot {
                k: 2 + rng.below(inputs.len() - 2),
            },
            _ => GateKind::Or,
        };
        let gate = builder
            .gate(format!("g{gate_index}"), kind, inputs)
            .expect("valid gate");
        gate_index += 1;
        pool.push(gate.into());
    }
    builder.build(pool[0]).expect("valid tree")
}

/// The MaxSAT MPMCS always is a minimal cut set whose probability equals the
/// exhaustive optimum.
#[test]
fn mpmcs_is_optimal_and_minimal() {
    for case in 0..CASES {
        let seed = 0x5EED_0001 ^ (case << 8);
        let tree = arbitrary_tree(9, seed);
        let solver = MpmcsSolver::with_options(MpmcsOptions {
            algorithm: AlgorithmChoice::Oll,
            ..MpmcsOptions::new()
        });
        let solution = solver.solve(&tree).expect("monotone trees have cut sets");
        assert!(
            tree.is_minimal_cut_set(&solution.cut_set),
            "seed {seed}: MPMCS is not a minimal cut set"
        );
        let (_, expected) = brute::maximum_probability_mcs(&tree).expect("has cut sets");
        assert!(
            (solution.probability - expected).abs() <= 1e-9 * expected.max(1e-300),
            "seed {seed}: {} != optimum {expected}",
            solution.probability
        );
    }
}

/// The structure formula, the success tree and the dual formula are mutually
/// consistent on random assignments.
#[test]
fn formula_success_and_dual_are_consistent() {
    for case in 0..CASES {
        let seed = 0x5EED_0002 ^ (case << 8);
        let tree = arbitrary_tree(10, seed);
        let assignment_bits = XorShift64::new(seed ^ 0xA55A).next_u64() as u32;
        let formula = StructureFormula::of(&tree);
        let n = tree.num_events();
        let occurred: Vec<bool> = (0..n)
            .map(|i| assignment_bits & (1 << (i % 32)) != 0)
            .collect();
        let failure = tree.evaluate(&occurred);
        assert_eq!(formula.evaluate(&occurred), failure, "seed {seed}");
        assert_eq!(
            formula.success_expr().evaluate(&occurred),
            Some(!failure),
            "seed {seed}"
        );
        let complemented: Vec<bool> = occurred.iter().map(|b| !b).collect();
        assert_eq!(
            formula.dual_expr().evaluate(&complemented),
            Some(!failure),
            "seed {seed}"
        );
    }
}

/// Cut-set probability computed directly and through log-space agree (paper
/// Steps 3 and 6 are inverse transformations).
#[test]
fn log_space_round_trip_matches_direct_product() {
    for case in 0..CASES {
        let seed = 0x5EED_0003 ^ (case << 8);
        let tree = arbitrary_tree(10, seed);
        let picks = XorShift64::new(seed ^ 0x1CE).next_u64() as u16;
        let chosen: CutSet = tree
            .event_ids()
            .filter(|e| picks & (1 << (e.index() % 16)) != 0)
            .collect();
        let direct = chosen.probability(&tree);
        let via_log = chosen.probability_from_log(&tree).value();
        assert!(
            (direct - via_log).abs() <= 1e-9 * direct.max(1e-300),
            "seed {seed}: direct {direct} != via log {via_log}"
        );
    }
}

/// The greedy minimality repair always returns a minimal cut set that is a
/// subset of its input whenever the input is a cut set.
#[test]
fn minimise_yields_minimal_subsets() {
    let mut exercised = 0u32;
    for case in 0..CASES {
        let seed = 0x5EED_0004 ^ (case << 8);
        let tree = arbitrary_tree(9, seed);
        let all: CutSet = tree.event_ids().collect();
        if !tree.is_cut_set(&all) {
            // The proptest suite discarded these cases via prop_assume!.
            continue;
        }
        exercised += 1;
        let minimal = mpmcs::verify::minimise(&tree, &all);
        assert!(minimal.is_subset(&all), "seed {seed}");
        assert!(tree.is_minimal_cut_set(&minimal), "seed {seed}");
    }
    assert!(exercised > 0, "every generated tree was discarded");
}

/// Every minimal cut set reported by the exhaustive oracle is accepted by
/// the checking API, and removing any event breaks it.
#[test]
fn oracle_cut_sets_satisfy_the_checking_api() {
    for case in 0..CASES {
        let seed = 0x5EED_0005 ^ (case << 8);
        let tree = arbitrary_tree(8, seed);
        for cut in brute::all_minimal_cut_sets(&tree) {
            assert!(tree.is_cut_set(&cut), "seed {seed}");
            assert!(tree.is_minimal_cut_set(&cut), "seed {seed}");
            for event in cut.iter().collect::<Vec<EventId>>() {
                let mut reduced = cut.clone();
                reduced.remove(event);
                assert!(!tree.is_cut_set(&reduced), "seed {seed}");
            }
        }
    }
}
