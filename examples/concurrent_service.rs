//! Concurrent query serving through the thread-safe `AnalysisService`:
//! N worker threads hammer one service over the bundled example systems and
//! assert that every thread gets byte-identical answers — one shared parsed
//! tree per model, one warm incremental solver session per worker.
//!
//! ```text
//! cargo run --release --example concurrent_service
//! ```
//!
//! Run as a CI smoke step: the process exits non-zero if any thread's
//! answers diverge, so a concurrency regression in the facade turns the
//! build red.

use std::sync::Arc;

use fault_tree::examples;
use ft_session::{AnalysisService, Budget, ServiceConfig};

const WORKERS: usize = 8;
const TOP_K: usize = 4;

/// One worker's answers: per model, the top-k cut sets as (event indices,
/// probability bits) plus the exact top-event probability bits.
type WorkerAnswers = Vec<(String, Vec<(Vec<usize>, u64)>, u64)>;

fn main() {
    let service = Arc::new(AnalysisService::with_config(ServiceConfig {
        budget: Budget::wall_ms(30_000),
        ..ServiceConfig::default()
    }));
    service.register("fps", examples::fire_protection_system());
    service.register("tank", examples::pressure_tank_system());
    service.register("sensors", examples::redundant_sensor_network());
    service.register("scada", examples::water_treatment_scada());
    let names = service.names();
    println!(
        "serving {} models to {WORKERS} worker threads (top-{TOP_K} + probability each)",
        names.len()
    );

    let per_worker: Vec<WorkerAnswers> = std::thread::scope(|scope| {
        (0..WORKERS)
            .map(|_| {
                let service = Arc::clone(&service);
                let names = names.clone();
                scope.spawn(move || {
                    names
                        .iter()
                        .map(|name| {
                            // One analyzer per worker per model: the warm
                            // session answers both queries without re-solving.
                            let mut analyzer = service.analyzer(name).expect("registered model");
                            let top = analyzer.top_k(TOP_K).expect("bundled models solve");
                            assert!(!top.is_truncated(), "{name}: unexpected truncation");
                            let probability =
                                analyzer.probability().expect("bundled models quantify");
                            (
                                name.clone(),
                                top.solutions
                                    .iter()
                                    .map(|s| {
                                        (
                                            s.cut_set.iter().map(|e| e.index()).collect(),
                                            s.probability.to_bits(),
                                        )
                                    })
                                    .collect(),
                                probability.to_bits(),
                            )
                        })
                        .collect()
                })
            })
            .map(|handle| handle.join().expect("workers do not panic"))
            .collect()
    });

    for (worker, answers) in per_worker.iter().enumerate() {
        assert_eq!(
            answers, &per_worker[0],
            "worker {worker} diverged from worker 0 — the service must be deterministic"
        );
    }

    for (name, cut_sets, probability_bits) in &per_worker[0] {
        let tree = service.tree(name).expect("registered model");
        println!(
            "  {name} ({} events): top-{} cut sets, MPMCS p={:.6e}, P(top)={:.6e} — identical on all {WORKERS} threads",
            tree.num_events(),
            cut_sets.len(),
            f64::from_bits(cut_sets[0].1),
            f64::from_bits(*probability_bits),
        );
    }
    println!("all {WORKERS} threads agreed on every model");
}
