//! The dual optimisation: maximum-reliability minimal path sets via MaxSAT.
//!
//! The paper's MPMCS asks for the most probable minimal way the system
//! *fails*. The same machinery, pointed at the success tree (paper Step 1),
//! answers the dual question: which inclusion-minimal set of components, if
//! they all keep working, most probably keeps the system up. That set is the
//! minimal *path set* with the maximum reliability `Π (1 − pᵢ)`, and it is
//! obtained by running the unchanged Steps 2–6 on the success tree — whose
//! minimal cut sets are exactly the original tree's minimal path sets and
//! whose event probabilities are the component reliabilities.

use fault_tree::transform::success_tree;
use fault_tree::{CutSet, FaultTree};

use crate::error::MpmcsError;
use crate::solver::{MpmcsSolution, MpmcsSolver};
use crate::EnumerationLimit;

/// A minimal path set together with its reliability and solver metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct PathSetSolution {
    /// The events of the minimal path set (all of them must *not* occur).
    pub path_set: CutSet,
    /// Probability that none of the path-set events occurs, `Π (1 − pᵢ)`.
    pub reliability: f64,
    /// Total logarithmic weight `Σ −ln (1 − pᵢ)` of the path set.
    pub log_weight: f64,
    /// Name of the algorithm (or winning portfolio entry) that produced it.
    pub algorithm: String,
}

impl PathSetSolution {
    /// The names of the events in the path set, in identifier order.
    pub fn event_names(&self, tree: &FaultTree) -> Vec<String> {
        self.path_set
            .iter()
            .map(|e| tree.event(e).name().to_string())
            .collect()
    }

    fn from_dual(solution: MpmcsSolution) -> Self {
        PathSetSolution {
            path_set: solution.cut_set,
            reliability: solution.probability,
            log_weight: solution.log_weight,
            algorithm: solution.algorithm,
        }
    }
}

impl MpmcsSolver {
    /// Computes the maximum-reliability minimal path set of `tree` by solving
    /// the MPMCS problem on its success tree.
    ///
    /// The returned event identifiers refer to `tree` (the success tree keeps
    /// the original event indices).
    ///
    /// # Errors
    ///
    /// Returns [`MpmcsError::NoCutSet`] when the tree has no path set — that
    /// is, the top event occurs regardless of the basic events, which cannot
    /// happen for trees built from AND/OR/VOT gates over at least one event —
    /// and propagates internal verification errors.
    pub fn solve_max_reliability_path_set(
        &self,
        tree: &FaultTree,
    ) -> Result<PathSetSolution, MpmcsError> {
        let dual = success_tree(tree);
        Ok(PathSetSolution::from_dual(self.solve(&dual)?))
    }

    /// Enumerates minimal path sets in non-increasing reliability order, up
    /// to the given limit.
    ///
    /// # Errors
    ///
    /// Returns [`MpmcsError::NoCutSet`] when the tree has no path set, and
    /// propagates internal verification errors.
    pub fn enumerate_path_sets(
        &self,
        tree: &FaultTree,
        limit: EnumerationLimit,
    ) -> Result<Vec<PathSetSolution>, MpmcsError> {
        let dual = success_tree(tree);
        Ok(self
            .enumerate(&dual, limit)?
            .into_iter()
            .map(PathSetSolution::from_dual)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::examples::{fire_protection_system, redundant_sensor_network};

    #[test]
    fn fps_maximum_reliability_path_set_matches_the_hand_computation() {
        let tree = fire_protection_system();
        let solution = MpmcsSolver::sequential()
            .solve_max_reliability_path_set(&tree)
            .expect("the FPS tree has path sets");
        // Keeping x2, x3, x4 and x5 working blocks every cut set; its
        // reliability 0.9·0.999·0.998·0.95 beats the alternative with x1
        // (0.8·…) and the ones that keep x6 and x7 instead of x5.
        assert_eq!(solution.event_names(&tree), vec!["x2", "x3", "x4", "x5"]);
        let expected = 0.9 * 0.999 * 0.998 * 0.95;
        assert!((solution.reliability - expected).abs() < 1e-9);
    }

    #[test]
    fn path_set_blocks_every_minimal_cut_set() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        let path = solver
            .solve_max_reliability_path_set(&tree)
            .expect("solvable");
        let cuts = solver
            .enumerate(&tree, EnumerationLimit::All)
            .expect("solvable");
        for cut in cuts {
            assert!(
                cut.cut_set.iter().any(|e| path.path_set.contains(e)),
                "path set must intersect {}",
                cut.cut_set.display_names(&tree)
            );
        }
    }

    #[test]
    fn enumeration_returns_all_four_fps_path_sets_in_order() {
        let tree = fire_protection_system();
        let all = MpmcsSolver::sequential()
            .enumerate_path_sets(&tree, EnumerationLimit::All)
            .expect("solvable");
        assert_eq!(all.len(), 4);
        for pair in all.windows(2) {
            assert!(pair[0].reliability >= pair[1].reliability - 1e-15);
        }
        let mut names: Vec<Vec<String>> = all.iter().map(|s| s.event_names(&tree)).collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                vec!["x1", "x3", "x4", "x5"],
                vec!["x1", "x3", "x4", "x6", "x7"],
                vec!["x2", "x3", "x4", "x5"],
                vec!["x2", "x3", "x4", "x6", "x7"],
            ]
            .into_iter()
            .map(|v: Vec<&str>| v.into_iter().map(String::from).collect::<Vec<String>>())
            .collect::<Vec<_>>()
        );
    }

    #[test]
    fn voting_gate_path_sets_keep_a_sensor_quorum() {
        let tree = redundant_sensor_network();
        let solution = MpmcsSolver::sequential()
            .solve_max_reliability_path_set(&tree)
            .expect("solvable");
        // Keeping two sensors plus the bus and the power supply is required;
        // the best choice keeps the two most reliable sensors (s1, s2).
        assert_eq!(solution.path_set.len(), 4);
        let names = solution.event_names(&tree);
        assert!(names.contains(&"field bus fails".to_string()));
        assert!(names.contains(&"power supply fails".to_string()));
        assert!(names.contains(&"sensor 1 fails".to_string()));
        assert!(names.contains(&"sensor 2 fails".to_string()));
        let expected = 0.95 * 0.92 * 0.99 * 0.998;
        assert!((solution.reliability - expected).abs() < 1e-9);
    }
}
