//! Fleet analysis with the parallel batch engine.
//!
//! ```sh
//! cargo run --release --example batch_analysis
//! ```
//!
//! Runs two batches end to end: the curated model files shipped under
//! `examples/trees/` (with per-tree importance tables), then a synthetic
//! fleet of seeded random trees (pure MPMCS throughput). The same workflow is
//! available from the command line:
//!
//! ```sh
//! mpmcs4fta --batch examples/ --jobs 4 --top-k 3
//! ```

use std::path::Path;

use ft_batch::{run_batch, BatchConfig, BatchManifest, TreeSource};
use ft_generators::Family;

fn main() {
    // Batch 1: every model file under examples/trees (recursively, sorted),
    // top-3 cut sets per tree plus the importance table. The importance
    // computation re-evaluates the exact top-event probability per event, so
    // it is reserved for curated, moderate-size models like these.
    let trees_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees");
    let curated = BatchManifest::from_dir(&trees_dir).expect("examples/trees is readable");
    println!("curated batch: {} model files", curated.len());
    for job in &curated.jobs {
        let kind = match &job.source {
            TreeSource::File { .. } => "file",
            TreeSource::Generated { .. } => "generated",
        };
        println!("  [{kind}] {}", job.name);
    }
    let report = run_batch(
        &curated,
        &BatchConfig {
            top_k: 3,
            importance: true,
            ..BatchConfig::default()
        },
    );
    println!("\n{}", report.render_text());

    assert_eq!(report.summary.failed, 0, "all example trees must analyse");
    // The fire-protection model reproduces the paper's headline result.
    let fps = report
        .results
        .iter()
        .find(|r| r.name.contains("fire_protection"))
        .expect("the FPS model ships with the repository");
    let best = fps.cut_sets.first().expect("the FPS tree has cut sets");
    assert!((best.probability - 0.02).abs() < 1e-9);

    // The aggregated JSON report carries per-tree cut sets, importance tables
    // and solver statistics; per-tree entries follow manifest order, so the
    // report is deterministic for any worker count.
    let json = report.to_json();
    println!(
        "aggregated JSON report: {} bytes (fire-protection entry shown)\n",
        json.len()
    );
    let entry =
        serde_json::to_string_pretty(&serde_json::to_value(fps)).expect("tree reports serialise");
    println!("{entry}\n");

    // Batch 2: a synthetic fleet — eight seeded ~120-node random trees,
    // MPMCS only, fanned out over all available cores.
    let fleet = BatchManifest::generated(Family::RandomMixed, 120, 8, 2020);
    let report = run_batch(&fleet, &BatchConfig::default());
    println!("synthetic fleet:\n{}", report.render_text());
    assert_eq!(report.summary.succeeded, 8);
}
