//! Probabilities and their logarithmic weights (paper Steps 3 and 6).

use std::fmt;

use crate::error::FaultTreeError;

/// A probability value, validated to lie in `[0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Probability(f64);

// Serialised through `f64`, re-validated on the way back in — the
// `#[serde(try_from = "f64", into = "f64")]` pattern, written out by hand.
impl serde::Serialize for Probability {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.0)
    }
}

impl serde::Deserialize for Probability {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let raw: f64 = serde::Deserialize::from_value(value)?;
        Probability::try_from(raw).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

impl Probability {
    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`FaultTreeError::InvalidProbability`] when `value` is not
    /// finite or lies outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, FaultTreeError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Probability(value))
        } else {
            Err(FaultTreeError::InvalidProbability { value })
        }
    }

    /// The certain event.
    pub const ONE: Probability = Probability(1.0);
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);

    /// The raw value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// The negative natural logarithm `w = -ln(p)` used as a MaxSAT weight
    /// (paper Step 3). `p = 0` maps to `+∞`.
    pub fn log_weight(self) -> LogWeight {
        LogWeight(-self.0.ln())
    }

    /// The complement `1 - p`.
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = FaultTreeError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Probability::new(value)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.value()
    }
}

/// A non-negative logarithmic weight `w = -ln(p)`.
///
/// Lower probabilities map to larger weights, so *minimising* a sum of
/// weights maximises the product of the corresponding probabilities — the key
/// observation behind the paper's MaxSAT encoding.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct LogWeight(f64);

serde::impl_serde_newtype!(LogWeight);

impl LogWeight {
    /// Creates a weight directly from its value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or NaN.
    pub fn new(value: f64) -> Self {
        assert!(
            !value.is_nan() && value >= 0.0,
            "log weights are non-negative"
        );
        LogWeight(value)
    }

    /// The raw weight value (possibly `+∞` for probability zero).
    pub fn value(self) -> f64 {
        self.0
    }

    /// The reverse transformation `p = exp(-w)` (paper Step 6).
    pub fn to_probability(self) -> Probability {
        Probability((-self.0).exp().clamp(0.0, 1.0))
    }
}

impl std::ops::Add for LogWeight {
    type Output = LogWeight;

    fn add(self, rhs: LogWeight) -> LogWeight {
        LogWeight(self.0 + rhs.0)
    }
}

impl std::iter::Sum for LogWeight {
    fn sum<I: Iterator<Item = LogWeight>>(iter: I) -> LogWeight {
        LogWeight(iter.map(|w| w.0).sum())
    }
}

impl fmt::Display for LogWeight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_probabilities_are_accepted() {
        for p in [0.0, 0.001, 0.5, 1.0] {
            assert_eq!(Probability::new(p).unwrap().value(), p);
        }
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        for p in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(Probability::new(p).is_err(), "{p} should be rejected");
        }
    }

    // The expected weights are the paper's printed 5-decimal values; 2.30259
    // happens to round ln(10), which clippy's approx_constant flags.
    #[allow(clippy::approx_constant)]
    #[test]
    fn log_weights_match_the_paper_table_1() {
        // Table I of the paper: p(x1)=0.2 → 1.60944, p(x3)=0.001 → 6.90776.
        let cases = [
            (0.2, 1.60944),
            (0.1, 2.30259),
            (0.001, 6.90776),
            (0.002, 6.21461),
            (0.05, 2.99573),
        ];
        for (p, expected) in cases {
            let w = Probability::new(p).unwrap().log_weight().value();
            assert!(
                (w - expected).abs() < 1e-4,
                "-ln({p}) = {w}, expected {expected}"
            );
        }
    }

    #[test]
    fn reverse_transformation_round_trips() {
        for p in [0.001, 0.02, 0.3, 0.9999, 1.0] {
            let prob = Probability::new(p).unwrap();
            let back = prob.log_weight().to_probability().value();
            assert!((back - p).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_probability_has_infinite_weight() {
        let w = Probability::ZERO.log_weight();
        assert!(w.value().is_infinite());
        assert_eq!(w.to_probability().value(), 0.0);
    }

    #[test]
    fn weights_add_and_sum_as_products_of_probabilities() {
        let a = Probability::new(0.2).unwrap();
        let b = Probability::new(0.1).unwrap();
        let sum = a.log_weight() + b.log_weight();
        assert!((sum.to_probability().value() - 0.02).abs() < 1e-12);
        let total: LogWeight = [a, b].iter().map(|p| p.log_weight()).sum();
        assert!((total.to_probability().value() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn complement_is_one_minus_p() {
        let p = Probability::new(0.25).unwrap();
        assert!((p.complement().value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let p: Probability = serde_json::from_str("0.25").unwrap();
        assert_eq!(p.value(), 0.25);
        assert!(serde_json::from_str::<Probability>("1.5").is_err());
        assert_eq!(serde_json::to_string(&p).unwrap(), "0.25");
    }

    #[test]
    #[should_panic]
    fn negative_log_weight_is_rejected() {
        let _ = LogWeight::new(-1.0);
    }
}
