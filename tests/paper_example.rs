//! End-to-end integration test on the paper's worked example: the
//! cyber-physical fire protection system of Fig. 1, Table I and Fig. 2.

use bdd_engine::{compile_fault_tree, McsEnumeration, VariableOrdering};
use fault_tree::examples::fire_protection_system;
use fault_tree::parser::{galileo, json};
use fault_tree::CutSet;
use ft_analysis::{brute, mocus::Mocus, quant};
use mpmcs::{AlgorithmChoice, EnumerationLimit, MpmcsOptions, MpmcsReport, MpmcsSolver};

/// Table I of the paper: probabilities and `-log` weights.
// The expected weights are the paper's printed 5-decimal values; 2.30259
// happens to round ln(10), which clippy's approx_constant flags.
#[allow(clippy::approx_constant)]
#[test]
fn table_one_weights_are_reproduced() {
    let tree = fire_protection_system();
    let encoding = MpmcsSolver::new().encode(&tree);
    let expected = [
        ("x1", 0.2, 1.60944),
        ("x2", 0.1, 2.30259),
        ("x3", 0.001, 6.90776),
        ("x4", 0.002, 6.21461),
        ("x5", 0.05, 2.99573),
        ("x6", 0.1, 2.30259),
        ("x7", 0.05, 2.99573),
    ];
    for (name, probability, weight) in expected {
        let id = tree.event_by_name(name).expect("event exists");
        assert_eq!(tree.event(id).probability().value(), probability);
        assert!((encoding.log_weights()[id.index()] - weight).abs() < 1e-4);
    }
}

/// Fig. 2 of the paper: the MPMCS is {x1, x2} with joint probability 0.02,
/// and every solving strategy agrees.
#[test]
fn mpmcs_is_x1_x2_for_every_algorithm() {
    let tree = fire_protection_system();
    for algorithm in [
        AlgorithmChoice::Portfolio,
        AlgorithmChoice::SequentialPortfolio,
        AlgorithmChoice::Oll,
        AlgorithmChoice::LinearSu,
    ] {
        let solver = MpmcsSolver::with_options(MpmcsOptions {
            algorithm,
            ..MpmcsOptions::new()
        });
        let solution = solver.solve(&tree).expect("solvable");
        assert_eq!(solution.event_names(&tree), vec!["x1", "x2"]);
        assert!((solution.probability - 0.02).abs() < 1e-9);
    }
}

/// The MaxSAT pipeline, the BDD baseline, MOCUS and brute force all agree on
/// the complete set of minimal cut sets and on the MPMCS.
#[test]
fn all_engines_agree_on_the_example() {
    let tree = fire_protection_system();

    let maxsat: Vec<CutSet> = MpmcsSolver::sequential()
        .enumerate(&tree, EnumerationLimit::All)
        .expect("solvable")
        .into_iter()
        .map(|s| s.cut_set)
        .collect();
    let bdd = McsEnumeration::new(&tree)
        .minimal_cut_sets()
        .expect("small tree");
    let mocus = Mocus::new(&tree).minimal_cut_sets().expect("small tree");
    let brute_force = brute::all_minimal_cut_sets(&tree);

    let normalise = |mut sets: Vec<CutSet>| {
        sets.sort();
        sets
    };
    let reference = normalise(brute_force);
    assert_eq!(normalise(maxsat), reference);
    assert_eq!(normalise(bdd), reference);
    assert_eq!(normalise(mocus), reference);
    assert_eq!(reference.len(), 5);

    let (bdd_best, bdd_probability) = McsEnumeration::new(&tree)
        .maximum_probability_mcs(&tree)
        .expect("has cuts");
    let (brute_best, brute_probability) = brute::maximum_probability_mcs(&tree).expect("has cuts");
    assert_eq!(bdd_best, brute_best);
    assert!((bdd_probability - brute_probability).abs() < 1e-15);
    assert!((bdd_probability - 0.02).abs() < 1e-12);
}

/// The exact top-event probability (BDD) matches brute force and is bracketed
/// by the classical MCS-based approximations.
#[test]
fn quantification_is_consistent_on_the_example() {
    let tree = fire_protection_system();
    let exact = brute::exact_top_event_probability(&tree);
    let bdd = compile_fault_tree(&tree, VariableOrdering::DepthFirst).top_event_probability(&tree);
    assert!((exact - bdd).abs() < 1e-12);

    let cut_sets = Mocus::new(&tree).minimal_cut_sets().expect("small tree");
    let rare = quant::rare_event_approximation(&tree, &cut_sets);
    let mcub = quant::min_cut_upper_bound(&tree, &cut_sets);
    let inclusion_exclusion =
        quant::inclusion_exclusion(&tree, &cut_sets, 32).expect("few cut sets");
    assert!((inclusion_exclusion - exact).abs() < 1e-12);
    assert!(exact <= mcub + 1e-15);
    assert!(mcub <= rare + 1e-15);
}

/// The example survives a round trip through both exchange formats and still
/// produces the same MPMCS.
#[test]
fn parsers_round_trip_the_example_and_preserve_the_answer() {
    let tree = fire_protection_system();
    let solver = MpmcsSolver::sequential();
    let reference = solver.solve(&tree).expect("solvable");

    let from_galileo = galileo::parse_galileo(&galileo::to_galileo_string(&tree)).expect("valid");
    let from_json = json::from_json_str(&json::to_json_string(&tree)).expect("valid");
    for parsed in [from_galileo, from_json] {
        let solution = solver.solve(&parsed).expect("solvable");
        assert!((solution.probability - reference.probability).abs() < 1e-12);
        let names: Vec<String> = solution.event_names(&parsed);
        assert_eq!(names, vec!["x1", "x2"]);
    }
}

/// The JSON report (Fig. 2 content) carries the MPMCS and tool metadata.
#[test]
fn report_matches_the_fig2_content() {
    let tree = fire_protection_system();
    let solution = MpmcsSolver::new().solve(&tree).expect("solvable");
    let report = MpmcsReport::new(&tree, &solution);
    let value: serde_json::Value = serde_json::from_str(&report.to_json()).expect("valid JSON");
    assert_eq!(value["tree"], "fire protection system");
    assert_eq!(value["num_events"], 7);
    assert_eq!(value["mpmcs"].as_array().unwrap().len(), 2);
    assert!((value["probability"].as_f64().unwrap() - 0.02).abs() < 1e-9);
}
