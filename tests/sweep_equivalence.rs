//! Mission-time sweep equivalence: the incremental `probability_sweep` is a
//! pure amortisation, never a different computation. For every bundled and
//! generated model — with failure models attached so the curves actually
//! move — each sweep point must be **bit-identical** to the corresponding
//! point `top_event_probability` query against the tree re-quantified at
//! that time, across all backends × preprocessing on/off; and all backends
//! must agree within 1e-9 at every point. The session facade's
//! `Analyzer::sweep` (warm MaxSAT session and delegated engines alike) and
//! `Analyzer::importance_sweep` are held to the same standard against their
//! point queries.

use std::fs;
use std::path::{Path, PathBuf};

use fault_tree::parser::{galileo, json};
use fault_tree::{FailureModel, FaultTree, Probability};
use ft_backend::{backend_for, BackendConfig, BackendKind};
use ft_session::Analyzer;

const BACKENDS: [BackendKind; 3] = [BackendKind::MaxSat, BackendKind::Bdd, BackendKind::Mocus];

/// A short mission-time grid spanning both sides of the default mission
/// time (where the base probabilities live).
const GRID: [f64; 5] = [0.0, 0.25, 1.0, 1.75, 3.0];

fn bundled_trees() -> Vec<(String, FaultTree)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("examples/trees/ ships with the repository")
        .map(|entry| entry.expect("readable directory entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "examples/trees/ must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).expect("readable model file");
            let tree = if path.extension().and_then(|e| e.to_str()) == Some("json") {
                json::from_json_str(&text).expect("valid JSON model")
            } else {
                galileo::parse_galileo(&text).expect("valid Galileo model")
            };
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                tree,
            )
        })
        .collect()
}

/// Attaches a failure model to every event, cycling through the three laws,
/// with rates derived from the event's stored probability so the base
/// probability (the law at the default mission time, or the steady-state
/// asymptote for the repairable ramp) stays in the same regime the model was
/// authored for.
fn with_models(tree: &FaultTree) -> FaultTree {
    let mut events = tree.events().to_vec();
    for (index, event) in events.iter_mut().enumerate() {
        let p = event.probability().value().clamp(1e-6, 1.0 - 1e-6);
        let lambda = -(1.0 - p).ln();
        let model = match index % 3 {
            0 => FailureModel::exponential(lambda).expect("finite rate"),
            1 => {
                // Steady-state unavailability λ/(λ+μ) = p.
                let mu = lambda * (1.0 - p) / p;
                FailureModel::repairable(lambda, mu).expect("finite rates")
            }
            _ => FailureModel::Fixed(Probability::new(p).expect("in range")),
        };
        event.set_model(Some(model));
    }
    FaultTree::from_parts(tree.name(), events, tree.gates().to_vec(), tree.top())
        .expect("re-attaching models preserves validity")
}

fn test_corpus() -> Vec<(String, FaultTree)> {
    let mut corpus: Vec<(String, FaultTree)> = bundled_trees()
        .into_iter()
        .map(|(name, tree)| (name, with_models(&tree)))
        .collect();
    corpus.push((
        "generated/modular".into(),
        with_models(&ft_generators::modular_tree(3, 4, 9)),
    ));
    corpus.push((
        "generated/wide_or".into(),
        with_models(&ft_generators::wide_or(10, 3)),
    ));
    corpus.push((
        "generated/alternating".into(),
        with_models(&ft_generators::alternating_and_or(3, 7)),
    ));
    corpus
}

/// Every sweep point equals the point query bit for bit, for every backend ×
/// preprocessing combination, and the engines agree within 1e-9 per point.
#[test]
fn sweep_points_are_bit_identical_to_point_queries_across_all_backends() {
    for (name, tree) in test_corpus() {
        let mut curves: Vec<Vec<f64>> = Vec::new();
        for kind in BACKENDS {
            for preprocess in [false, true] {
                let config = BackendConfig {
                    preprocess,
                    ..BackendConfig::default()
                };
                let (_, backend) = backend_for(kind, &tree, &config);
                let sweep = match backend.probability_sweep(&tree, &GRID) {
                    Ok(curve) => curve,
                    Err(error) => {
                        // A backend that refuses the sweep must refuse the
                        // point queries for the same reason — never silently
                        // diverge.
                        assert!(
                            GRID.iter()
                                .any(|&t| backend.top_event_probability(&tree.at_time(t)).is_err()),
                            "{name}/{kind}/pre={preprocess}: sweep refused ({error}) but every point query succeeds"
                        );
                        continue;
                    }
                };
                assert_eq!(sweep.len(), GRID.len(), "{name}/{kind}/pre={preprocess}");
                for (i, &t) in GRID.iter().enumerate() {
                    let point = backend
                        .top_event_probability(&tree.at_time(t))
                        .unwrap_or_else(|e| {
                            panic!(
                                "{name}/{kind}/pre={preprocess}: point query at t={t} failed: {e}"
                            )
                        });
                    assert_eq!(
                        sweep[i].to_bits(),
                        point.to_bits(),
                        "{name}/{kind}/pre={preprocess}: sweep[{i}] (t={t}) = {} but the point query says {point}",
                        sweep[i]
                    );
                }
                curves.push(sweep);
            }
        }
        for curve in &curves[1..] {
            for (i, (a, b)) in curve.iter().zip(&curves[0]).enumerate() {
                assert!(
                    (a - b).abs() < 1e-9,
                    "{name}: engines disagree at grid[{i}]: {a} vs {b}"
                );
            }
        }
    }
}

/// The facade's `sweep` — the warm incremental MaxSAT session and the
/// delegated engines alike — answers bit-identically to its own point
/// `probability()` queries at each grid time.
#[test]
fn facade_sweeps_match_facade_point_queries_bit_for_bit() {
    for (name, tree) in test_corpus() {
        for kind in BACKENDS {
            let mut analyzer = Analyzer::for_tree(tree.clone()).backend(kind);
            let report = analyzer
                .sweep(&GRID)
                .unwrap_or_else(|e| panic!("{name}/{kind}: facade sweep failed: {e}"));
            assert_eq!(report.grid, GRID.to_vec(), "{name}/{kind}");
            for (t, swept) in report.points() {
                let point = Analyzer::for_tree(tree.at_time(t))
                    .backend(kind)
                    .probability()
                    .unwrap_or_else(|e| panic!("{name}/{kind}: point query at t={t} failed: {e}"));
                assert_eq!(
                    swept.to_bits(),
                    point.to_bits(),
                    "{name}/{kind}: facade sweep diverged at t={t}: {swept} vs {point}"
                );
            }
        }
    }
}

/// The facade's `importance_sweep` reproduces the point `importance()` query
/// bit for bit at every grid time (the amortised family enumeration and the
/// requantified BDD oracle change nothing).
#[test]
fn importance_sweeps_match_point_importance_bit_for_bit() {
    let tree = with_models(&fault_tree::examples::fire_protection_system());
    let mut analyzer = Analyzer::for_tree(tree.clone());
    let reports = analyzer.importance_sweep(&GRID).expect("solvable");
    assert_eq!(reports.len(), GRID.len());
    for (&t, swept) in GRID.iter().zip(&reports) {
        let point = Analyzer::for_tree(tree.at_time(t))
            .importance()
            .expect("solvable");
        assert_eq!(swept.rows.len(), point.rows.len());
        for (s, p) in swept.rows.iter().zip(&point.rows) {
            assert_eq!(s.event, p.event, "t={t}");
            for (label, a, b) in [
                ("birnbaum", s.birnbaum, p.birnbaum),
                ("fussell_vesely", s.fussell_vesely, p.fussell_vesely),
                ("raw", s.raw, p.raw),
                ("rrw", s.rrw, p.rrw),
                ("criticality", s.criticality, p.criticality),
                ("structural", s.structural, p.structural),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "t={t}, event {}: {label} diverged: {a} vs {b}",
                    s.event
                );
            }
        }
    }
}
