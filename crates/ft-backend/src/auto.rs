//! The `auto` backend-selection heuristic.
//!
//! The choice is driven by cheap structural features only — no compilation,
//! no solving — so selection cost is negligible against any actual query.
//! The rules encode the paper's empirical picture: the classical engines win
//! on trees whose cut-set family (MOCUS) or diagram (BDD) stays small, while
//! the MaxSAT pipeline is the only one whose cost does not grow with the
//! number of cut sets.

use std::collections::HashMap;

use fault_tree::{FaultTree, GateKind, NodeId};
use ft_analysis::modules::modules;

use crate::BackendKind;

/// Above this structural cut-set estimate, MOCUS expansion is not attempted.
const MOCUS_MAX_MCS_ESTIMATE: u64 = 4_096;
/// MOCUS is only auto-picked for trees up to this many basic events.
const MOCUS_MAX_EVENTS: usize = 200;
/// The BDD engine is auto-picked up to this estimated diagram width.
const BDD_MAX_WIDTH_ESTIMATE: u64 = 1 << 22;

/// Cheap structural features of a fault tree, used by [`choose_backend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StructuralFeatures {
    /// Number of basic events.
    pub num_events: usize,
    /// Number of gates.
    pub num_gates: usize,
    /// Longest event-to-top path length.
    pub depth: usize,
    /// Number of gates that are independent modules.
    pub num_modules: usize,
    /// Basic events referenced by more than one gate — the sharing that
    /// breaks tree-ness and drives BDD growth.
    pub shared_events: usize,
    /// Structural estimate of the number of minimal cut sets (exact for
    /// proper trees without shared events; an over-count under sharing;
    /// saturating).
    pub mcs_estimate: u64,
}

impl StructuralFeatures {
    /// Computes the features of `tree` in one bottom-up pass.
    pub fn of(tree: &FaultTree) -> Self {
        let mut parent_count = vec![0usize; tree.num_events()];
        for id in tree.gate_ids() {
            for &input in tree.gate(id).inputs() {
                if let NodeId::Event(e) = input {
                    parent_count[e.index()] += 1;
                }
            }
        }
        StructuralFeatures {
            num_events: tree.num_events(),
            num_gates: tree.num_gates(),
            depth: tree.depth(),
            num_modules: modules(tree).len(),
            shared_events: parent_count.iter().filter(|&&c| c > 1).count(),
            mcs_estimate: mcs_estimate(tree),
        }
    }

    /// A coarse upper-bound proxy for the width of the compiled BDD: the
    /// event count inflated exponentially by the shared events that a
    /// variable ordering cannot untangle (capped to avoid overflow).
    pub fn bdd_width_estimate(&self) -> u64 {
        let exponent = self.shared_events.min(32) as u32;
        (self.num_events.max(1) as u64).saturating_mul(1u64 << exponent)
    }
}

/// Bottom-up structural estimate of the number of minimal cut sets: events
/// count 1, AND multiplies, OR adds, and a `k/n` gate contributes the
/// degree-`k` elementary symmetric polynomial of its inputs' counts. Exact
/// on proper trees; an over-count when events are shared (absorption is
/// ignored), which is the safe direction for budget decisions.
fn mcs_estimate(tree: &FaultTree) -> u64 {
    fn count(tree: &FaultTree, node: NodeId, memo: &mut HashMap<NodeId, u64>) -> u64 {
        if let Some(&c) = memo.get(&node) {
            return c;
        }
        let result = match node {
            NodeId::Event(_) => 1,
            NodeId::Gate(g) => {
                let gate = tree.gate(g);
                let children: Vec<u64> = gate
                    .inputs()
                    .iter()
                    .map(|&input| count(tree, input, memo))
                    .collect();
                match gate.kind() {
                    GateKind::And => children.iter().fold(1u64, |acc, &c| acc.saturating_mul(c)),
                    GateKind::Or => children.iter().fold(0u64, |acc, &c| acc.saturating_add(c)),
                    GateKind::Vot { k } => elementary_symmetric(&children, k),
                }
            }
        };
        memo.insert(node, result);
        result
    }
    count(tree, tree.top(), &mut HashMap::new())
}

/// The degree-`k` elementary symmetric polynomial `e_k` of `values`
/// (saturating): the number of ways to pick a `k`-subset of inputs and one
/// cut set from each.
fn elementary_symmetric(values: &[u64], k: usize) -> u64 {
    if k > values.len() {
        return 0;
    }
    let mut dp = vec![0u64; k + 1];
    dp[0] = 1;
    for &value in values {
        for j in (1..=k).rev() {
            dp[j] = dp[j].saturating_add(dp[j - 1].saturating_mul(value));
        }
    }
    dp[k]
}

/// The BDD engine is only auto-picked while the structural cut-set estimate
/// stays enumerable: its cut-set queries walk every true-path of the
/// diagram, and the path count tracks the cut-set family, not the diagram
/// width.
const BDD_MAX_MCS_ESTIMATE: u64 = 100_000;

/// Picks a concrete backend for `tree` from its structural features.
///
/// * few expected cut sets on a small tree → [`BackendKind::Mocus`] (direct
///   expansion is cheapest and needs no encoding at all);
/// * moderate size, little event sharing and an enumerable cut-set estimate
///   → [`BackendKind::Bdd`] (exact probabilities for free, enumeration
///   linear in paths);
/// * everything else → [`BackendKind::MaxSat`] (the only engine whose cost
///   does not scale with the number of cut sets — the paper's thesis).
pub fn choose_backend(tree: &FaultTree) -> BackendKind {
    let features = StructuralFeatures::of(tree);
    if features.mcs_estimate <= MOCUS_MAX_MCS_ESTIMATE && features.num_events <= MOCUS_MAX_EVENTS {
        BackendKind::Mocus
    } else if features.bdd_width_estimate() <= BDD_MAX_WIDTH_ESTIMATE
        && features.mcs_estimate <= BDD_MAX_MCS_ESTIMATE
    {
        BackendKind::Bdd
    } else {
        BackendKind::MaxSat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::examples::{fire_protection_system, railway_level_crossing};
    use ft_generators::{wide_or, Family};

    #[test]
    fn features_of_the_paper_example() {
        let tree = fire_protection_system();
        let features = StructuralFeatures::of(&tree);
        assert_eq!(features.num_events, 7);
        assert_eq!(features.num_gates, 5);
        assert_eq!(features.shared_events, 0, "the FPS is a proper tree");
        // Structural estimate: {x1,x2}, {x3}, {x4}, {x5,x6}, {x5,x7} = 5
        // (exact on proper trees).
        assert_eq!(features.mcs_estimate, 5);
        assert_eq!(features.num_modules, tree.num_gates());
    }

    #[test]
    fn elementary_symmetric_counts_voting_combinations() {
        assert_eq!(elementary_symmetric(&[1, 1, 1], 2), 3);
        assert_eq!(elementary_symmetric(&[2, 3, 4], 1), 9);
        assert_eq!(elementary_symmetric(&[2, 3, 4], 3), 24);
        assert_eq!(elementary_symmetric(&[2, 3], 3), 0);
    }

    #[test]
    fn small_trees_choose_classical_engines() {
        assert_eq!(
            choose_backend(&fire_protection_system()),
            BackendKind::Mocus
        );
        assert_eq!(
            choose_backend(&railway_level_crossing()),
            BackendKind::Mocus
        );
    }

    #[test]
    fn wide_or_trees_outgrow_mocus_but_not_the_bdd() {
        // 5000 events: far past the MOCUS event cap, but a pure OR has no
        // shared events, so the BDD stays linear.
        let tree = wide_or(5000, 7);
        assert_eq!(choose_backend(&tree), BackendKind::Bdd);
    }

    #[test]
    fn exploding_cut_set_families_fall_back_to_maxsat() {
        // A ~200-node random tree: few shared events (the width proxy would
        // admit a BDD), but the structural cut-set estimate is far past
        // anything path enumeration can walk — only MaxSAT scales there.
        let tree =
            ft_generators::random_tree(&ft_generators::RandomTreeConfig::with_total_nodes(200), 9);
        let features = StructuralFeatures::of(&tree);
        assert!(features.mcs_estimate > super::BDD_MAX_MCS_ESTIMATE);
        assert_eq!(choose_backend(&tree), BackendKind::MaxSat);
    }

    #[test]
    fn heavily_shared_dags_fall_back_to_maxsat() {
        let tree = Family::SharedDag.generate(600, 11);
        let features = StructuralFeatures::of(&tree);
        assert!(features.shared_events > 0);
        if features.bdd_width_estimate() > super::BDD_MAX_WIDTH_ESTIMATE {
            assert_eq!(choose_backend(&tree), BackendKind::MaxSat);
        }
    }
}
