//! Classical fault tree analysis algorithms.
//!
//! This crate collects the non-MaxSAT baselines and companions used by the
//! MPMCS4FTA-rs workspace:
//!
//! * [`mocus`] — the classic MOCUS top-down minimal cut set algorithm,
//! * [`brute`] — exhaustive enumeration, used as a ground-truth oracle in
//!   tests and for tiny trees,
//! * [`quant`] — MCS-based top-event probability bounds (rare-event
//!   approximation, min-cut upper bound, inclusion–exclusion),
//! * [`importance`] — Birnbaum, Fussell–Vesely, RAW, RRW, criticality and
//!   structural importance measures,
//! * [`pathset`] — minimal path sets (the dual of cut sets) and the
//!   maximum-reliability minimal path set,
//! * [`modules`] — independent-module detection and modular quantification,
//! * [`montecarlo`] — sampling-based top-event estimation and uncertainty
//!   propagation on the event probabilities,
//! * [`sensitivity`] — tornado (what-if) analysis and MPMCS stability
//!   margins,
//! * [`ccf`] — beta-factor common-cause failure modelling.
//!
//! # Example
//!
//! ```rust
//! use fault_tree::examples::fire_protection_system;
//! use ft_analysis::mocus::Mocus;
//!
//! let tree = fire_protection_system();
//! let cut_sets = Mocus::new(&tree).minimal_cut_sets().unwrap();
//! assert_eq!(cut_sets.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod brute;
pub mod ccf;
pub mod importance;
pub mod mocus;
pub mod modules;
pub mod montecarlo;
pub mod pathset;
pub mod quant;
pub mod sensitivity;
