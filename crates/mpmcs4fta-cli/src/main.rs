//! The `mpmcs4fta` command line entry point.

use std::process::ExitCode;

use mpmcs4fta_cli::{parse_args, run, CliError, CliMode, USAGE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(args) {
        Ok(options) => options,
        Err(error) => {
            eprintln!("{error}");
            return ExitCode::from(2);
        }
    };
    if options.mode == CliMode::Help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&options) {
        Ok((json, summary)) => {
            if !options.quiet {
                eprint!("{summary}");
            }
            match &options.output {
                Some(path) => {
                    if let Err(error) = std::fs::write(path, json) {
                        eprintln!("cannot write {}: {error}", path.display());
                        return ExitCode::FAILURE;
                    }
                    if !options.quiet {
                        eprintln!("report written to {}", path.display());
                    }
                }
                None => println!("{json}"),
            }
            ExitCode::SUCCESS
        }
        Err(error @ CliError::Usage(_)) => {
            eprintln!("{error}");
            ExitCode::from(2)
        }
        Err(error) => {
            eprintln!("{error}");
            ExitCode::FAILURE
        }
    }
}
