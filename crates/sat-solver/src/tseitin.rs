//! Tseitin transformation: polynomial-time, equisatisfiable CNF conversion
//! (paper Step 2).
//!
//! Every internal node of a [`BoolExpr`] is given a fresh definition variable
//! that is constrained to be *equivalent* to the node, so the encoding is
//! correct regardless of the polarity under which the node is used. Shared
//! sub-expressions (same `Arc`) are encoded only once, which keeps fault-tree
//! DAGs with repeated events polynomial in size.
//!
//! Voting (`at least k of n`) nodes are expanded with a shared recursive
//! decomposition `atleast(k, [x1..xn]) = atleast(k, rest) ∨ (x1 ∧ atleast(k-1, rest))`
//! memoised on `(offset, k)`, which yields `O(n·k)` auxiliary nodes.

use std::collections::HashMap;
use std::sync::Arc;

use crate::cnf::CnfFormula;
use crate::expr::BoolExpr;
use crate::lit::Lit;

/// Incremental Tseitin encoder.
///
/// # Example
///
/// ```rust
/// use sat_solver::{tseitin::TseitinEncoder, BoolExpr, Solver, Var};
///
/// let x0 = BoolExpr::var(Var::from_index(0));
/// let x1 = BoolExpr::var(Var::from_index(1));
/// let formula = BoolExpr::and(vec![x0, x1]);
///
/// let mut encoder = TseitinEncoder::with_reserved_vars(2);
/// encoder.assert_true(&formula);
///
/// let mut solver = Solver::from_cnf(encoder.cnf());
/// let result = solver.solve();
/// let model = result.model().expect("x0 ∧ x1 is satisfiable");
/// assert!(model.value(Var::from_index(0)) && model.value(Var::from_index(1)));
/// ```
#[derive(Debug, Default)]
pub struct TseitinEncoder {
    cnf: CnfFormula,
    cache: HashMap<*const BoolExpr, Lit>,
    /// Keeps encoded expressions alive so cache keys (their addresses) stay valid.
    retained: Vec<Arc<BoolExpr>>,
    const_true: Option<Lit>,
    reserved_vars: usize,
}

impl TseitinEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        TseitinEncoder::default()
    }

    /// Creates an encoder whose CNF already declares variables `0..n`.
    ///
    /// Input variables of the expression (e.g. fault-tree basic events) keep
    /// their indices; auxiliary definition variables are allocated above `n`.
    pub fn with_reserved_vars(n: usize) -> Self {
        TseitinEncoder {
            cnf: CnfFormula::with_vars(n),
            cache: HashMap::new(),
            retained: Vec::new(),
            const_true: None,
            reserved_vars: n,
        }
    }

    /// The CNF accumulated so far.
    pub fn cnf(&self) -> &CnfFormula {
        &self.cnf
    }

    /// Consumes the encoder and returns the CNF.
    pub fn into_cnf(self) -> CnfFormula {
        self.cnf
    }

    /// Number of auxiliary (definition) variables introduced so far.
    pub fn num_aux_vars(&self) -> usize {
        self.cnf.num_vars().saturating_sub(self.reserved_vars)
    }

    fn true_lit(&mut self) -> Lit {
        if let Some(lit) = self.const_true {
            return lit;
        }
        let v = self.cnf.new_var();
        let lit = Lit::positive(v);
        self.cnf.add_clause([lit]);
        self.const_true = Some(lit);
        lit
    }

    /// Encodes `expr` and returns a literal equivalent to it.
    pub fn encode(&mut self, expr: &Arc<BoolExpr>) -> Lit {
        let key = Arc::as_ptr(expr);
        if let Some(&lit) = self.cache.get(&key) {
            return lit;
        }
        let lit = match &**expr {
            BoolExpr::True => self.true_lit(),
            BoolExpr::False => !self.true_lit(),
            BoolExpr::Var(v) => {
                self.cnf.ensure_vars(v.index() + 1);
                Lit::positive(*v)
            }
            BoolExpr::Not(inner) => !self.encode(inner),
            BoolExpr::And(children) => {
                let child_lits: Vec<Lit> = children.iter().map(|c| self.encode(c)).collect();
                self.define_and(&child_lits)
            }
            BoolExpr::Or(children) => {
                let child_lits: Vec<Lit> = children.iter().map(|c| self.encode(c)).collect();
                self.define_or(&child_lits)
            }
            BoolExpr::AtLeast(k, children) => {
                let child_lits: Vec<Lit> = children.iter().map(|c| self.encode(c)).collect();
                self.define_at_least(*k, &child_lits)
            }
        };
        self.cache.insert(key, lit);
        self.retained.push(expr.clone());
        lit
    }

    /// Encodes `expr` and adds a unit clause asserting it, making the CNF
    /// equisatisfiable with `expr` (over the original variables).
    pub fn assert_true(&mut self, expr: &Arc<BoolExpr>) -> Lit {
        let lit = self.encode(expr);
        self.cnf.add_clause([lit]);
        lit
    }

    /// Introduces `g ↔ (l1 ∧ … ∧ ln)` and returns `g`.
    fn define_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.true_lit(),
            1 => lits[0],
            _ => {
                let g = Lit::positive(self.cnf.new_var());
                for &l in lits {
                    self.cnf.add_clause([!g, l]);
                }
                let mut long: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                long.push(g);
                self.cnf.add_clause(long);
                g
            }
        }
    }

    /// Introduces `g ↔ (l1 ∨ … ∨ ln)` and returns `g`.
    fn define_or(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => !self.true_lit(),
            1 => lits[0],
            _ => {
                let g = Lit::positive(self.cnf.new_var());
                for &l in lits {
                    self.cnf.add_clause([g, !l]);
                }
                let mut long: Vec<Lit> = lits.to_vec();
                long.push(!g);
                self.cnf.add_clause(long);
                g
            }
        }
    }

    /// Encodes `at least k of lits` via a memoised recursive decomposition and
    /// returns the defining literal.
    fn define_at_least(&mut self, k: usize, lits: &[Lit]) -> Lit {
        let mut memo: HashMap<(usize, usize), Lit> = HashMap::new();
        self.at_least_from(k, 0, lits, &mut memo)
    }

    fn at_least_from(
        &mut self,
        k: usize,
        offset: usize,
        lits: &[Lit],
        memo: &mut HashMap<(usize, usize), Lit>,
    ) -> Lit {
        if k == 0 {
            return self.true_lit();
        }
        let remaining = lits.len() - offset;
        if k > remaining {
            return !self.true_lit();
        }
        if k == remaining {
            return self.define_and(&lits[offset..]);
        }
        if k == 1 {
            return self.define_or(&lits[offset..]);
        }
        if let Some(&lit) = memo.get(&(offset, k)) {
            return lit;
        }
        // atleast(k, lits[offset..]) =
        //   (lits[offset] ∧ atleast(k-1, lits[offset+1..])) ∨ atleast(k, lits[offset+1..])
        let take = {
            let rest = self.at_least_from(k - 1, offset + 1, lits, memo);
            self.define_and(&[lits[offset], rest])
        };
        let skip = self.at_least_from(k, offset + 1, lits, memo);
        let result = self.define_or(&[take, skip]);
        memo.insert((offset, k), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;
    use crate::solver::{SolveResult, Solver};

    fn v(i: usize) -> Arc<BoolExpr> {
        BoolExpr::var(Var::from_index(i))
    }

    /// Exhaustively checks equisatisfiability restricted to the original
    /// variables: for every assignment of the inputs, the expression is true
    /// iff the CNF (with the root asserted) is satisfiable under that
    /// assignment of the inputs.
    fn check_equisat(expr: &Arc<BoolExpr>, num_inputs: usize) {
        let mut encoder = TseitinEncoder::with_reserved_vars(num_inputs);
        encoder.assert_true(expr);
        let cnf = encoder.into_cnf();
        for mask in 0..(1u32 << num_inputs) {
            let assignment: Vec<bool> = (0..num_inputs).map(|i| mask & (1 << i) != 0).collect();
            let expected = expr.evaluate(&assignment).expect("total assignment");
            let mut solver = Solver::from_cnf(&cnf);
            let assumptions: Vec<Lit> = (0..num_inputs)
                .map(|i| Lit::new(Var::from_index(i), !assignment[i]))
                .collect();
            let got = solver.solve_with_assumptions(&assumptions).is_sat();
            assert_eq!(
                got, expected,
                "assignment {assignment:?} disagrees for {expr:?}"
            );
        }
    }

    #[test]
    fn and_gate_is_encoded_correctly() {
        check_equisat(&BoolExpr::and(vec![v(0), v(1), v(2)]), 3);
    }

    #[test]
    fn or_gate_is_encoded_correctly() {
        check_equisat(&BoolExpr::or(vec![v(0), v(1), v(2)]), 3);
    }

    #[test]
    fn nested_formula_is_encoded_correctly() {
        // The fire-protection example structure from the paper (Fig. 1).
        let expr = BoolExpr::or(vec![
            BoolExpr::and(vec![v(0), v(1)]),
            BoolExpr::or(vec![
                v(2),
                v(3),
                BoolExpr::and(vec![v(4), BoolExpr::or(vec![v(5), v(6)])]),
            ]),
        ]);
        check_equisat(&expr, 7);
    }

    #[test]
    fn negations_are_encoded_correctly() {
        // Success-tree style formula: ¬((x0 ∧ x1) ∨ x2)
        let expr = BoolExpr::not(BoolExpr::or(vec![BoolExpr::and(vec![v(0), v(1)]), v(2)]));
        check_equisat(&expr, 3);
    }

    #[test]
    fn at_least_k_is_encoded_correctly() {
        for k in 0..=4 {
            let expr = BoolExpr::at_least(k, vec![v(0), v(1), v(2), v(3)]);
            check_equisat(&expr, 4);
        }
    }

    #[test]
    fn at_least_two_of_five_is_encoded_correctly() {
        let expr = BoolExpr::at_least(2, vec![v(0), v(1), v(2), v(3), v(4)]);
        check_equisat(&expr, 5);
    }

    #[test]
    fn constants_are_handled() {
        let t: Arc<BoolExpr> = Arc::new(BoolExpr::True);
        let mut encoder = TseitinEncoder::new();
        encoder.assert_true(&t);
        let mut solver = Solver::from_cnf(encoder.cnf());
        assert!(solver.solve().is_sat());

        let f: Arc<BoolExpr> = Arc::new(BoolExpr::False);
        let mut encoder = TseitinEncoder::new();
        encoder.assert_true(&f);
        let mut solver = Solver::from_cnf(encoder.cnf());
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }

    #[test]
    fn shared_subexpressions_are_encoded_once() {
        let shared = BoolExpr::and(vec![v(0), v(1)]);
        let expr = BoolExpr::or(vec![shared.clone(), BoolExpr::and(vec![shared, v(2)])]);
        let mut encoder = TseitinEncoder::with_reserved_vars(3);
        encoder.assert_true(&expr);
        // One aux var for the shared AND, one for the other AND, one for the OR.
        assert_eq!(encoder.num_aux_vars(), 3);
    }

    #[test]
    fn encoding_is_polynomial_for_wide_voting_gates() {
        let children: Vec<Arc<BoolExpr>> = (0..40).map(v).collect();
        let expr = BoolExpr::at_least(20, children);
        let mut encoder = TseitinEncoder::with_reserved_vars(40);
        encoder.assert_true(&expr);
        // A naive expansion would be C(40, 20) ≈ 1.4e11 clauses; the memoised
        // decomposition stays small.
        assert!(encoder.cnf().num_clauses() < 20_000);
    }
}
