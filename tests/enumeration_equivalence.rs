//! Regression suite for the incremental enumeration refactor: driving the
//! top-k / all-MCS enumeration through one persistent solver session must
//! produce **byte-identical** JSON reports — modulo wall-clock timings and
//! solver-effort statistics — to the historical from-scratch pipeline, on
//! every bundled model file under `examples/trees/`.

use std::fs;
use std::path::{Path, PathBuf};

use fault_tree::parser::{galileo, json};
use fault_tree::FaultTree;
use mpmcs::{AlgorithmChoice, EnumerationLimit, MpmcsOptions, MpmcsReport, MpmcsSolver};

fn bundled_trees() -> Vec<(String, FaultTree)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/trees");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("examples/trees/ ships with the repository")
        .map(|entry| entry.expect("readable directory entry").path())
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "examples/trees/ must not be empty");
    paths
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path).expect("readable model file");
            let tree = if path.extension().and_then(|e| e.to_str()) == Some("json") {
                json::from_json_str(&text).expect("valid JSON model")
            } else {
                galileo::parse_galileo(&text).expect("valid Galileo model")
            };
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                tree,
            )
        })
        .collect()
}

fn solver(incremental: bool) -> MpmcsSolver {
    // The OLL algorithm choice gives both paths the same algorithm tag; the
    // incremental session is OLL-backed, and the from-scratch path runs the
    // plain OLL solver per cut set.
    MpmcsSolver::with_options(MpmcsOptions {
        algorithm: AlgorithmChoice::Oll,
        incremental,
        ..MpmcsOptions::new()
    })
}

/// Serialises the reports and normalises the fields that legitimately differ
/// between the two paths: wall-clock timings (`*_ms`) and solver-effort
/// statistics (`sat_calls`, `solver_stats`). Everything else — tree summary,
/// cut sets, probabilities, log weights, algorithm, order — must match byte
/// for byte.
fn normalized_json(reports: &[MpmcsReport]) -> String {
    fn zero_sat_calls(value: &serde::Value) -> serde::Value {
        match value {
            serde::Value::Object(map) => serde::Value::Object(
                map.iter()
                    .map(|(key, entry)| {
                        let entry = if key == "sat_calls" {
                            serde::Value::Number(serde::Number::from_i128(0))
                        } else {
                            zero_sat_calls(entry)
                        };
                        (key.to_string(), entry)
                    })
                    .collect(),
            ),
            serde::Value::Array(elements) => {
                serde::Value::Array(elements.iter().map(zero_sat_calls).collect())
            }
            other => other.clone(),
        }
    }
    let value = serde_json::to_value(&reports.to_vec());
    let value = ft_batch::redact_timings(&ft_batch::redact_solver_stats(&value));
    serde_json::to_string_pretty(&zero_sat_calls(&value)).expect("reports always serialise")
}

fn reports_for(tree: &FaultTree, solutions: &[mpmcs::MpmcsSolution]) -> Vec<MpmcsReport> {
    solutions
        .iter()
        .map(|solution| MpmcsReport::with_stats(tree, solution))
        .collect()
}

#[test]
fn incremental_enumeration_reports_match_from_scratch_on_all_bundled_trees() {
    for (name, tree) in bundled_trees() {
        let incremental = solver(true)
            .enumerate(&tree, EnumerationLimit::All)
            .unwrap_or_else(|e| panic!("{name}: incremental enumeration failed: {e}"));
        let scratch = solver(false)
            .enumerate(&tree, EnumerationLimit::All)
            .unwrap_or_else(|e| panic!("{name}: from-scratch enumeration failed: {e}"));
        assert!(!incremental.is_empty(), "{name}: no cut sets reported");
        assert_eq!(
            normalized_json(&reports_for(&tree, &incremental)),
            normalized_json(&reports_for(&tree, &scratch)),
            "{name}: full enumeration reports diverged"
        );
    }
}

#[test]
fn incremental_top_k_reports_match_from_scratch_on_all_bundled_trees() {
    for (name, tree) in bundled_trees() {
        for k in [1, 3] {
            let incremental = solver(true)
                .solve_top_k(&tree, k)
                .unwrap_or_else(|e| panic!("{name}: incremental top-{k} failed: {e}"));
            let scratch = solver(false)
                .solve_top_k(&tree, k)
                .unwrap_or_else(|e| panic!("{name}: from-scratch top-{k} failed: {e}"));
            assert_eq!(
                normalized_json(&reports_for(&tree, &incremental)),
                normalized_json(&reports_for(&tree, &scratch)),
                "{name}: top-{k} reports diverged"
            );
        }
    }
}

/// The per-stage statistics of the incremental path must prove the session
/// is shared: the cumulative session counter grows strictly across stages,
/// while the from-scratch baseline restarts it for every cut set.
#[test]
fn session_counters_distinguish_incremental_from_scratch() {
    let (_, tree) = bundled_trees().remove(0);
    let incremental = solver(true)
        .enumerate(&tree, EnumerationLimit::All)
        .expect("solvable");
    // The canonical tie ordering may permute solutions within equal-cost
    // groups, so compare the counters as a set: they must all be distinct
    // snapshots of one strictly growing session counter.
    let mut session_calls: Vec<u64> = incremental.iter().map(|s| s.stats.session_calls).collect();
    session_calls.sort_unstable();
    for pair in session_calls.windows(2) {
        assert!(
            pair[0] < pair[1],
            "one shared session implies distinct snapshots"
        );
    }
    let scratch = solver(false)
        .enumerate(&tree, EnumerationLimit::All)
        .expect("solvable");
    for solution in &scratch {
        assert_eq!(solution.stats.session_calls, solution.stats.sat_calls);
    }
}
