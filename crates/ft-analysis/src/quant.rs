//! MCS-based quantification of the top-event probability.
//!
//! Given the minimal cut sets `K₁ … Kₘ` of a fault tree, the top event is the
//! union of the cut-set events, and its probability can be bounded or
//! approximated without building a BDD:
//!
//! * **rare-event approximation**: `Σ P(Kⱼ)` (an upper bound, tight when all
//!   probabilities are small),
//! * **min-cut upper bound (MCUB)**: `1 − Π (1 − P(Kⱼ))`,
//! * **inclusion–exclusion**: exact, but exponential in the number of cut
//!   sets; limited here to a configurable number of cut sets.

use fault_tree::{CutSet, FaultTree};

/// Rare-event approximation: the sum of the cut-set probabilities.
///
/// An upper bound on the exact top-event probability; accurate when all cut
/// set probabilities are small.
pub fn rare_event_approximation(tree: &FaultTree, cut_sets: &[CutSet]) -> f64 {
    cut_sets.iter().map(|c| c.probability(tree)).sum()
}

/// Min-cut upper bound: `1 − Π (1 − P(Kⱼ))`.
///
/// Also an upper bound, always at most the rare-event approximation, and
/// exact when no event appears in two cut sets.
pub fn min_cut_upper_bound(tree: &FaultTree, cut_sets: &[CutSet]) -> f64 {
    1.0 - cut_sets
        .iter()
        .map(|c| 1.0 - c.probability(tree))
        .product::<f64>()
}

/// Exact top-event probability by inclusion–exclusion over the cut sets.
///
/// The number of terms is `2^m − 1` for `m` cut sets; `None` is returned when
/// `m > max_cut_sets` to avoid accidental blow-ups.
pub fn inclusion_exclusion(
    tree: &FaultTree,
    cut_sets: &[CutSet],
    max_cut_sets: usize,
) -> Option<f64> {
    let m = cut_sets.len();
    if m > max_cut_sets || m >= 63 {
        return None;
    }
    let mut total = 0.0;
    for mask in 1u64..(1u64 << m) {
        let mut union = CutSet::new();
        for (j, cut) in cut_sets.iter().enumerate() {
            if mask & (1 << j) != 0 {
                union.extend(cut.iter());
            }
        }
        let term = union.probability(tree);
        if mask.count_ones() % 2 == 1 {
            total += term;
        } else {
            total -= term;
        }
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::mocus::Mocus;
    use fault_tree::examples::{fire_protection_system, pressure_tank_system};

    #[test]
    fn inclusion_exclusion_is_exact_on_the_fps() {
        let tree = fire_protection_system();
        let cut_sets = Mocus::new(&tree).minimal_cut_sets().unwrap();
        let exact = brute::exact_top_event_probability(&tree);
        let ie = inclusion_exclusion(&tree, &cut_sets, 32).expect("few cut sets");
        assert!((ie - exact).abs() < 1e-12, "IE {ie} vs exact {exact}");
    }

    #[test]
    fn bounds_are_ordered_correctly() {
        for tree in [fire_protection_system(), pressure_tank_system()] {
            let cut_sets = Mocus::new(&tree).minimal_cut_sets().unwrap();
            let exact = brute::exact_top_event_probability(&tree);
            let rare = rare_event_approximation(&tree, &cut_sets);
            let mcub = min_cut_upper_bound(&tree, &cut_sets);
            assert!(exact <= mcub + 1e-12, "{}", tree.name());
            assert!(mcub <= rare + 1e-12, "{}", tree.name());
            // The approximations are still close for these small probabilities.
            assert!((rare - exact) / exact < 0.1, "{}", tree.name());
        }
    }

    #[test]
    fn inclusion_exclusion_respects_the_limit() {
        let tree = fire_protection_system();
        let cut_sets = Mocus::new(&tree).minimal_cut_sets().unwrap();
        assert!(inclusion_exclusion(&tree, &cut_sets, 2).is_none());
    }

    #[test]
    fn empty_cut_set_list_means_zero_probability() {
        let tree = fire_protection_system();
        assert_eq!(rare_event_approximation(&tree, &[]), 0.0);
        assert_eq!(min_cut_upper_bound(&tree, &[]), 0.0);
        assert_eq!(inclusion_exclusion(&tree, &[], 10), Some(0.0));
    }
}
