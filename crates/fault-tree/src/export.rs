//! Rendering fault trees for human consumption.
//!
//! The original MPMCS4FTA tool emits a JSON file that a web page renders as a
//! picture of the fault tree with the MPMCS highlighted (the paper's Fig. 2).
//! This module provides the equivalent offline artefacts:
//!
//! * [`to_dot`] / [`to_dot_with_highlight`] — Graphviz DOT output, optionally
//!   highlighting a cut set (render with `dot -Tsvg`),
//! * [`to_ascii`] — an indented textual rendering suitable for terminals and
//!   log files.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::cutset::CutSet;
use crate::event::EventId;
use crate::gate::GateKind;
use crate::tree::{FaultTree, NodeId};

/// Renders the tree as a Graphviz DOT digraph.
///
/// Gates are drawn as boxes labelled with their kind (`AND`, `OR`, `k/n`),
/// basic events as ellipses labelled with their name and probability. Edges
/// point from a gate to its inputs, mirroring the usual top-down drawing of
/// fault trees.
pub fn to_dot(tree: &FaultTree) -> String {
    to_dot_with_highlight(tree, None)
}

/// Renders the tree as DOT, filling the events of `highlight` (typically the
/// MPMCS) in red — the textual equivalent of the paper's Fig. 2.
pub fn to_dot_with_highlight(tree: &FaultTree, highlight: Option<&CutSet>) -> String {
    let highlighted: HashSet<EventId> = highlight
        .map(|cut| cut.iter().collect())
        .unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(tree.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    for id in tree.gate_ids() {
        let gate = tree.gate(id);
        let label = match gate.kind() {
            GateKind::And => "AND".to_string(),
            GateKind::Or => "OR".to_string(),
            GateKind::Vot { k } => format!("{k}/{}", gate.inputs().len()),
        };
        let shape = if NodeId::Gate(id) == tree.top() {
            "doubleoctagon"
        } else {
            "box"
        };
        let _ = writeln!(
            out,
            "  g{} [shape={shape}, label=\"{}\\n{}\"];",
            id.index(),
            escape(gate.name()),
            label
        );
    }
    for id in tree.event_ids() {
        let event = tree.event(id);
        let fill = if highlighted.contains(&id) {
            ", style=filled, fillcolor=\"#e74c3c\", fontcolor=white"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  e{} [shape=ellipse, label=\"{}\\np={}\"{}];",
            id.index(),
            escape(event.name()),
            event.probability().value(),
            fill
        );
    }
    for id in tree.gate_ids() {
        for &input in tree.gate(id).inputs() {
            let target = match input {
                NodeId::Event(e) => format!("e{}", e.index()),
                NodeId::Gate(g) => format!("g{}", g.index()),
            };
            let _ = writeln!(out, "  g{} -> {};", id.index(), target);
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the tree as an indented ASCII outline rooted at the top event.
///
/// Shared subtrees (the tree is a DAG) are expanded at every occurrence but
/// marked with `(shared)` after the first expansion, so the output stays
/// readable for moderately sized trees.
pub fn to_ascii(tree: &FaultTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", tree.name());
    let mut seen: HashSet<NodeId> = HashSet::new();
    render_ascii(tree, tree.top(), 0, &mut seen, &mut out);
    out
}

fn render_ascii(
    tree: &FaultTree,
    node: NodeId,
    depth: usize,
    seen: &mut HashSet<NodeId>,
    out: &mut String,
) {
    let indent = "  ".repeat(depth + 1);
    match node {
        NodeId::Event(e) => {
            let event = tree.event(e);
            let _ = writeln!(
                out,
                "{indent}[{}] p={}",
                event.name(),
                event.probability().value()
            );
        }
        NodeId::Gate(g) => {
            let gate = tree.gate(g);
            let kind = match gate.kind() {
                GateKind::And => "AND".to_string(),
                GateKind::Or => "OR".to_string(),
                GateKind::Vot { k } => format!("{k}/{} VOTE", gate.inputs().len()),
            };
            let shared = if !seen.insert(node) { " (shared)" } else { "" };
            let _ = writeln!(out, "{indent}{} <{kind}>{shared}", gate.name());
            for &input in gate.inputs() {
                render_ascii(tree, input, depth + 1, seen, out);
            }
        }
    }
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{fire_protection_system, redundant_sensor_network};

    #[test]
    fn dot_output_mentions_every_node() {
        let tree = fire_protection_system();
        let dot = to_dot(&tree);
        assert!(dot.starts_with("digraph"));
        for event in tree.events() {
            assert!(dot.contains(event.name()), "missing {}", event.name());
        }
        for gate in tree.gates() {
            assert!(dot.contains(gate.name()), "missing {}", gate.name());
        }
        // One edge per gate input.
        let edges = dot.matches(" -> ").count();
        let expected: usize = tree.gates().iter().map(|g| g.inputs().len()).sum();
        assert_eq!(edges, expected);
    }

    #[test]
    fn highlighted_events_are_filled_red() {
        let tree = fire_protection_system();
        let cut = CutSet::from_iter([
            tree.event_by_name("x1").unwrap(),
            tree.event_by_name("x2").unwrap(),
        ]);
        let dot = to_dot_with_highlight(&tree, Some(&cut));
        assert_eq!(dot.matches("#e74c3c").count(), 2);
        let plain = to_dot(&tree);
        assert_eq!(plain.matches("#e74c3c").count(), 0);
    }

    #[test]
    fn voting_gates_show_their_threshold() {
        let tree = redundant_sensor_network();
        let dot = to_dot(&tree);
        assert!(dot.contains("2/3"));
        let ascii = to_ascii(&tree);
        assert!(ascii.contains("2/3 VOTE"));
    }

    #[test]
    fn ascii_output_indents_children_under_their_gate() {
        let tree = fire_protection_system();
        let ascii = to_ascii(&tree);
        assert!(ascii.contains("fire protection system fails"));
        // x1 is two levels below the top gate.
        let x1_line = ascii
            .lines()
            .find(|line| line.contains("[x1]"))
            .expect("x1 is rendered");
        assert!(x1_line.starts_with("      "));
    }

    #[test]
    fn quotes_and_backslashes_are_escaped_in_dot() {
        use crate::tree::FaultTreeBuilder;
        let mut b = FaultTreeBuilder::new("weird \"names\"");
        let e = b.basic_event("ev\\ent \"x\"", 0.1).unwrap();
        let top = b.or_gate("top", [e.into()]).unwrap();
        let tree = b.build(top.into()).unwrap();
        let dot = to_dot(&tree);
        assert!(dot.contains("ev\\\\ent \\\"x\\\""));
        assert!(dot.contains("weird \\\"names\\\""));
    }
}
