//! The MOCUS engine behind the [`AnalysisBackend`] interface.

use std::collections::HashMap;
use std::time::Instant;

use fault_tree::{CutSet, EventId, FaultTree};
use ft_analysis::mocus::{Mocus, MocusError};

use crate::control::{QueryControl, StopCause};
use crate::solution::{canonical_sort, charge_first, BackendSolution};
use crate::{AnalysisBackend, BackendError, Enumerated};

/// The classic MOCUS top-down cut-set generator as an analysis backend.
///
/// Every query enumerates the full minimal cut set family by gate expansion
/// (the cost the paper's MaxSAT approach avoids), then selects / ranks /
/// quantifies from it: the MPMCS is the canonical first element, top-k is a
/// truncation, and the exact top-event probability is computed by
/// pivotal decomposition over the cut sets, within the configured budget.
#[derive(Clone, Debug)]
pub struct MocusBackend {
    max_sets: usize,
    probability_budget: usize,
}

impl MocusBackend {
    /// Creates the backend with an intermediate-set budget and an
    /// exact-quantification recursion budget (see
    /// [`BackendConfig`](crate::BackendConfig)).
    pub fn new(max_sets: usize, probability_budget: usize) -> Self {
        MocusBackend {
            max_sets,
            probability_budget,
        }
    }

    fn cut_sets(&self, tree: &FaultTree) -> Result<Vec<CutSet>, BackendError> {
        Mocus::with_budget(tree, self.max_sets)
            .minimal_cut_sets()
            .map_err(|e| BackendError::Budget {
                backend: "mocus",
                detail: e.to_string(),
            })
    }
}

/// Exact probability of the union of `cut_sets` — the shared quantification
/// path of the MCS-based backends (MOCUS and MaxSAT), exported so the
/// session facade can quantify an already-enumerated (warm) cut-set family
/// without re-running the enumeration.
///
/// Computed by recursive pivotal (Shannon) decomposition over the cut-set
/// family: condition on the most shared event `e`, recurse into the family
/// with `e` removed (weight `p(e)`) and the family without the cuts
/// containing `e` (weight `1 − p(e)`), with an absorption pass keeping the
/// conditioned family minimal. Exact for independent basic events, and —
/// unlike naive inclusion–exclusion with its `2^m − 1` terms — comfortably
/// handles families the bundled models produce. `budget` caps the number of
/// recursion nodes; overruns report
/// [`BackendError::ProbabilityUnsupported`].
pub fn exact_union_probability(
    tree: &FaultTree,
    cut_sets: &[CutSet],
    budget: usize,
    backend: &'static str,
) -> Result<f64, BackendError> {
    let mut nodes = 0usize;
    pivotal(tree, cut_sets.to_vec(), &mut nodes, budget, 0).ok_or(
        BackendError::ProbabilityUnsupported {
            backend,
            cut_sets: cut_sets.len(),
        },
    )
}

/// Stack recursion only happens on the conditioned (`pivot` occurs) branch;
/// this caps it so pathological families refuse with `None` instead of
/// overflowing the stack.
const PIVOTAL_MAX_DEPTH: usize = 2_048;

fn pivotal(
    tree: &FaultTree,
    mut cuts: Vec<CutSet>,
    nodes: &mut usize,
    budget: usize,
    depth: usize,
) -> Option<f64> {
    if depth > PIVOTAL_MAX_DEPTH {
        return None;
    }
    // The `pivot does not occur` branch is tail-recursive — large
    // near-disjoint families (e.g. wide ORs) shrink by only one cut per
    // level, so it must iterate rather than recurse. `low_scale` carries the
    // accumulated `Π (1 − p)` weight of the chain.
    let mut total = 0.0;
    let mut low_scale = 1.0;
    loop {
        if cuts.is_empty() {
            return Some(total);
        }
        if cuts.iter().any(CutSet::is_empty) {
            // An empty cut is unconditionally satisfied.
            return Some(total + low_scale);
        }
        if cuts.len() == 1 {
            return Some(total + low_scale * cuts[0].probability(tree));
        }
        if cuts.iter().all(|cut| cut.len() == 1) {
            // An absorbed singleton family names pairwise-distinct (hence
            // independent) events: closed form, no pivoting needed. This is
            // what wide OR structures reduce to.
            let none: f64 = cuts.iter().map(|cut| 1.0 - cut.probability(tree)).product();
            return Some(total + low_scale * (1.0 - none));
        }
        // Factor out independent components: groups of cuts with pairwise
        // disjoint event supports are independent, so the union probability
        // is `1 − Π (1 − P(group))`. Wide unions of disjoint sub-systems
        // (e.g. an OR over thousands of AND pairs) thereby cost one small
        // quantification per group instead of an exponential pivot cascade.
        let components = split_components(&cuts);
        if components.len() > 1 {
            let mut none = 1.0;
            for component in components {
                none *= 1.0 - pivotal(tree, component, nodes, budget, depth)?;
            }
            return Some(total + low_scale * (1.0 - none));
        }
        *nodes += 1;
        if *nodes > budget {
            return None;
        }
        // Pivot on the most shared event (ties broken by identifier, for
        // determinism); sharing is what inclusion–exclusion struggles with,
        // so eliminating it first keeps the recursion shallow.
        let mut frequency: HashMap<EventId, usize> = HashMap::new();
        for cut in &cuts {
            for event in cut.iter() {
                *frequency.entry(event).or_insert(0) += 1;
            }
        }
        let pivot = frequency
            .iter()
            .max_by_key(|(event, count)| (**count, std::cmp::Reverse(event.index())))
            .map(|(event, _)| *event)
            .expect("non-empty cuts have events");
        let p = tree.event(pivot).probability().value();

        // `pivot` occurs: remove it everywhere, then absorb (a conditioned
        // cut may have become a superset of another).
        let mut conditioned: Vec<CutSet> = cuts
            .iter()
            .map(|cut| {
                let mut reduced = cut.clone();
                reduced.remove(pivot);
                reduced
            })
            .collect();
        conditioned.sort_by_key(CutSet::len);
        let mut high: Vec<CutSet> = Vec::new();
        for candidate in conditioned {
            if !high.iter().any(|kept| kept.is_subset(&candidate)) {
                high.push(candidate);
            }
        }
        total += low_scale * p * pivotal(tree, high, nodes, budget, depth + 1)?;
        // `pivot` does not occur: every cut containing it is dead; continue
        // iteratively on the survivors.
        cuts.retain(|cut| !cut.contains(pivot));
        low_scale *= 1.0 - p;
    }
}

/// Sweeps an already-enumerated minimal-cut-set family over a mission-time
/// grid: per point, re-derive the event probabilities at `t`, optionally
/// re-establish the canonical (probability-dependent) order, and quantify
/// the union exactly. Shared by the MCS-based backends' incremental
/// [`AnalysisBackend::probability_sweep`] overrides — the enumeration (the
/// expensive, structural part) never re-runs.
///
/// `canonical` selects the per-point family order and must mirror the
/// backend's point query: the MaxSAT engine quantifies in the canonical
/// enumeration order (which depends on the weights, hence on `t`), while
/// MOCUS quantifies in its structural expansion order (independent of `t`).
/// The session facade's warm sweep goes through this same function so its
/// curves are bit-identical to the backend's.
///
/// # Errors
///
/// Propagates [`exact_union_probability`]'s budget error when a point's
/// pivotal decomposition exceeds `budget`.
pub fn reprice_sweep(
    tree: &FaultTree,
    family: &[CutSet],
    grid: &[f64],
    budget: usize,
    backend: &'static str,
    canonical: bool,
) -> Result<Vec<f64>, BackendError> {
    let mut curve = Vec::with_capacity(grid.len());
    for &t in grid {
        let tree_t = tree.at_time(t);
        let value = if canonical {
            let mut solutions: Vec<BackendSolution> = family
                .iter()
                .map(|cut| BackendSolution::from_cut(&tree_t, cut.clone(), backend))
                .collect();
            canonical_sort(&tree_t, &mut solutions);
            let cuts: Vec<CutSet> = solutions.into_iter().map(|s| s.cut_set).collect();
            exact_union_probability(&tree_t, &cuts, budget, backend)?
        } else {
            exact_union_probability(&tree_t, family, budget, backend)?
        };
        curve.push(value);
    }
    Ok(curve)
}

/// Partitions a cut-set family into its event-connected components (cuts in
/// different components share no event). Union-find over the cut indices.
fn split_components(cuts: &[CutSet]) -> Vec<Vec<CutSet>> {
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut parent: Vec<usize> = (0..cuts.len()).collect();
    let mut owner: HashMap<EventId, usize> = HashMap::new();
    for (index, cut) in cuts.iter().enumerate() {
        for event in cut.iter() {
            match owner.get(&event) {
                Some(&other) => {
                    let a = find(&mut parent, index);
                    let b = find(&mut parent, other);
                    parent[a] = b;
                }
                None => {
                    owner.insert(event, index);
                }
            }
        }
    }
    // Ordered by root index: the caller multiplies the component
    // probabilities together, and floating-point products are only
    // bit-reproducible across calls when the factor order is deterministic.
    let mut groups: std::collections::BTreeMap<usize, Vec<CutSet>> =
        std::collections::BTreeMap::new();
    for (index, cut) in cuts.iter().enumerate() {
        let root = find(&mut parent, index);
        groups.entry(root).or_default().push(cut.clone());
    }
    groups.into_values().collect()
}

impl AnalysisBackend for MocusBackend {
    fn name(&self) -> &'static str {
        "mocus"
    }

    fn mpmcs(&self, tree: &FaultTree) -> Result<BackendSolution, BackendError> {
        Ok(self.all_mcs(tree)?.swap_remove(0))
    }

    fn top_k(&self, tree: &FaultTree, k: usize) -> Result<Vec<BackendSolution>, BackendError> {
        let mut all = self.all_mcs(tree)?;
        all.truncate(k);
        Ok(all)
    }

    fn all_mcs(&self, tree: &FaultTree) -> Result<Vec<BackendSolution>, BackendError> {
        let start = Instant::now();
        let cut_sets = self.cut_sets(tree)?;
        if cut_sets.is_empty() {
            return Err(BackendError::NoCutSet);
        }
        let mut solutions: Vec<BackendSolution> = cut_sets
            .into_iter()
            .map(|cut| BackendSolution::from_cut(tree, cut, self.name()))
            .collect();
        canonical_sort(tree, &mut solutions);
        charge_first(&mut solutions, start.elapsed());
        Ok(solutions)
    }

    fn top_event_probability(&self, tree: &FaultTree) -> Result<f64, BackendError> {
        let cut_sets = self.cut_sets(tree)?;
        exact_union_probability(tree, &cut_sets, self.probability_budget, self.name())
    }

    /// The MOCUS expansion is purely structural, so it runs once for the
    /// whole grid; each timepoint re-quantifies the same family — in the
    /// same expansion order the point query uses — under the probabilities
    /// at `t`.
    fn probability_sweep(&self, tree: &FaultTree, grid: &[f64]) -> Result<Vec<f64>, BackendError> {
        let family = self.cut_sets(tree)?;
        reprice_sweep(
            tree,
            &family,
            grid,
            self.probability_budget,
            self.name(),
            false,
        )
    }

    /// MOCUS polls the control once per gate expansion, so a deadline or a
    /// cancellation stops the (potentially exponential) expansion promptly.
    /// The expansion computes the family bottom-up — no cut set is known
    /// until the end — so a stopped query reports an empty, well-labelled
    /// prefix rather than unordered partial work.
    fn all_mcs_under(
        &self,
        tree: &FaultTree,
        control: &QueryControl,
    ) -> Result<Enumerated, BackendError> {
        let start = Instant::now();
        let probe = control.clone();
        let expansion = Mocus::with_budget(tree, self.max_sets)
            .with_interrupt(std::sync::Arc::new(move || probe.stop_cause().is_some()))
            .minimal_cut_sets();
        let cut_sets = match expansion {
            Ok(cut_sets) => cut_sets,
            Err(MocusError::Interrupted) => {
                return Ok(Enumerated {
                    solutions: Vec::new(),
                    stopped: Some(control.stop_cause().unwrap_or(StopCause::Cancelled)),
                })
            }
            Err(error) => {
                return Err(BackendError::Budget {
                    backend: "mocus",
                    detail: error.to_string(),
                })
            }
        };
        if cut_sets.is_empty() {
            return Err(BackendError::NoCutSet);
        }
        let mut solutions: Vec<BackendSolution> = cut_sets
            .into_iter()
            .map(|cut| BackendSolution::from_cut(tree, cut, self.name()))
            .collect();
        canonical_sort(tree, &mut solutions);
        charge_first(&mut solutions, start.elapsed());
        Ok(Enumerated {
            solutions,
            stopped: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::examples::{fire_protection_system, pressure_tank_system};

    #[test]
    fn mocus_backend_answers_all_four_queries() {
        let tree = fire_protection_system();
        let backend = MocusBackend::new(100_000, 20);
        let best = backend.mpmcs(&tree).expect("small tree");
        assert_eq!(best.event_names(&tree), vec!["x1", "x2"]);
        assert!((best.probability - 0.02).abs() < 1e-12);
        let top2 = backend.top_k(&tree, 2).expect("small tree");
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[1].event_names(&tree), vec!["x5", "x6"]);
        assert_eq!(backend.all_mcs(&tree).expect("small tree").len(), 5);
        let p = backend.top_event_probability(&tree).expect("5 cut sets");
        let exact = bdd_engine::compile_fault_tree(&tree, bdd_engine::VariableOrdering::DepthFirst)
            .top_event_probability(&tree);
        assert!((p - exact).abs() < 1e-12);
    }

    /// Regression: wide disjoint families used to recurse once per cut on
    /// the `pivot does not occur` branch and overflow the stack. Singleton
    /// families now hit the closed form directly, and non-singleton disjoint
    /// chains walk the low branch iteratively — both quantify exactly.
    #[test]
    fn wide_disjoint_families_quantify_without_deep_recursion() {
        // Pure OR: the all-singleton closed form.
        let tree = ft_generators::wide_or(2_000, 7);
        let backend = MocusBackend::new(1_000_000, 50_000);
        let p = backend.top_event_probability(&tree).expect("closed form");
        let expected = 1.0
            - tree
                .events()
                .iter()
                .map(|e| 1.0 - e.probability().value())
                .product::<f64>();
        assert!((p - expected).abs() < 1e-9, "{p} vs {expected}");

        // OR over disjoint AND pairs: not singletons, so every pair costs
        // one iterative low step (the chain that used to be a stack frame
        // per cut) plus a depth-2 conditioned recursion.
        let mut b = fault_tree::FaultTreeBuilder::new("pairs");
        let mut pairs = Vec::new();
        for i in 0..1_500 {
            let left = b.basic_event(format!("a{i}"), 0.01).unwrap();
            let right = b.basic_event(format!("b{i}"), 0.02).unwrap();
            pairs.push(
                b.and_gate(format!("p{i}"), [left.into(), right.into()])
                    .unwrap()
                    .into(),
            );
        }
        let top = b.or_gate("top", pairs).unwrap();
        let tree = b.build(top.into()).unwrap();
        let p = backend
            .top_event_probability(&tree)
            .expect("disjoint pairs stay within depth and budget");
        let expected = 1.0 - (1.0 - 0.01 * 0.02f64).powi(1_500);
        assert!((p - expected).abs() < 1e-9, "{p} vs {expected}");
    }

    #[test]
    fn budgets_surface_as_backend_errors() {
        let tree = pressure_tank_system();
        let starved = MocusBackend::new(1, 20);
        assert!(matches!(
            starved.all_mcs(&tree),
            Err(BackendError::Budget {
                backend: "mocus",
                ..
            })
        ));
        let no_probability = MocusBackend::new(100_000, 0);
        assert!(matches!(
            no_probability.top_event_probability(&tree),
            Err(BackendError::ProbabilityUnsupported { cut_sets: 3, .. })
        ));
    }
}
