//! The sharded worker pool that drives a batch run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use bdd_engine::VariableOrdering;
use fault_tree::FaultTree;
use ft_backend::{AnalysisCache, BackendKind, Budget};
use ft_session::{Analyzer, SessionError};
use mpmcs::{AlgorithmChoice, BranchingChoice};

use crate::manifest::{BatchJob, BatchManifest};
use crate::report::{
    BatchReport, BatchSummary, CacheSummary, ImportanceRow, SweepCurve, TreeReport,
};

/// How many minimal cut sets the importance pre-computation (MOCUS) may
/// enumerate per tree before the importance table is skipped for that tree.
const MOCUS_BUDGET: usize = 50_000;

/// Configuration of a batch run.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Worker threads; `0` asks the OS for the available parallelism. The
    /// pool never spawns more workers than there are jobs.
    pub jobs: usize,
    /// Minimal cut sets to enumerate per tree (at least 1; the first is the
    /// MPMCS).
    pub top_k: usize,
    /// The MaxSAT strategy used for every tree. The default is the
    /// *sequential* portfolio: parallelism then comes entirely from the
    /// worker pool (one tree per thread), which keeps per-tree results
    /// bit-identical for any worker count.
    pub algorithm: AlgorithmChoice,
    /// The SAT decision heuristic used by the MaxSAT backend's solvers.
    pub branching: BranchingChoice,
    /// Also compute the Birnbaum / Fussell-Vesely / criticality importance
    /// table per tree (needs cut-set enumeration; skipped for trees whose
    /// cut-set count exceeds an internal budget).
    pub importance: bool,
    /// Attach the detailed solver statistics block (conflicts, propagations,
    /// restarts, learnt-clause reuse, session counters) to every reported cut
    /// set. Like timings, the block is stripped by
    /// [`BatchReport::to_deterministic_json`](crate::BatchReport::to_deterministic_json).
    pub stats: bool,
    /// Which analysis engine answers every per-tree query
    /// ([`BackendKind::Auto`] resolves per tree from structural features).
    pub backend: BackendKind,
    /// The BDD variable ordering used by the BDD backend (and by the
    /// importance table's exact probability).
    pub bdd_ordering: VariableOrdering,
    /// Run the modular divide-and-conquer preprocessing pass in front of
    /// every per-tree analysis.
    pub preprocess: bool,
    /// Per-tree wall-clock budget in milliseconds (CLI `--timeout-ms`). A
    /// tree whose analysis hits the deadline reports the canonical solution
    /// prefix it had proven, marked `truncated` — never a silently
    /// incomplete answer.
    pub timeout_ms: Option<u64>,
    /// Per-tree cap on reported solutions (CLI `--max-solutions`); rows
    /// capped below `top_k` are marked `truncated`.
    pub max_solutions: Option<usize>,
    /// A shared content-addressed [`AnalysisCache`] consulted and fed by
    /// every worker (CLI `--cache`). Workers reuse complete canonical
    /// answers across isomorphic trees — and across batches when the same
    /// handle is passed again. Counters land in
    /// [`BatchSummary::cache`](crate::BatchSummary); like timings they are
    /// redacted from the deterministic rendering, because the cache never
    /// changes an answer, only how fast it arrives.
    pub cache: Option<Arc<AnalysisCache>>,
    /// A mission-time grid (CLI `--sweep`): every tree additionally reports
    /// its top-event probability curve over these times, computed
    /// incrementally by [`Analyzer::sweep`] — the structure is solved once
    /// and each point re-quantified, bit-identical to the corresponding
    /// point queries. `None` (the default) keeps sweepless reports at their
    /// historical byte format.
    pub sweep: Option<Vec<f64>>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            jobs: 0,
            top_k: 1,
            algorithm: AlgorithmChoice::SequentialPortfolio,
            branching: BranchingChoice::Vsids,
            importance: false,
            stats: false,
            backend: BackendKind::MaxSat,
            bdd_ordering: VariableOrdering::DepthFirst,
            preprocess: false,
            timeout_ms: None,
            max_solutions: None,
            cache: None,
            sweep: None,
        }
    }
}

impl BatchConfig {
    /// The per-query [`Budget`] implied by the configured limits.
    pub fn budget(&self) -> Budget {
        Budget::from_limits(self.timeout_ms, self.max_solutions)
    }

    /// The worker count a manifest of `jobs_available` jobs will actually
    /// use: the configured count (or the available parallelism when 0),
    /// capped by the number of jobs and floored at 1.
    pub fn effective_jobs(&self, jobs_available: usize) -> usize {
        let requested = if self.jobs == 0 {
            thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.jobs
        };
        requested.min(jobs_available).max(1)
    }
}

/// Runs the full MPMCS pipeline on every job of `manifest` using a sharded
/// worker pool, and aggregates the per-tree results into a deterministic
/// [`BatchReport`] (results in manifest order; per-tree failures are recorded
/// in the report instead of aborting the batch).
///
/// ```rust
/// use ft_batch::{run_batch, BatchConfig, BatchManifest};
/// use ft_generators::Family;
///
/// let manifest = BatchManifest::generated(Family::OrHeavy, 50, 4, 11);
/// let report = run_batch(&manifest, &BatchConfig { jobs: 4, ..BatchConfig::default() });
/// assert_eq!(report.summary.succeeded, 4);
/// assert!(report.results.iter().all(|r| r.status == "ok"));
/// ```
pub fn run_batch(manifest: &BatchManifest, config: &BatchConfig) -> BatchReport {
    let start = Instant::now();
    let before = config.cache.as_ref().map(|cache| cache.stats());
    let total = manifest.jobs.len();
    let workers = config.effective_jobs(total);
    let mut slots: Vec<Option<TreeReport>> = (0..total).map(|_| None).collect();

    if total > 0 {
        let next = AtomicUsize::new(0);
        let finished: Vec<Vec<(usize, TreeReport)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= total {
                                break;
                            }
                            local.push((index, analyze_job(&manifest.jobs[index], config)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("batch workers do not panic"))
                .collect()
        });
        for (index, report) in finished.into_iter().flatten() {
            slots[index] = Some(report);
        }
    }

    let results: Vec<TreeReport> = slots
        .into_iter()
        .map(|slot| slot.expect("every job index is analysed exactly once"))
        .collect();
    let succeeded = results.iter().filter(|r| r.status == "ok").count();
    let summary = BatchSummary {
        trees: total,
        succeeded,
        failed: total - succeeded,
        jobs: workers,
        top_k: config.top_k.max(1),
        algorithm: algorithm_name(config.algorithm).to_string(),
        backend: config.backend.name().to_string(),
        total_events: results
            .iter()
            .filter(|r| r.status == "ok")
            .map(|r| r.num_events)
            .sum(),
        total_cut_sets: results.iter().map(|r| r.cut_sets.len()).sum(),
        total_sat_calls: results.iter().map(|r| r.sat_calls).sum(),
        wall_time_ms: start.elapsed().as_secs_f64() * 1e3,
        cache: config.cache.as_ref().map(|cache| {
            // Monotone counters are reported as this batch's delta so a
            // long-lived shared cache does not smear earlier batches into
            // the summary; occupancy is the current absolute state.
            let after = cache.stats();
            let base = before.as_ref().expect("snapshot taken when cache is on");
            CacheSummary {
                hits: after.hits - base.hits,
                misses: after.misses - base.misses,
                insertions: after.insertions - base.insertions,
                evictions: after.evictions - base.evictions,
                entries: after.entries,
                bytes: after.bytes,
            }
        }),
    };
    BatchReport { summary, results }
}

/// The stable display name of a MaxSAT strategy (matches the CLI flags).
fn algorithm_name(algorithm: AlgorithmChoice) -> &'static str {
    match algorithm {
        AlgorithmChoice::Portfolio => "portfolio",
        AlgorithmChoice::SequentialPortfolio => "sequential",
        AlgorithmChoice::Oll => "oll",
        AlgorithmChoice::LinearSu => "linear-su",
    }
}

/// Loads and analyses one job through the session facade, capturing any
/// failure in the report row. Budget-stopped analyses report the canonical
/// prefix proven before the stop, marked `truncated`.
fn analyze_job(job: &BatchJob, config: &BatchConfig) -> TreeReport {
    let start = Instant::now();
    let mut report = TreeReport {
        name: job.name.clone(),
        status: "error".to_string(),
        backend: config.backend.name().to_string(),
        num_events: 0,
        num_gates: 0,
        sat_calls: 0,
        solve_time_ms: 0.0,
        cut_sets: Vec::new(),
        error: None,
        importance: None,
        truncated: None,
        sweep: None,
    };
    let tree = match job.load() {
        Ok(tree) => tree,
        Err(error) => {
            report.error = Some(error.to_string());
            report.solve_time_ms = start.elapsed().as_secs_f64() * 1e3;
            return report;
        }
    };
    report.num_events = tree.num_events();
    report.num_gates = tree.num_gates();
    let mut analyzer = Analyzer::for_tree(tree)
        .backend(config.backend)
        .algorithm(config.algorithm)
        .branching(config.branching)
        .bdd_ordering(config.bdd_ordering)
        .preprocess(config.preprocess)
        .budget(config.budget());
    if let Some(cache) = &config.cache {
        analyzer = analyzer.cache(Arc::clone(cache));
    }
    report.backend = analyzer.resolved_backend().name().to_string();
    match analyzer.top_k(config.top_k.max(1)) {
        Ok(set) => {
            report.status = "ok".to_string();
            report.truncated = set.is_truncated().then_some(true);
            report.sat_calls = set
                .solutions
                .iter()
                .map(|s| s.stats.as_ref().map_or(0, |stats| stats.sat_calls))
                .sum();
            report.cut_sets = set
                .solutions
                .iter()
                .map(|solution| solution.to_report(analyzer.tree(), config.stats))
                .collect();
            if config.importance {
                report.importance = importance_rows(analyzer.tree(), config.bdd_ordering);
            }
            if let Some(grid) = &config.sweep {
                match analyzer.sweep(grid) {
                    Ok(curve) => {
                        report.sweep = Some(SweepCurve {
                            grid: curve.grid,
                            probabilities: curve.probabilities,
                        });
                    }
                    Err(SessionError::Stopped(_)) => report.truncated = Some(true),
                    // Any other sweep failure (e.g. a quantification budget
                    // overrun) leaves the curve off the row, like an
                    // over-budget importance table.
                    Err(_) => {}
                }
            }
        }
        Err(SessionError::Stopped(_)) => {
            // The budget fired before even one solution was proven: the row
            // is an explicitly truncated empty answer, not a solver failure
            // — it stays "ok" so the summary's failure count keeps meaning
            // "broken model", and the [truncated] marker tells the operator
            // to raise the budget.
            report.status = "ok".to_string();
            report.truncated = Some(true);
        }
        Err(error) => {
            report.error = Some(format!("solver error: {error}"));
        }
    }
    report.solve_time_ms = start.elapsed().as_secs_f64() * 1e3;
    report
}

/// Computes the importance table, or `None` when cut-set enumeration blows
/// the budget (large OR-heavy trees) — the batch row stays usable either way.
fn importance_rows(tree: &FaultTree, ordering: VariableOrdering) -> Option<Vec<ImportanceRow>> {
    let cut_sets = ft_analysis::mocus::Mocus::with_budget(tree, MOCUS_BUDGET)
        .minimal_cut_sets()
        .ok()?;
    let exact =
        |t: &FaultTree| bdd_engine::compile_fault_tree(t, ordering).top_event_probability(t);
    let table = ft_analysis::importance::ImportanceTable::compute(tree, &cut_sets, exact);
    Some(
        tree.event_ids()
            .map(|event| {
                let i = event.index();
                ImportanceRow {
                    event: tree.event(event).name().to_string(),
                    birnbaum: table.birnbaum[i],
                    fussell_vesely: table.fussell_vesely[i],
                    criticality: table.criticality[i],
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{TreeFormat, TreeSource};
    use crate::redact_timings;
    use ft_generators::Family;
    use std::path::PathBuf;

    #[test]
    fn results_follow_manifest_order_for_any_worker_count() {
        let manifest = BatchManifest::generated(Family::RandomMixed, 70, 6, 3);
        let sequential = run_batch(
            &manifest,
            &BatchConfig {
                jobs: 1,
                ..BatchConfig::default()
            },
        );
        let parallel = run_batch(
            &manifest,
            &BatchConfig {
                jobs: 4,
                ..BatchConfig::default()
            },
        );
        assert_eq!(sequential.summary.jobs, 1);
        assert_eq!(parallel.summary.jobs, 4);
        assert_eq!(
            sequential.to_deterministic_json(),
            parallel.to_deterministic_json(),
            "worker count must not change the report content"
        );
        let names: Vec<&str> = parallel.results.iter().map(|r| r.name.as_str()).collect();
        let expected: Vec<String> = manifest.jobs.iter().map(|j| j.name.clone()).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn per_tree_failures_do_not_abort_the_batch() {
        let mut manifest = BatchManifest::generated(Family::RandomMixed, 60, 1, 1);
        manifest.jobs.insert(
            0,
            crate::BatchJob {
                name: "missing.json".to_string(),
                source: TreeSource::File {
                    path: PathBuf::from("/nonexistent/missing.json"),
                    format: TreeFormat::Json,
                },
            },
        );
        let report = run_batch(&manifest, &BatchConfig::default());
        assert_eq!(report.summary.trees, 2);
        assert_eq!(report.summary.succeeded, 1);
        assert_eq!(report.summary.failed, 1);
        assert_eq!(report.results[0].status, "error");
        assert!(report.results[0]
            .error
            .as_deref()
            .unwrap()
            .contains("missing.json"));
        assert_eq!(report.results[1].status, "ok");
    }

    #[test]
    fn top_k_and_importance_are_honoured() {
        let manifest = BatchManifest::generated(Family::OrHeavy, 40, 1, 5);
        let report = run_batch(
            &manifest,
            &BatchConfig {
                top_k: 3,
                importance: true,
                ..BatchConfig::default()
            },
        );
        let tree = &report.results[0];
        assert_eq!(tree.status, "ok");
        assert!(!tree.cut_sets.is_empty() && tree.cut_sets.len() <= 3);
        // Cut sets are ordered by non-increasing probability.
        for pair in tree.cut_sets.windows(2) {
            assert!(pair[0].probability >= pair[1].probability - 1e-15);
        }
        let importance = tree.importance.as_ref().expect("importance requested");
        assert_eq!(importance.len(), tree.num_events);
        assert!(importance.iter().all(|row| row.birnbaum >= 0.0));
        assert!(tree.sat_calls > 0);
        assert_eq!(report.summary.top_k, 3);
        assert_eq!(report.summary.total_cut_sets, tree.cut_sets.len());
    }

    /// The `stats` flag attaches the solver-statistics block to every cut
    /// set — and the deterministic rendering strips it again, so turning the
    /// flag on cannot break byte-level report comparisons.
    #[test]
    fn stats_flag_attaches_and_deterministic_json_strips_solver_stats() {
        let manifest = BatchManifest::generated(Family::RandomMixed, 50, 2, 5);
        let with_stats = run_batch(
            &manifest,
            &BatchConfig {
                stats: true,
                top_k: 2,
                ..BatchConfig::default()
            },
        );
        for tree in &with_stats.results {
            for cut_set in &tree.cut_sets {
                let stats = cut_set.solver_stats.as_ref().expect("stats requested");
                assert!(stats.sat_calls > 0);
            }
        }
        assert!(with_stats.to_json().contains("solver_stats"));
        assert!(!with_stats.to_deterministic_json().contains("solver_stats"));
        let without = run_batch(
            &manifest,
            &BatchConfig {
                top_k: 2,
                ..BatchConfig::default()
            },
        );
        assert!(!without.to_json().contains("solver_stats"));
        assert_eq!(
            with_stats.to_deterministic_json(),
            without.to_deterministic_json(),
            "--stats must not change the deterministic report"
        );
    }

    /// Every backend (and the preprocessing pass) reports the same cut sets
    /// and probabilities for the same batch — the batch layer's slice of the
    /// cross-backend equivalence guarantee.
    #[test]
    fn classical_backends_and_preprocessing_agree_with_maxsat_batches() {
        let manifest = BatchManifest::generated(Family::RandomMixed, 50, 3, 21);
        let reference = run_batch(
            &manifest,
            &BatchConfig {
                top_k: 3,
                ..BatchConfig::default()
            },
        );
        assert_eq!(reference.summary.backend, "maxsat");
        for (backend, preprocess) in [
            (BackendKind::Bdd, false),
            (BackendKind::Mocus, false),
            (BackendKind::MaxSat, true),
            (BackendKind::Auto, false),
        ] {
            let other = run_batch(
                &manifest,
                &BatchConfig {
                    top_k: 3,
                    backend,
                    preprocess,
                    ..BatchConfig::default()
                },
            );
            assert_eq!(other.summary.backend, backend.name());
            for (a, b) in reference.results.iter().zip(&other.results) {
                assert_eq!(a.status, "ok");
                assert_eq!(b.status, "ok", "{} {preprocess}", backend.name());
                assert_eq!(a.cut_sets.len(), b.cut_sets.len());
                for (x, y) in a.cut_sets.iter().zip(&b.cut_sets) {
                    let xs: Vec<&str> = x.mpmcs.iter().map(|e| e.name.as_str()).collect();
                    let ys: Vec<&str> = y.mpmcs.iter().map(|e| e.name.as_str()).collect();
                    assert_eq!(xs, ys, "{} {preprocess}", backend.name());
                    assert!((x.probability - y.probability).abs() < 1e-12);
                }
                if backend == BackendKind::Auto {
                    assert_ne!(b.backend, "auto", "auto resolves per tree");
                }
            }
        }
    }

    /// A deadline that fires before any solution leaves the row an
    /// explicitly truncated *ok* answer — never an error: the summary's
    /// failure count must keep meaning "broken model".
    #[test]
    fn budget_stopped_rows_are_truncated_not_failed() {
        let manifest = BatchManifest::generated(Family::RandomMixed, 60, 2, 3);
        let report = run_batch(
            &manifest,
            &BatchConfig {
                timeout_ms: Some(0),
                ..BatchConfig::default()
            },
        );
        assert_eq!(report.summary.failed, 0);
        assert_eq!(report.summary.succeeded, 2);
        assert!(report.any_truncated());
        for row in &report.results {
            assert_eq!(row.status, "ok");
            assert_eq!(row.truncated, Some(true));
            assert!(row.error.is_none());
            assert!(row.cut_sets.is_empty());
        }
        assert!(report.render_text().contains("[truncated]"));
    }

    /// A shared cache across batch runs reuses complete answers (hits on the
    /// warm run) without changing a byte of the deterministic report — and
    /// its counters land in the summary.
    #[test]
    fn a_shared_cache_reuses_answers_without_changing_the_report() {
        let manifest = BatchManifest::generated(Family::SharedDag, 60, 3, 5);
        let baseline = run_batch(
            &manifest,
            &BatchConfig {
                top_k: 3,
                ..BatchConfig::default()
            },
        );
        let cache = ft_backend::AnalysisCache::shared();
        let config = BatchConfig {
            top_k: 3,
            cache: Some(Arc::clone(&cache)),
            ..BatchConfig::default()
        };
        let cold = run_batch(&manifest, &config);
        let warm = run_batch(&manifest, &config);
        assert_eq!(
            baseline.to_deterministic_json(),
            cold.to_deterministic_json()
        );
        assert_eq!(
            baseline.to_deterministic_json(),
            warm.to_deterministic_json()
        );
        let cold_cache = cold.summary.cache.as_ref().expect("cache configured");
        assert!(
            cold_cache.insertions > 0,
            "cold run deposits: {cold_cache:?}"
        );
        let warm_cache = warm.summary.cache.as_ref().expect("cache configured");
        assert_eq!(warm_cache.hits as usize, manifest.jobs.len());
        assert_eq!(warm_cache.insertions, 0, "warm run recomputes nothing");
        assert!(
            baseline.summary.cache.is_none(),
            "cacheless summaries keep their shape"
        );
        assert!(warm.render_text().contains("cache: "));
    }

    /// An opt-in sweep grid attaches a per-tree curve whose every point is
    /// bit-identical to the facade's point query at that mission time;
    /// leaving the grid off keeps the historical report bytes (no `sweep`
    /// key at all).
    #[test]
    fn sweep_grids_attach_bit_identical_curves_only_when_requested() {
        // Small trees with benign seeds: every grid point pays a full exact
        // quantification (the batch sweep itself plus the facade's reference
        // point query), and the random-mixed family can produce trees whose
        // full enumeration explodes combinatorially even at this node count.
        let manifest = BatchManifest::generated(Family::RandomMixed, 24, 2, 2020);
        let grid = vec![0.0, 0.5, 2.0];
        let plain = run_batch(&manifest, &BatchConfig::default());
        assert!(
            !plain.to_json().contains("\"sweep\""),
            "sweepless reports keep their historical shape"
        );
        let swept = run_batch(
            &manifest,
            &BatchConfig {
                sweep: Some(grid.clone()),
                ..BatchConfig::default()
            },
        );
        assert_eq!(swept.summary.succeeded, 2);
        for (row, job) in swept.results.iter().zip(&manifest.jobs) {
            let curve = row.sweep.as_ref().expect("sweep requested");
            assert_eq!(curve.grid, grid);
            let tree = job.load().expect("generated jobs load");
            for (&t, &swept_p) in curve.grid.iter().zip(&curve.probabilities) {
                let point = Analyzer::for_tree(tree.at_time(t))
                    .probability()
                    .expect("solvable");
                assert_eq!(
                    swept_p.to_bits(),
                    point.to_bits(),
                    "{}: batch sweep diverged at t={t}",
                    row.name
                );
            }
        }
        assert!(swept.to_json().contains("\"sweep\""));
    }

    #[test]
    fn empty_manifests_produce_an_empty_report() {
        let report = run_batch(&BatchManifest::default(), &BatchConfig::default());
        assert_eq!(report.summary.trees, 0);
        assert_eq!(report.summary.succeeded, 0);
        assert!(report.results.is_empty());
        assert!(report.render_text().contains("0 trees"));
    }

    #[test]
    fn redacted_reports_really_hide_the_only_nondeterminism() {
        // Two runs of the same batch in the same mode: everything except the
        // timing fields must already be identical.
        let manifest = BatchManifest::generated(Family::SharedDag, 80, 2, 9);
        let config = BatchConfig {
            jobs: 2,
            top_k: 2,
            ..BatchConfig::default()
        };
        let a = run_batch(&manifest, &config);
        let b = run_batch(&manifest, &config);
        assert_eq!(
            serde_json::to_string_pretty(&redact_timings(&serde_json::to_value(&a))).unwrap(),
            serde_json::to_string_pretty(&redact_timings(&serde_json::to_value(&b))).unwrap()
        );
    }
}
