//! Maximum Probability Minimal Cut Sets (MPMCS) via Weighted Partial MaxSAT.
//!
//! This crate implements the primary contribution of
//! *"Fault Tree Analysis: Identifying Maximum Probability Minimal Cut Sets
//! with MaxSAT"* (Barrère & Hankin, DSN 2020): given a fault tree with
//! probabilities attached to its basic events, find the **minimal cut set
//! whose joint probability is maximal** among all minimal cut sets.
//!
//! The resolution pipeline follows the six steps of the paper:
//!
//! 1. **Logical transformation** — the fault-tree structure function `f(t)`
//!    is complemented into the success tree `X(t)`; the crate supports both
//!    the paper's success-tree encoding and the equivalent direct encoding
//!    (see [`EncodingStyle`]).
//! 2. **CNF conversion** — Tseitin transformation
//!    ([`sat_solver::tseitin::TseitinEncoder`]).
//! 3. **Probabilities → log-space** — `wᵢ = −ln p(xᵢ)`
//!    ([`fault_tree::Probability::log_weight`]), scaled to integer MaxSAT
//!    weights.
//! 4. **Weighted Partial MaxSAT instance** — hard clauses from step 2, one
//!    soft clause per basic event ([`MpmcsEncoding`]).
//! 5. **Parallel MaxSAT resolution** — the portfolio of
//!    [`maxsat_solver::PortfolioSolver`] (or a single algorithm, see
//!    [`AlgorithmChoice`]).
//! 6. **Reverse log-space transformation** — `P = exp(−Σ wᵢ)` plus a
//!    minimality-repair and verification pass ([`verify`]).
//!
//! # Quick start
//!
//! ```rust
//! use fault_tree::examples::fire_protection_system;
//! use mpmcs::MpmcsSolver;
//!
//! # fn main() -> Result<(), mpmcs::MpmcsError> {
//! let tree = fire_protection_system();
//! let solution = MpmcsSolver::new().solve(&tree)?;
//! // The paper's result: MPMCS = {x1, x2} with probability 0.02.
//! assert_eq!(solution.event_names(&tree), vec!["x1", "x2"]);
//! assert!((solution.probability - 0.02).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod encode;
mod enumerate;
mod error;
mod pathset;
mod report;
mod solver;
mod stream;
pub mod verify;

pub use encode::{EncodingStyle, MpmcsEncoding, WeightScale};
pub use enumerate::EnumerationLimit;
pub use error::MpmcsError;
pub use pathset::PathSetSolution;
pub use report::{MpmcsReport, ReportEvent, SolverStatsReport};
pub use sat_solver::BranchingChoice;
pub use solver::{AlgorithmChoice, MpmcsOptions, MpmcsSolution, MpmcsSolver};
pub use stream::{McsStream, StreamStep};
