//! The Galileo textual fault-tree format (static subset).
//!
//! Example:
//!
//! ```text
//! toplevel "System";
//! "System" or "Detection" "Suppression";
//! "Detection" and "x1" "x2";
//! "Quorum" 2of3 "a" "b" "c";
//! "x1" prob=0.2;
//! "x2" prob=0.1;
//! ```
//!
//! Lines end with `;`; names may be double-quoted or bare; `//` starts a
//! comment. Only the static subset (AND, OR, `k of n`, `prob=`) is supported —
//! dynamic gates (SPARE, FDEP, PAND) are out of scope for this reproduction.
//!
//! Basic events may alternatively be rate-parameterised: `"x" lambda=0.1;`
//! declares an exponential failure law `p(t) = 1 − exp(−λt)` and `"x"
//! lambda=0.1 mu=0.9;` a repairable unavailability law (Fault Tree Handbook
//! semantics). The stored base probability of such events is the law at the
//! default mission time ([`crate::DEFAULT_MISSION_TIME`]); mission-time
//! sweeps re-evaluate it per timepoint.

use std::collections::HashMap;

use crate::error::FaultTreeError;
use crate::event::{BasicEvent, EventId, FailureModel};
use crate::gate::{Gate, GateId, GateKind};
use crate::probability::Probability;
use crate::tree::{FaultTree, NodeId};

/// Intermediate name-keyed node representation shared with the JSON parser.
#[derive(Debug, Clone)]
pub(crate) enum RawNode {
    /// A gate with a kind and named inputs.
    Gate {
        /// The logical function of the gate.
        kind: GateKind,
        /// Names of the input nodes.
        inputs: Vec<String>,
    },
    /// A basic event with a probability and/or a time-dependent failure law.
    Event {
        /// Explicit probability of occurrence, when given. When absent, the
        /// base probability is derived from the model.
        probability: Option<f64>,
        /// Time-dependent failure law, when given.
        model: Option<FailureModel>,
    },
}

fn parse_error(line: usize, message: impl Into<String>) -> FaultTreeError {
    FaultTreeError::Parse {
        line,
        message: message.into(),
    }
}

fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '"' => {
                chars.next();
                let mut name = String::new();
                for ch in chars.by_ref() {
                    if ch == '"' {
                        break;
                    }
                    name.push(ch);
                }
                tokens.push(name);
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            _ => {
                let mut token = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_whitespace() || ch == '"' {
                        break;
                    }
                    token.push(ch);
                    chars.next();
                }
                tokens.push(token);
            }
        }
    }
    tokens
}

/// Parses a fault tree from Galileo text.
///
/// # Errors
///
/// Returns [`FaultTreeError::Parse`] for syntax errors and the usual
/// structural errors (unknown nodes, cycles, invalid thresholds) for
/// semantically invalid trees.
pub fn parse_galileo(input: &str) -> Result<FaultTree, FaultTreeError> {
    let mut toplevel: Option<String> = None;
    let mut raw: HashMap<String, RawNode> = HashMap::new();
    let mut order: Vec<String> = Vec::new();

    for (lineno, raw_line) in input.lines().enumerate() {
        let line_number = lineno + 1;
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let line = line
            .strip_suffix(';')
            .ok_or_else(|| parse_error(line_number, "expected line to end with ';'"))?
            .trim();
        let tokens = tokenize(line);
        if tokens.is_empty() {
            continue;
        }
        if tokens[0].eq_ignore_ascii_case("toplevel") {
            if tokens.len() != 2 {
                return Err(parse_error(
                    line_number,
                    "toplevel expects exactly one name",
                ));
            }
            toplevel = Some(tokens[1].clone());
            continue;
        }
        let name = tokens[0].clone();
        if tokens.len() < 2 {
            return Err(parse_error(line_number, "missing node definition"));
        }
        if raw.contains_key(&name) {
            return Err(FaultTreeError::DuplicateName { name });
        }
        let second = tokens[1].to_ascii_lowercase();
        let node = if let Some(prob_text) = second.strip_prefix("prob=") {
            let probability: f64 = prob_text.parse().map_err(|_| {
                parse_error(line_number, format!("invalid probability {prob_text:?}"))
            })?;
            RawNode::Event {
                probability: Some(probability),
                model: None,
            }
        } else if let Some(lambda_text) = second.strip_prefix("lambda=") {
            let lambda: f64 = lambda_text.parse().map_err(|_| {
                parse_error(line_number, format!("invalid failure rate {lambda_text:?}"))
            })?;
            // An optional `mu=<rate>` after the failure rate selects the
            // repairable unavailability law.
            let mu = match tokens.get(2).map(|t| t.to_ascii_lowercase()) {
                None => None,
                Some(third) => match third.strip_prefix("mu=") {
                    Some(mu_text) => Some(mu_text.parse::<f64>().map_err(|_| {
                        parse_error(line_number, format!("invalid repair rate {mu_text:?}"))
                    })?),
                    None => {
                        return Err(parse_error(
                            line_number,
                            format!("expected mu=<rate> after lambda, found {:?}", tokens[2]),
                        ))
                    }
                },
            };
            let model = match mu {
                Some(mu) => FailureModel::repairable(lambda, mu),
                None => FailureModel::exponential(lambda),
            }
            .map_err(|e| parse_error(line_number, e.to_string()))?;
            RawNode::Event {
                probability: None,
                model: Some(model),
            }
        } else if second == "and" || second == "or" {
            let kind = if second == "and" {
                GateKind::And
            } else {
                GateKind::Or
            };
            RawNode::Gate {
                kind,
                inputs: tokens[2..].to_vec(),
            }
        } else if let Some((k_text, n_text)) = second.split_once("of") {
            let k: usize = k_text.parse().map_err(|_| {
                parse_error(line_number, format!("invalid voting threshold {second:?}"))
            })?;
            let declared_n: usize = n_text.parse().map_err(|_| {
                parse_error(line_number, format!("invalid voting arity {second:?}"))
            })?;
            let inputs = tokens[2..].to_vec();
            if inputs.len() != declared_n {
                return Err(parse_error(
                    line_number,
                    format!(
                        "voting gate {name:?} declares {declared_n} inputs but lists {}",
                        inputs.len()
                    ),
                ));
            }
            RawNode::Gate {
                kind: GateKind::Vot { k },
                inputs,
            }
        } else {
            return Err(parse_error(
                line_number,
                format!("unsupported gate type or attribute {:?}", tokens[1]),
            ));
        };
        order.push(name.clone());
        raw.insert(name, node);
    }

    let toplevel = toplevel.ok_or(FaultTreeError::MissingTop)?;
    build_tree("galileo import", &toplevel, &raw, &order)
}

/// Builds a [`FaultTree`] from name-keyed raw nodes (shared with the JSON parser).
pub(crate) fn build_tree(
    tree_name: &str,
    toplevel: &str,
    raw: &HashMap<String, RawNode>,
    order: &[String],
) -> Result<FaultTree, FaultTreeError> {
    // Assign dense ids: events first, then gates, in declaration order.
    let mut event_ids: HashMap<&str, EventId> = HashMap::new();
    let mut gate_ids: HashMap<&str, GateId> = HashMap::new();
    let mut events: Vec<BasicEvent> = Vec::new();
    let mut gate_names: Vec<&String> = Vec::new();
    for name in order {
        match &raw[name] {
            RawNode::Event { probability, model } => {
                let base = match (probability, model) {
                    (Some(p), _) => Probability::new(*p)?,
                    (None, Some(model)) => model.base_probability(),
                    (None, None) => {
                        return Err(FaultTreeError::Parse {
                            line: 0,
                            message: format!(
                                "event {name:?} needs a probability or a failure rate"
                            ),
                        })
                    }
                };
                let id = EventId::from_index(events.len());
                let mut event = BasicEvent::new(name.clone(), base);
                event.set_model(*model);
                events.push(event);
                event_ids.insert(name, id);
            }
            RawNode::Gate { .. } => {
                let id = GateId::from_index(gate_names.len());
                gate_ids.insert(name, id);
                gate_names.push(name);
            }
        }
    }
    let resolve = |name: &str| -> Result<NodeId, FaultTreeError> {
        if let Some(&e) = event_ids.get(name) {
            Ok(NodeId::Event(e))
        } else if let Some(&g) = gate_ids.get(name) {
            Ok(NodeId::Gate(g))
        } else {
            Err(FaultTreeError::UnknownNode {
                name: name.to_string(),
            })
        }
    };
    let mut gates: Vec<Gate> = Vec::new();
    for name in &gate_names {
        if let RawNode::Gate { kind, inputs } = &raw[*name] {
            let resolved: Result<Vec<NodeId>, FaultTreeError> =
                inputs.iter().map(|i| resolve(i)).collect();
            gates.push(Gate::new((*name).clone(), *kind, resolved?));
        }
    }
    let top = resolve(toplevel)?;
    FaultTree::from_parts(tree_name, events, gates, top)
}

/// Renders a fault tree in Galileo syntax.
pub fn to_galileo_string(tree: &FaultTree) -> String {
    let mut out = String::new();
    out.push_str(&format!("toplevel \"{}\";\n", tree.node_name(tree.top())));
    for gate in tree.gates() {
        let kind = match gate.kind() {
            GateKind::And => "and".to_string(),
            GateKind::Or => "or".to_string(),
            GateKind::Vot { k } => format!("{k}of{}", gate.inputs().len()),
        };
        let inputs: Vec<String> = gate
            .inputs()
            .iter()
            .map(|&i| format!("\"{}\"", tree.node_name(i)))
            .collect();
        out.push_str(&format!(
            "\"{}\" {} {};\n",
            gate.name(),
            kind,
            inputs.join(" ")
        ));
    }
    for event in tree.events() {
        // Rate-parameterised events are written as their rates (the base
        // probability is re-derived on parse); everything else — including
        // explicitly pinned `Fixed` models, which Galileo cannot express —
        // is written as its probability.
        match event.model() {
            Some(FailureModel::Exponential { lambda }) => {
                out.push_str(&format!("\"{}\" lambda={lambda};\n", event.name()));
            }
            Some(FailureModel::Repairable { lambda, mu }) => {
                out.push_str(&format!("\"{}\" lambda={lambda} mu={mu};\n", event.name()));
            }
            _ => {
                out.push_str(&format!(
                    "\"{}\" prob={};\n",
                    event.name(),
                    event.probability().value()
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fire_protection_system;

    const FPS_GALILEO: &str = r#"
// Fire protection system (paper Fig. 1)
toplevel "top";
"top" or "detection" "suppression";
"detection" and "x1" "x2";
"suppression" or "x3" "x4" "triggering";
"triggering" and "x5" "remote";
"remote" or "x6" "x7";
"x1" prob=0.2;
"x2" prob=0.1;
"x3" prob=0.001;
"x4" prob=0.002;
"x5" prob=0.05;
"x6" prob=0.1;
"x7" prob=0.05;
"#;

    #[test]
    fn parses_the_fire_protection_system() {
        let tree = parse_galileo(FPS_GALILEO).expect("valid Galileo input");
        assert_eq!(tree.num_events(), 7);
        assert_eq!(tree.num_gates(), 5);
        // Same structure function as the programmatic example.
        let reference = fire_protection_system();
        for mask in 0..(1u32 << 7) {
            let occurred: Vec<bool> = (0..7).map(|i| mask & (1 << i) != 0).collect();
            // Event order differs (declaration order), so remap by name.
            let mut remapped = vec![false; 7];
            for (i, value) in occurred.iter().enumerate() {
                let name = format!("x{}", i + 1);
                let id = tree.event_by_name(&name).unwrap();
                remapped[id.index()] = *value;
            }
            let mut reference_occurred = vec![false; 7];
            for (i, value) in occurred.iter().enumerate() {
                let name = format!("x{}", i + 1);
                let id = reference.event_by_name(&name).unwrap();
                reference_occurred[id.index()] = *value;
            }
            assert_eq!(
                tree.evaluate(&remapped),
                reference.evaluate(&reference_occurred),
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn parses_voting_gates_and_bare_names() {
        let text = "toplevel top;\ntop 2of3 a b c;\na prob=0.1;\nb prob=0.2;\nc prob=0.3;\n";
        let tree = parse_galileo(text).expect("valid Galileo input");
        assert_eq!(tree.num_events(), 3);
        assert_eq!(tree.gates()[0].kind(), GateKind::Vot { k: 2 });
        assert!(tree.evaluate(&[true, true, false]));
        assert!(!tree.evaluate(&[true, false, false]));
    }

    #[test]
    fn round_trips_through_the_writer() {
        let tree = fire_protection_system();
        let text = to_galileo_string(&tree);
        let parsed = parse_galileo(&text).expect("round trip");
        assert_eq!(parsed.num_events(), tree.num_events());
        assert_eq!(parsed.num_gates(), tree.num_gates());
        for mask in 0..(1u32 << 7) {
            let occurred: Vec<bool> = (0..7).map(|i| mask & (1 << i) != 0).collect();
            let mut remapped = vec![false; 7];
            for id in tree.event_ids() {
                let name = tree.event(id).name();
                let other = parsed.event_by_name(name).unwrap();
                remapped[other.index()] = occurred[id.index()];
            }
            assert_eq!(parsed.evaluate(&remapped), tree.evaluate(&occurred));
        }
    }

    #[test]
    fn parses_rate_parameterised_events() {
        let text = "toplevel top;\ntop or pump link;\npump lambda=0.5;\nlink lambda=0.1 mu=0.9;\n";
        let tree = parse_galileo(text).expect("valid Galileo input");
        let pump = tree.event(tree.event_by_name("pump").unwrap());
        assert_eq!(
            pump.model(),
            Some(&FailureModel::Exponential { lambda: 0.5 })
        );
        // The stored base probability is the law at the default mission time.
        assert_eq!(
            pump.probability().value(),
            1.0 - (-0.5f64 * crate::event::DEFAULT_MISSION_TIME).exp()
        );
        let link = tree.event(tree.event_by_name("link").unwrap());
        assert_eq!(
            link.model(),
            Some(&FailureModel::Repairable {
                lambda: 0.1,
                mu: 0.9
            })
        );

        // The writer emits the rates back, and the round trip is exact.
        let written = to_galileo_string(&tree);
        assert!(written.contains("lambda=0.5"), "{written}");
        assert!(written.contains("lambda=0.1 mu=0.9"), "{written}");
        let reparsed = parse_galileo(&written).expect("round trip");
        for id in tree.event_ids() {
            let original = tree.event(id);
            let back = reparsed.event(reparsed.event_by_name(original.name()).unwrap());
            assert_eq!(original.model(), back.model());
            assert_eq!(
                original.probability().value().to_bits(),
                back.probability().value().to_bits(),
                "bit-exact base probability for {}",
                original.name()
            );
        }
    }

    #[test]
    fn reports_helpful_errors() {
        assert!(matches!(
            parse_galileo("toplevel a\n"),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            parse_galileo("toplevel a;\na prob=oops;\n"),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            parse_galileo("toplevel a;\na spare b c;\nb prob=0.1;\nc prob=0.1;\n"),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            parse_galileo("toplevel a;\na and b;\n"),
            Err(FaultTreeError::UnknownNode { .. })
        ));
        assert!(matches!(
            parse_galileo("a and a;\na prob=0.1;\n"),
            Err(FaultTreeError::DuplicateName { .. }) | Err(FaultTreeError::MissingTop)
        ));
        assert!(matches!(
            parse_galileo("toplevel q;\nq 2of3 a b;\na prob=0.1;\nb prob=0.1;\n"),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            parse_galileo("toplevel a;\na lambda=oops;\n"),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            parse_galileo("toplevel a;\na lambda=-1;\n"),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            parse_galileo("toplevel a;\na lambda=0.1 mu=oops;\n"),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            parse_galileo("toplevel a;\na lambda=0.1 nu=0.2;\n"),
            Err(FaultTreeError::Parse { .. })
        ));
    }

    #[test]
    fn missing_toplevel_is_an_error() {
        assert!(matches!(
            parse_galileo("\"a\" prob=0.5;\n"),
            Err(FaultTreeError::MissingTop)
        ));
    }
}
