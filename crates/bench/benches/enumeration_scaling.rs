//! E11 — top-k enumeration through one persistent incremental solver session
//! versus the from-scratch pipeline-per-cut-set baseline, on generated trees.
//! Both paths return identical cut sets; the contrast is pure solver-state
//! reuse (learnt clauses, activities, phases, single Tseitin encoding).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ft_generators::Family;
use mpmcs::{AlgorithmChoice, MpmcsOptions, MpmcsSolver};

fn solver(incremental: bool) -> MpmcsSolver {
    MpmcsSolver::with_options(MpmcsOptions {
        algorithm: AlgorithmChoice::SequentialPortfolio,
        incremental,
        ..MpmcsOptions::new()
    })
}

fn bench_enumeration_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumeration_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    const K: usize = 15;
    for family in [Family::RandomMixed, Family::OrHeavy] {
        for size in [250usize, 500] {
            let tree = family.generate(size, 2020);
            for (mode, incremental) in [("incremental", true), ("scratch", false)] {
                group.bench_with_input(
                    BenchmarkId::from_parameter(format!("{}-{size}-{mode}", family.name())),
                    &incremental,
                    |b, &incremental| {
                        let solver = solver(incremental);
                        b.iter(|| {
                            black_box(
                                solver
                                    .solve_top_k(black_box(&tree), K)
                                    .expect("generated trees have cut sets"),
                            )
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration_scaling);
criterion_main!(benches);
