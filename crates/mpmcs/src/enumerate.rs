//! Enumeration of minimal cut sets in decreasing probability order.
//!
//! The MPMCS machinery naturally extends to ranking: after reporting the
//! optimum, a *blocking clause* excludes it (and all of its supersets) and
//! the next call returns the second most probable minimal cut set, and so on.
//! Running the loop to exhaustion enumerates **all** minimal cut sets of the
//! tree ordered by probability, which subsumes the classic qualitative
//! cut-set analysis.
//!
//! By default the whole loop runs inside **one persistent incremental
//! session** ([`maxsat_solver::IncrementalMaxSat`]): the tree is Tseitin-
//! encoded exactly once, blocking clauses are pushed into the live session,
//! and every query after the first resumes from the learnt clauses, variable
//! activities and saved phases of its predecessors. Setting
//! [`MpmcsOptions::incremental`](crate::MpmcsOptions) to `false` restores
//! the historical from-scratch pipeline per cut set (the baseline of the E11
//! `enumeration-scaling` study).

use std::time::Instant;

use fault_tree::FaultTree;
use maxsat_solver::{MaxSatOutcome, PortfolioSolver};

use crate::encode::MpmcsEncoding;
use crate::error::MpmcsError;
use crate::solver::{MpmcsSolution, MpmcsSolver};
use crate::verify;

/// Exact integer MaxSAT cost of a solution's cut set (the sum of the scaled
/// event weights). Two cut sets tie — either may be enumerated first by a
/// correct solver — exactly when their scaled costs are equal, so this is
/// the key the canonical tie ordering below is built on.
fn scaled_cost(encoding: &MpmcsEncoding, solution: &MpmcsSolution) -> u64 {
    solution
        .cut_set
        .iter()
        .map(|e| encoding.scaled_weights()[e.index()])
        .sum()
}

/// Canonicalises the enumeration output: solutions are ordered by exact
/// scaled cost (which refines the non-increasing probability order) and,
/// within an equal-cost tie group, by cut set. Successive optima of a
/// correct solver already arrive in non-decreasing cost order, so this only
/// permutes within tie groups — it makes exhaustive enumeration order
/// independent of solver internals, so the incremental session and the
/// from-scratch baseline produce byte-identical reports. (For a bounded
/// top-k, *which* members of a tie group straddling the `k` boundary are
/// reported still follows discovery order — deliberately: completing an
/// arbitrarily large boundary tie group could dwarf the requested work.)
fn canonicalize(encoding: &MpmcsEncoding, mut solutions: Vec<MpmcsSolution>) -> Vec<MpmcsSolution> {
    solutions.sort_by(|a, b| {
        scaled_cost(encoding, a)
            .cmp(&scaled_cost(encoding, b))
            .then_with(|| a.cut_set.cmp(&b.cut_set))
    });
    solutions
}

/// How many cut sets to enumerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnumerationLimit {
    /// Enumerate every minimal cut set.
    All,
    /// Stop after at most this many cut sets.
    AtMost(usize),
}

impl EnumerationLimit {
    fn allows(&self, count: usize) -> bool {
        match self {
            EnumerationLimit::All => true,
            EnumerationLimit::AtMost(limit) => count < *limit,
        }
    }
}

impl MpmcsSolver {
    /// Returns the `k` most probable minimal cut sets, in non-increasing
    /// probability order. Fewer than `k` are returned when the tree has fewer
    /// minimal cut sets.
    ///
    /// ```rust
    /// use fault_tree::examples::fire_protection_system;
    /// use mpmcs::MpmcsSolver;
    ///
    /// # fn main() -> Result<(), mpmcs::MpmcsError> {
    /// let tree = fire_protection_system();
    /// let top2 = MpmcsSolver::sequential().solve_top_k(&tree, 2)?;
    /// assert_eq!(top2[0].event_names(&tree), vec!["x1", "x2"]); // p = 0.02
    /// assert_eq!(top2[1].event_names(&tree), vec!["x5", "x6"]); // p = 0.005
    /// assert!(top2[0].probability >= top2[1].probability);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MpmcsError::NoCutSet`] when the tree has no cut set at all,
    /// and propagates internal verification errors.
    pub fn solve_top_k(
        &self,
        tree: &FaultTree,
        k: usize,
    ) -> Result<Vec<MpmcsSolution>, MpmcsError> {
        self.enumerate(tree, EnumerationLimit::AtMost(k))
    }

    /// Enumerates minimal cut sets in non-increasing probability order, up to
    /// the given limit.
    ///
    /// With [`EnumerationLimit::All`] this subsumes the classic qualitative
    /// cut-set analysis, ordered by probability:
    ///
    /// ```rust
    /// use fault_tree::examples::fire_protection_system;
    /// use mpmcs::{EnumerationLimit, MpmcsSolver};
    ///
    /// # fn main() -> Result<(), mpmcs::MpmcsError> {
    /// let tree = fire_protection_system();
    /// let all = MpmcsSolver::sequential().enumerate(&tree, EnumerationLimit::All)?;
    /// assert_eq!(all.len(), 5); // the FPS tree has exactly five minimal cut sets
    /// assert!(all.windows(2).all(|w| w[0].probability >= w[1].probability));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MpmcsError::NoCutSet`] when the tree has no cut set at all,
    /// and propagates internal verification errors.
    pub fn enumerate(
        &self,
        tree: &FaultTree,
        limit: EnumerationLimit,
    ) -> Result<Vec<MpmcsSolution>, MpmcsError> {
        if !limit.allows(0) {
            // `AtMost(0)`: nothing can be reported — do not even encode the
            // tree, let alone run the solver.
            return Ok(Vec::new());
        }
        if self.uses_incremental_enumeration() {
            self.enumerate_incremental(tree, limit, None)
        } else {
            self.enumerate_from_scratch(tree, limit)
        }
    }

    /// Whether enumeration runs through the persistent incremental session.
    /// Requires [`MpmcsOptions::incremental`](crate::MpmcsOptions) and an
    /// algorithm choice the core-guided session can honour — a pure
    /// linear-SAT–UNSAT request has no incremental counterpart (its unit
    /// bound assertions cannot be relaxed for the next, costlier optimum),
    /// so it keeps the per-cut-set pipeline.
    fn uses_incremental_enumeration(&self) -> bool {
        use crate::solver::AlgorithmChoice;
        self.options().incremental && self.options().algorithm != AlgorithmChoice::LinearSu
    }

    /// The incremental enumeration driver: one encoding, one live solver
    /// session, blocking clauses pushed between optima. `threshold` stops
    /// the loop at the first solution whose probability falls below it
    /// (that solution is not reported).
    fn enumerate_incremental(
        &self,
        tree: &FaultTree,
        limit: EnumerationLimit,
        threshold: Option<f64>,
    ) -> Result<Vec<MpmcsSolution>, MpmcsError> {
        let setup_start = Instant::now();
        // Exactly one tree encoding per enumeration call...
        let encoding = self.encode(tree);
        // ...and exactly one solver session shared by every cut set (the
        // configured branching heuristic reaches it through the portfolio's
        // first core-guided entry).
        let mut session = PortfolioSolver::new(
            maxsat_solver::PortfolioConfig {
                sequential: true,
                ..maxsat_solver::PortfolioConfig::default()
            }
            .with_branching(self.options().branching),
        )
        .incremental(encoding.instance());
        // The encoding + session construction is charged to the first
        // reported solution, mirroring what the from-scratch pipeline spends
        // inside every per-solution timer.
        let mut setup = setup_start.elapsed();
        let mut solutions: Vec<MpmcsSolution> = Vec::new();
        while limit.allows(solutions.len()) {
            let start = Instant::now();
            let result = session.solve();
            let duration = start.elapsed() + std::mem::take(&mut setup);
            match result.outcome {
                MaxSatOutcome::Unsatisfiable => {
                    // The cut sets are exhausted (or the tree had none).
                    if solutions.is_empty() {
                        return Err(MpmcsError::NoCutSet);
                    }
                    break;
                }
                MaxSatOutcome::Optimum { ref model, .. } => {
                    let raw_cut = encoding.decode(model);
                    let cut = verify::minimise(tree, &raw_cut);
                    let (log_weight, probability) = encoding.cut_probability(&cut);
                    if self.options().verify {
                        verify::check_solution(tree, &cut, probability)?;
                    }
                    if threshold.is_some_and(|t| probability < t) {
                        break;
                    }
                    session.add_hard(encoding.blocking_clause(&cut));
                    solutions.push(MpmcsSolution {
                        cut_set: cut,
                        probability,
                        log_weight,
                        algorithm: result.stats.algorithm.clone(),
                        stats: result.stats,
                        duration,
                    });
                }
            }
        }
        Ok(canonicalize(&encoding, solutions))
    }

    /// The historical per-cut-set pipeline: a fresh encoding copy grows
    /// blocking clauses and every optimum is solved from scratch. Kept as
    /// the measured baseline of the incremental path (E11) and for the
    /// equivalence regression tests.
    fn enumerate_from_scratch(
        &self,
        tree: &FaultTree,
        limit: EnumerationLimit,
    ) -> Result<Vec<MpmcsSolution>, MpmcsError> {
        let mut encoding = self.encode(tree);
        let mut solutions: Vec<MpmcsSolution> = Vec::new();
        while limit.allows(solutions.len()) {
            match self.solve_encoded(tree, &encoding) {
                Ok(solution) => {
                    encoding.block_cut(&solution.cut_set);
                    solutions.push(solution);
                }
                Err(MpmcsError::NoCutSet) => {
                    if solutions.is_empty() {
                        return Err(MpmcsError::NoCutSet);
                    }
                    break;
                }
                Err(other) => return Err(other),
            }
        }
        Ok(canonicalize(&encoding, solutions))
    }
}

impl MpmcsSolver {
    /// Enumerates every minimal cut set whose probability is at least
    /// `threshold`, in non-increasing probability order.
    ///
    /// This is the "risk triage" view of the enumeration API: rather than a
    /// fixed count, the caller states the probability level below which cut
    /// sets are no longer actionable. An empty vector is returned when even
    /// the MPMCS falls below the threshold.
    ///
    /// # Errors
    ///
    /// Returns [`MpmcsError::NoCutSet`] when the tree has no cut set at all,
    /// and propagates internal verification errors.
    pub fn enumerate_above(
        &self,
        tree: &FaultTree,
        threshold: f64,
    ) -> Result<Vec<MpmcsSolution>, MpmcsError> {
        if self.uses_incremental_enumeration() {
            return self.enumerate_incremental(tree, EnumerationLimit::All, Some(threshold));
        }
        let mut encoding = self.encode(tree);
        let mut solutions: Vec<MpmcsSolution> = Vec::new();
        loop {
            match self.solve_encoded(tree, &encoding) {
                Ok(solution) => {
                    if solution.probability < threshold {
                        break;
                    }
                    encoding.block_cut(&solution.cut_set);
                    solutions.push(solution);
                }
                Err(MpmcsError::NoCutSet) => {
                    if solutions.is_empty() {
                        return Err(MpmcsError::NoCutSet);
                    }
                    break;
                }
                Err(other) => return Err(other),
            }
        }
        Ok(canonicalize(&encoding, solutions))
    }

    /// Enumerates every minimal cut set whose probability is within a factor
    /// of the optimum: all cut sets `K` with `P(K) ≥ P(MPMCS) / factor`.
    ///
    /// # Errors
    ///
    /// Returns [`MpmcsError::NoCutSet`] when the tree has no cut set at all,
    /// and propagates internal verification errors.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1`.
    pub fn enumerate_within_factor(
        &self,
        tree: &FaultTree,
        factor: f64,
    ) -> Result<Vec<MpmcsSolution>, MpmcsError> {
        assert!(factor >= 1.0, "the factor must be at least 1");
        let best = self.solve(tree)?;
        self.enumerate_above(tree, best.probability / factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{AlgorithmChoice, MpmcsOptions};
    use fault_tree::examples::{fire_protection_system, pressure_tank_system};
    use fault_tree::CutSet;

    #[test]
    fn top_k_of_the_fire_protection_system_is_ordered_by_probability() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        let top3 = solver.solve_top_k(&tree, 3).expect("solvable");
        assert_eq!(top3.len(), 3);
        // Candidate MCSs and probabilities:
        // {x1,x2}=0.02, {x3}=0.001, {x4}=0.002, {x5,x6}=0.005, {x5,x7}=0.0025.
        assert_eq!(top3[0].event_names(&tree), vec!["x1", "x2"]);
        assert!((top3[0].probability - 0.02).abs() < 1e-9);
        assert_eq!(top3[1].event_names(&tree), vec!["x5", "x6"]);
        assert!((top3[1].probability - 0.005).abs() < 1e-9);
        assert_eq!(top3[2].event_names(&tree), vec!["x5", "x7"]);
        assert!((top3[2].probability - 0.0025).abs() < 1e-9);
        // Ordering is non-increasing.
        for pair in top3.windows(2) {
            assert!(pair[0].probability >= pair[1].probability - 1e-15);
        }
    }

    #[test]
    fn enumerating_all_mcs_of_the_fps_finds_exactly_five() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        let all = solver
            .enumerate(&tree, EnumerationLimit::All)
            .expect("solvable");
        assert_eq!(all.len(), 5);
        let mut names: Vec<Vec<String>> = all.iter().map(|s| s.event_names(&tree)).collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                vec!["x1".to_string(), "x2".to_string()],
                vec!["x3".to_string()],
                vec!["x4".to_string()],
                vec!["x5".to_string(), "x6".to_string()],
                vec!["x5".to_string(), "x7".to_string()],
            ]
        );
        // Every reported set is a minimal cut set and they are pairwise distinct.
        for solution in &all {
            assert!(tree.is_minimal_cut_set(&solution.cut_set));
        }
        let distinct: std::collections::BTreeSet<CutSet> =
            all.iter().map(|s| s.cut_set.clone()).collect();
        assert_eq!(distinct.len(), all.len());
    }

    #[test]
    fn asking_for_more_than_available_returns_what_exists() {
        let tree = pressure_tank_system();
        let solver = MpmcsSolver::sequential();
        let many = solver.solve_top_k(&tree, 50).expect("solvable");
        // The pressure tank tree has exactly 3 minimal cut sets.
        assert_eq!(many.len(), 3);
        assert!((many[0].probability - 1e-5).abs() < 1e-15);
        assert!((many[1].probability - 5e-6).abs() < 1e-15);
        assert!((many[2].probability - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn top_one_equals_the_plain_solve() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        let single = solver.solve(&tree).expect("solvable");
        let top1 = solver.solve_top_k(&tree, 1).expect("solvable");
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0].cut_set, single.cut_set);
    }

    /// `solve_top_k(_, 0)` / `AtMost(0)` return an empty vector without
    /// running the solver — even on a tree that has no cut set at all (where
    /// a solver run would report `NoCutSet`).
    #[test]
    fn top_zero_returns_empty_without_solving() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        assert_eq!(solver.solve_top_k(&tree, 0).expect("no work"), Vec::new());
        assert_eq!(
            solver
                .enumerate(&tree, EnumerationLimit::AtMost(0))
                .expect("no work"),
            Vec::new()
        );
    }

    /// A tree whose cut sets are exhausted mid-enumeration terminates
    /// cleanly in the incremental path: asking for more than exist returns
    /// what exists, with every solution verified.
    #[test]
    fn exhaustion_mid_enumeration_terminates_cleanly_incrementally() {
        let tree = pressure_tank_system();
        let solver = MpmcsSolver::sequential();
        assert!(solver.options().incremental);
        // The pressure tank tree has exactly 3 minimal cut sets; ask for 50.
        let many = solver.solve_top_k(&tree, 50).expect("solvable");
        assert_eq!(many.len(), 3);
        for solution in &many {
            assert!(tree.is_minimal_cut_set(&solution.cut_set));
        }
        // Full enumeration agrees.
        let all = solver
            .enumerate(&tree, EnumerationLimit::All)
            .expect("solvable");
        assert_eq!(all.len(), 3);
    }

    /// The acceptance check of the incremental refactor: one enumeration
    /// call reuses a single solver session across all cut sets, which the
    /// new `session_calls` counter proves — it accumulates over the whole
    /// session, so it must grow strictly across solutions and its final
    /// value must equal the sum of the per-stage SAT calls.
    #[test]
    fn incremental_enumeration_reuses_one_session() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        let all = solver
            .enumerate(&tree, EnumerationLimit::All)
            .expect("solvable");
        assert_eq!(all.len(), 5);
        // The canonical output order may permute equal-cost tie groups, so
        // compare the per-solution snapshots as a set: one shared session
        // means strictly distinct, growing cumulative counters.
        let mut session_calls: Vec<u64> = all.iter().map(|s| s.stats.session_calls).collect();
        session_calls.sort_unstable();
        for pair in session_calls.windows(2) {
            assert!(
                pair[0] < pair[1],
                "session-cumulative SAT calls must grow across cut sets"
            );
        }
        let per_stage_total: u64 = all.iter().map(|s| s.stats.sat_calls).sum();
        // The last snapshot covers every reported stage (the extra SAT call
        // discovering exhaustion belongs to the session, not to a solution).
        let session_total = *session_calls.last().expect("non-empty");
        assert_eq!(session_total, per_stage_total);

        // The from-scratch baseline, by contrast, restarts the counter for
        // every cut set.
        let scratch_solver = MpmcsSolver::with_options(MpmcsOptions {
            algorithm: AlgorithmChoice::SequentialPortfolio,
            incremental: false,
            ..MpmcsOptions::new()
        });
        let scratch = scratch_solver
            .enumerate(&tree, EnumerationLimit::All)
            .expect("solvable");
        assert_eq!(scratch.len(), 5);
        // Both paths report the same cut sets in the same order.
        for (a, b) in all.iter().zip(&scratch) {
            assert_eq!(a.cut_set, b.cut_set);
            assert!((a.probability - b.probability).abs() < 1e-12);
        }
    }

    /// An explicit linear-SAT–UNSAT request is honoured by enumeration: it
    /// has no incremental counterpart, so it keeps the from-scratch pipeline
    /// and its own algorithm tag instead of being silently rerouted to the
    /// core-guided session.
    #[test]
    fn linear_su_enumeration_keeps_the_linear_algorithm() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::with_options(MpmcsOptions {
            algorithm: AlgorithmChoice::LinearSu,
            ..MpmcsOptions::new()
        });
        let top2 = solver.solve_top_k(&tree, 2).expect("solvable");
        assert_eq!(top2.len(), 2);
        assert!(
            top2.iter().all(|s| s.algorithm.starts_with("linear-su")),
            "{:?}",
            top2.iter().map(|s| s.algorithm.clone()).collect::<Vec<_>>()
        );
    }

    /// Incremental and from-scratch enumeration agree on every generated
    /// family tree (cut sets, order, probabilities).
    #[test]
    fn incremental_enumeration_matches_from_scratch_on_generated_trees() {
        use ft_generators::Family;
        for (family, seed) in [
            (Family::RandomMixed, 11),
            (Family::OrHeavy, 12),
            (Family::AndHeavy, 13),
        ] {
            let tree = family.generate(60, seed);
            let incremental = MpmcsSolver::sequential()
                .solve_top_k(&tree, 8)
                .expect("solvable");
            let scratch = MpmcsSolver::with_options(MpmcsOptions {
                algorithm: AlgorithmChoice::SequentialPortfolio,
                incremental: false,
                ..MpmcsOptions::new()
            })
            .solve_top_k(&tree, 8)
            .expect("solvable");
            assert_eq!(incremental.len(), scratch.len(), "{}", family.name());
            for (a, b) in incremental.iter().zip(&scratch) {
                assert_eq!(a.cut_set, b.cut_set, "{}", family.name());
                assert!((a.probability - b.probability).abs() < 1e-12);
            }
        }
    }
}

#[cfg(test)]
mod threshold_tests {
    use super::*;
    use fault_tree::examples::fire_protection_system;

    #[test]
    fn enumerate_above_keeps_only_cut_sets_at_or_over_the_threshold() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        // Threshold 0.002 keeps {x1,x2}=0.02, {x5,x6}=0.005, {x5,x7}=0.0025 and
        // {x4}=0.002 but drops {x3}=0.001.
        let kept = solver.enumerate_above(&tree, 0.002).expect("solvable");
        assert_eq!(kept.len(), 4);
        assert!(kept.iter().all(|s| s.probability >= 0.002 - 1e-15));
        // A threshold above the optimum returns an empty list (but no error).
        let none = solver.enumerate_above(&tree, 0.5).expect("solvable");
        assert!(none.is_empty());
        // A zero threshold returns every minimal cut set.
        let all = solver.enumerate_above(&tree, 0.0).expect("solvable");
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn enumerate_within_factor_brackets_the_optimum() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::sequential();
        // Factor 5: keep everything with probability >= 0.02/5 = 0.004,
        // i.e. {x1,x2}=0.02 and {x5,x6}=0.005.
        let close = solver
            .enumerate_within_factor(&tree, 5.0)
            .expect("solvable");
        assert_eq!(close.len(), 2);
        assert_eq!(close[0].event_names(&tree), vec!["x1", "x2"]);
        assert_eq!(close[1].event_names(&tree), vec!["x5", "x6"]);
        // Factor 1: only the optimum itself.
        let only = solver
            .enumerate_within_factor(&tree, 1.0)
            .expect("solvable");
        assert_eq!(only.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn enumerate_within_factor_rejects_factors_below_one() {
        let tree = fire_protection_system();
        let _ = MpmcsSolver::sequential().enumerate_within_factor(&tree, 0.5);
    }
}
