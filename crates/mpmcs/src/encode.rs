//! Steps 1–4 of the paper: from a fault tree to a Weighted Partial MaxSAT
//! instance.

use fault_tree::{CutSet, EventId, FaultTree, StructureFormula};
use maxsat_solver::WcnfInstance;
use sat_solver::tseitin::TseitinEncoder;
use sat_solver::{BoolExpr, Lit, Var};

/// How the hard clauses are derived from the fault tree (paper Step 1).
///
/// Both styles produce the same optimum; they are kept side by side to
/// demonstrate (and test) the equivalence argued in Section III of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EncodingStyle {
    /// Assert the failure formula `f(t)` directly over the event variables
    /// `xᵢ` and attach a soft clause `(¬xᵢ)` per event: falsifying `¬xᵢ`
    /// (i.e. including the event in the cut) costs `wᵢ`.
    #[default]
    Direct,
    /// The paper's formulation: build the dual formula `Y(t)` (gates swapped,
    /// events positive, read as `yᵢ = ¬xᵢ`), assert `¬Y(t)`, and attach a
    /// soft clause `(yᵢ)` per event: falsifying `yᵢ` means the event occurs.
    SuccessTree,
}

/// The scaling of real-valued `−ln p` weights to the integer weights required
/// by Weighted Partial MaxSAT (paper Step 3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightScale {
    /// Integer weight units per unit of `−ln p`. The default of `10⁹` keeps
    /// the quantisation error far below any realistic probability resolution.
    pub quantum: f64,
    /// Surrogate `−ln p` value used for probability-zero events (whose true
    /// weight is infinite). The default of `64` corresponds to treating
    /// `p = 0` as `p ≈ 1.6·10⁻²⁸`.
    pub zero_probability_weight: f64,
}

impl Default for WeightScale {
    fn default() -> Self {
        WeightScale {
            quantum: 1e9,
            zero_probability_weight: 64.0,
        }
    }
}

impl WeightScale {
    /// Scales one `−ln p` value to an integer MaxSAT weight.
    ///
    /// Probability-one events map to weight 0 (they are "free"); every other
    /// probability maps to a weight of at least 1 so that the solver still
    /// prefers to leave the event out when possible.
    pub fn scale(&self, log_weight: f64) -> u64 {
        if log_weight <= 0.0 {
            return 0;
        }
        let effective = if log_weight.is_finite() {
            log_weight
        } else {
            self.zero_probability_weight
        };
        let scaled = (effective * self.quantum).round();
        (scaled as u64).max(1)
    }
}

/// A fault tree encoded as a Weighted Partial MaxSAT instance (paper Steps
/// 1–4), together with everything needed to decode models back into cut sets.
#[derive(Clone, Debug)]
pub struct MpmcsEncoding {
    instance: WcnfInstance,
    style: EncodingStyle,
    num_events: usize,
    /// Scaled integer weight per event (0 for probability-one events).
    scaled_weights: Vec<u64>,
    /// Exact `−ln p` per event.
    log_weights: Vec<f64>,
    scale: WeightScale,
}

impl MpmcsEncoding {
    /// Encodes `tree` using the default (direct) style and weight scale.
    pub fn new(tree: &FaultTree) -> Self {
        Self::with_style(tree, EncodingStyle::default(), WeightScale::default())
    }

    /// Encodes `tree` with an explicit style and weight scale.
    pub fn with_style(tree: &FaultTree, style: EncodingStyle, scale: WeightScale) -> Self {
        let formula = StructureFormula::of(tree);
        let num_events = tree.num_events();
        let mut encoder = TseitinEncoder::with_reserved_vars(num_events);
        match style {
            EncodingStyle::Direct => {
                encoder.assert_true(formula.failure_expr());
            }
            EncodingStyle::SuccessTree => {
                // ¬Y(t) over the y variables (paper Step 1).
                let negated = BoolExpr::not(formula.dual_expr().clone());
                encoder.assert_true(&negated);
            }
        }
        let cnf = encoder.into_cnf();
        let mut instance = WcnfInstance::with_vars(cnf.num_vars());
        instance.add_hard_cnf(&cnf);

        let mut scaled_weights = Vec::with_capacity(num_events);
        let mut log_weights = Vec::with_capacity(num_events);
        for event in tree.events() {
            let log_weight = event.probability().log_weight().value();
            let weight = scale.scale(log_weight);
            log_weights.push(log_weight);
            scaled_weights.push(weight);
            if weight > 0 {
                let var = Var::from_index(log_weights.len() - 1);
                let soft_lit = match style {
                    // Prefer the event not to occur.
                    EncodingStyle::Direct => Lit::negative(var),
                    // Prefer yᵢ (= ¬xᵢ) to hold.
                    EncodingStyle::SuccessTree => Lit::positive(var),
                };
                instance.add_soft([soft_lit], weight);
            }
        }
        MpmcsEncoding {
            instance,
            style,
            num_events,
            scaled_weights,
            log_weights,
            scale,
        }
    }

    /// The Weighted Partial MaxSAT instance (paper Step 4).
    pub fn instance(&self) -> &WcnfInstance {
        &self.instance
    }

    /// The encoding style used.
    pub fn style(&self) -> EncodingStyle {
        self.style
    }

    /// The weight scale used.
    pub fn scale(&self) -> WeightScale {
        self.scale
    }

    /// Number of basic events (the first `num_events` MaxSAT variables).
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Scaled integer weight of each event (0 for probability-one events).
    pub fn scaled_weights(&self) -> &[u64] {
        &self.scaled_weights
    }

    /// Exact `−ln p` weight of each event (paper Table I).
    pub fn log_weights(&self) -> &[f64] {
        &self.log_weights
    }

    /// Decodes a MaxSAT model into the set of occurring events.
    pub fn decode(&self, model: &[bool]) -> CutSet {
        (0..self.num_events)
            .filter(|&i| {
                let value = model.get(i).copied().unwrap_or(false);
                match self.style {
                    EncodingStyle::Direct => value,
                    // yᵢ false ⇔ the event occurs.
                    EncodingStyle::SuccessTree => !value,
                }
            })
            .map(EventId::from_index)
            .collect()
    }

    /// The exact total log weight of a cut set, and the corresponding joint
    /// probability via the reverse transformation (paper Step 6).
    pub fn cut_probability(&self, cut: &CutSet) -> (f64, f64) {
        let log_weight: f64 = cut.iter().map(|e| self.log_weights[e.index()]).sum();
        (log_weight, (-log_weight).exp())
    }

    /// The hard *blocking clause* excluding every model that contains all
    /// events of `cut` (the clause demands at least one event to be absent).
    /// The incremental enumeration pushes this clause into its live solver
    /// session; [`MpmcsEncoding::block_cut`] adds it to the instance instead.
    pub fn blocking_clause(&self, cut: &CutSet) -> Vec<Lit> {
        cut.iter()
            .map(|e| {
                let var = Var::from_index(e.index());
                match self.style {
                    EncodingStyle::Direct => Lit::negative(var),
                    EncodingStyle::SuccessTree => Lit::positive(var),
                }
            })
            .collect()
    }

    /// Adds a hard *blocking clause* excluding every model that contains all
    /// events of `cut`. Used by the from-scratch top-k / all-MCS enumeration:
    /// once a minimal cut set has been reported, neither it nor any superset
    /// can be reported again.
    pub fn block_cut(&mut self, cut: &CutSet) {
        let clause = self.blocking_clause(cut);
        self.instance.add_hard(clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::examples::{fire_protection_system, redundant_sensor_network};
    use maxsat_solver::{MaxSatAlgorithm, OllSolver};

    #[test]
    fn weight_scale_handles_boundary_probabilities() {
        let scale = WeightScale::default();
        // p = 1 → free.
        assert_eq!(scale.scale(0.0), 0);
        // p = 0 → finite surrogate.
        let zero = scale.scale(f64::INFINITY);
        assert!(zero > 0);
        assert_eq!(zero, (64.0 * 1e9) as u64);
        // Probabilities extremely close to 1 still cost at least 1.
        assert_eq!(scale.scale(1e-15), 1);
        // Ordinary values scale proportionally.
        assert_eq!(scale.scale(2.0), 2_000_000_000);
    }

    // The expected weights are the paper's printed 5-decimal values; 2.30259
    // happens to round ln(10), which clippy's approx_constant flags.
    #[allow(clippy::approx_constant)]
    #[test]
    fn encoding_matches_table_1_of_the_paper() {
        let tree = fire_protection_system();
        let encoding = MpmcsEncoding::new(&tree);
        assert_eq!(encoding.num_events(), 7);
        let expected = [
            1.60944, 2.30259, 6.90776, 6.21461, 2.99573, 2.30259, 2.99573,
        ];
        for (i, &w) in expected.iter().enumerate() {
            assert!(
                (encoding.log_weights()[i] - w).abs() < 1e-4,
                "event x{} weight {} expected {w}",
                i + 1,
                encoding.log_weights()[i]
            );
        }
        // One soft clause per event (no probability-one events here).
        assert_eq!(encoding.instance().num_soft(), 7);
        assert!(encoding.instance().num_hard() > 0);
    }

    #[test]
    fn both_encoding_styles_yield_the_same_optimal_cut() {
        for tree in [fire_protection_system(), redundant_sensor_network()] {
            let direct =
                MpmcsEncoding::with_style(&tree, EncodingStyle::Direct, WeightScale::default());
            let success = MpmcsEncoding::with_style(
                &tree,
                EncodingStyle::SuccessTree,
                WeightScale::default(),
            );
            let solver = OllSolver::default();
            let a = solver.solve(direct.instance());
            let b = solver.solve(success.instance());
            let cut_a = direct.decode(a.outcome.model().expect("optimum"));
            let cut_b = success.decode(b.outcome.model().expect("optimum"));
            assert_eq!(a.outcome.cost(), b.outcome.cost(), "{}", tree.name());
            assert!(tree.is_cut_set(&cut_a));
            assert!(tree.is_cut_set(&cut_b));
            assert!(
                (cut_a.probability(&tree) - cut_b.probability(&tree)).abs() < 1e-12,
                "{}",
                tree.name()
            );
        }
    }

    // 2.30259 is the paper's printed weight for p = 0.1 (it also rounds
    // ln(10), which clippy's approx_constant flags).
    #[allow(clippy::approx_constant)]
    #[test]
    fn decode_maps_model_bits_to_events() {
        let tree = fire_protection_system();
        let encoding = MpmcsEncoding::new(&tree);
        let mut model = vec![false; encoding.instance().num_vars()];
        model[0] = true;
        model[1] = true;
        let cut = encoding.decode(&model);
        assert_eq!(cut.len(), 2);
        assert_eq!(cut.display_names(&tree), "{x1, x2}");
        let (log_weight, probability) = encoding.cut_probability(&cut);
        assert!((probability - 0.02).abs() < 1e-9);
        assert!((log_weight - (1.60944 + 2.30259)).abs() < 1e-4);
    }

    #[test]
    fn probability_one_events_get_no_soft_clause() {
        use fault_tree::FaultTreeBuilder;
        let mut b = FaultTreeBuilder::new("certain");
        let certain = b.basic_event("certain", 1.0).unwrap();
        let rare = b.basic_event("rare", 0.01).unwrap();
        let top = b.and_gate("top", [certain.into(), rare.into()]).unwrap();
        let tree = b.build(top.into()).unwrap();
        let encoding = MpmcsEncoding::new(&tree);
        assert_eq!(encoding.instance().num_soft(), 1);
        assert_eq!(encoding.scaled_weights()[0], 0);
        assert!(encoding.scaled_weights()[1] > 0);
    }
}
