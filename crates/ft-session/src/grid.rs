//! Mission-time grid specifications (`START:END:STEP`) — shared by the CLI's
//! `--sweep` flag and the HTTP front end's `sweep` query parameter, so both
//! describe exactly the same grids.

/// The most mission times one sweep request may describe — a guard against a
/// typo'd step allocating gigabytes, far above any plotting need.
pub const MAX_SWEEP_POINTS: usize = 100_000;

/// A mission-time grid specification parsed from `<START:END:STEP>`:
/// the times `START, START+STEP, …` up to and including `END`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepRange {
    /// First mission time (non-negative).
    pub start: f64,
    /// Inclusive upper bound on the mission times.
    pub end: f64,
    /// Spacing between consecutive mission times (positive).
    pub step: f64,
}

impl SweepRange {
    /// How many mission times the range describes.
    pub fn points(&self) -> usize {
        // The epsilon keeps an exactly-divisible range (0:10:0.5) from
        // losing its endpoint to floating-point rounding.
        ((self.end - self.start) / self.step + 1e-9).floor() as usize + 1
    }

    /// Materialises the mission-time grid.
    pub fn grid(&self) -> Vec<f64> {
        (0..self.points())
            .map(|i| self.start + i as f64 * self.step)
            .collect()
    }

    /// Parses and validates a `<START:END:STEP>` specification.
    ///
    /// # Errors
    ///
    /// A human-readable description of the problem: malformed or non-finite
    /// numbers, a negative start, a non-positive step, an end before the
    /// start, or a grid beyond [`MAX_SWEEP_POINTS`].
    pub fn parse(text: &str) -> Result<SweepRange, String> {
        let malformed = || {
            format!(
                "a sweep range expects <START:END:STEP>, three numbers like 0:10:0.5, not {text:?}"
            )
        };
        let parts: Vec<&str> = text.split(':').collect();
        if parts.len() != 3 {
            return Err(malformed());
        }
        let mut numbers = [0.0f64; 3];
        for (slot, part) in numbers.iter_mut().zip(&parts) {
            *slot = part.trim().parse().map_err(|_| malformed())?;
            if !slot.is_finite() {
                return Err(malformed());
            }
        }
        let [start, end, step] = numbers;
        if start < 0.0 {
            return Err("the sweep start must be non-negative (mission times)".to_string());
        }
        if step <= 0.0 {
            return Err("the sweep step must be positive".to_string());
        }
        if end < start {
            return Err("the sweep end must not precede the start".to_string());
        }
        let range = SweepRange { start, end, step };
        let points = range.points();
        if points > MAX_SWEEP_POINTS {
            return Err(format!(
                "the sweep describes {points} mission times; the limit is {MAX_SWEEP_POINTS}"
            ));
        }
        Ok(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_parse_and_materialise() {
        let range = SweepRange::parse("0:10:0.5").expect("valid");
        assert_eq!(range.points(), 21);
        let grid = range.grid();
        assert_eq!(grid.first(), Some(&0.0));
        assert_eq!(grid.last(), Some(&10.0));
    }

    #[test]
    fn invalid_ranges_are_rejected_with_reasons() {
        for bad in ["", "1:2", "a:b:c", "1:2:3:4", "-1:2:1", "0:2:0", "3:2:1"] {
            assert!(SweepRange::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        // Too many points.
        assert!(SweepRange::parse("0:1000:0.001").is_err());
    }
}
