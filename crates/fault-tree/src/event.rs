//! Basic events: the leaves of a fault tree.

use std::fmt;

use crate::error::FaultTreeError;
use crate::probability::Probability;

/// Identifier of a basic event (dense index within its [`FaultTree`](crate::FaultTree)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u32);

serde::impl_serde_newtype!(EventId);

impl EventId {
    /// Creates an identifier from a dense index.
    pub fn from_index(index: usize) -> Self {
        EventId(index as u32)
    }

    /// The dense index of this event.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The mission time at which rate-parameterised events are evaluated to
/// obtain their *base* probability (the value stored on the event and used
/// by every non-sweep query): one unit of mission time.
pub const DEFAULT_MISSION_TIME: f64 = 1.0;

/// The time-dependent failure law of a basic event (Fault Tree Handbook
/// semantics), evaluable at any mission time `t`.
///
/// Events without a model are time-invariant: their stored probability holds
/// at every `t`. A model makes the event *sweepable* — mission-time sweeps
/// re-quantify the tree with [`FailureModel::probability_at`] per timepoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FailureModel {
    /// A time-invariant probability (explicitly pinned; equivalent to having
    /// no model at all).
    Fixed(Probability),
    /// A non-repairable exponential failure law: `p(t) = 1 − exp(−λt)`.
    Exponential {
        /// The failure rate `λ ≥ 0` (per unit mission time).
        lambda: f64,
    },
    /// A repairable component's steady-state unavailability ramp:
    /// `p(t) = λ/(λ+μ) · (1 − exp(−(λ+μ)t))`.
    Repairable {
        /// The failure rate `λ ≥ 0`.
        lambda: f64,
        /// The repair rate `μ ≥ 0`.
        mu: f64,
    },
}

impl FailureModel {
    /// An exponential failure law with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultTreeError::InvalidRate`] when `lambda` is negative or
    /// not finite.
    pub fn exponential(lambda: f64) -> Result<Self, FaultTreeError> {
        check_rate(lambda)?;
        Ok(FailureModel::Exponential { lambda })
    }

    /// A repairable unavailability law with failure rate `lambda` and repair
    /// rate `mu`.
    ///
    /// # Errors
    ///
    /// Returns [`FaultTreeError::InvalidRate`] when either rate is negative
    /// or not finite.
    pub fn repairable(lambda: f64, mu: f64) -> Result<Self, FaultTreeError> {
        check_rate(lambda)?;
        check_rate(mu)?;
        Ok(FailureModel::Repairable { lambda, mu })
    }

    /// The probability of the event at mission time `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is negative or not finite — mission times come from
    /// validated sweep grids.
    pub fn probability_at(&self, t: f64) -> Probability {
        assert!(
            t.is_finite() && t >= 0.0,
            "mission time {t} must be finite and non-negative"
        );
        let value = match self {
            FailureModel::Fixed(p) => return *p,
            FailureModel::Exponential { lambda } => 1.0 - (-lambda * t).exp(),
            FailureModel::Repairable { lambda, mu } => {
                let total = lambda + mu;
                if total == 0.0 {
                    0.0
                } else {
                    lambda / total * (1.0 - (-total * t).exp())
                }
            }
        };
        Probability::new(value.clamp(0.0, 1.0)).expect("failure laws stay within [0, 1]")
    }

    /// The probability at the default mission time
    /// ([`DEFAULT_MISSION_TIME`]) — the base probability parsers store for
    /// rate-parameterised events.
    pub fn base_probability(&self) -> Probability {
        self.probability_at(DEFAULT_MISSION_TIME)
    }
}

fn check_rate(rate: f64) -> Result<(), FaultTreeError> {
    if rate.is_finite() && rate >= 0.0 {
        Ok(())
    } else {
        Err(FaultTreeError::InvalidRate { value: rate })
    }
}

// Externally tagged, like `NodeId`: `{"fixed": p}`, `{"exponential": λ}`,
// `{"repairable": {"lambda": λ, "mu": μ}}` — re-validated on the way in.
impl serde::Serialize for FailureModel {
    fn to_value(&self) -> serde::Value {
        let (tag, body) = match self {
            FailureModel::Fixed(p) => ("fixed", serde::Serialize::to_value(p)),
            FailureModel::Exponential { lambda } => {
                ("exponential", serde::Serialize::to_value(lambda))
            }
            FailureModel::Repairable { lambda, mu } => {
                let mut rates = serde::Map::new();
                rates.insert("lambda".to_string(), serde::Serialize::to_value(lambda));
                rates.insert("mu".to_string(), serde::Serialize::to_value(mu));
                ("repairable", serde::Value::Object(rates))
            }
        };
        let mut tagged = serde::Map::new();
        tagged.insert(tag.to_string(), body);
        serde::Value::Object(tagged)
    }
}

impl serde::Deserialize for FailureModel {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(p) = value.get("fixed") {
            Ok(FailureModel::Fixed(serde::Deserialize::from_value(p)?))
        } else if let Some(lambda) = value.get("exponential") {
            FailureModel::exponential(serde::Deserialize::from_value(lambda)?)
                .map_err(|e| serde::Error::custom(e.to_string()))
        } else if let Some(rates) = value.get("repairable") {
            let lambda = serde::de::field(rates, "lambda")?;
            let mu = serde::de::field(rates, "mu")?;
            FailureModel::repairable(lambda, mu).map_err(|e| serde::Error::custom(e.to_string()))
        } else {
            Err(serde::Error::custom(format!(
                "invalid failure model: expected an object tagged `fixed`, `exponential` or `repairable`, found {}",
                value.kind()
            )))
        }
    }
}

/// A basic event: an atomic failure mode with a probability of occurrence.
///
/// Basic events model hardware failures, human errors, software faults,
/// communication failures, cyber attacks, and any other leaf-level condition
/// of the analysed system. An optional [`FailureModel`] additionally makes
/// the probability a function of mission time.
#[derive(Clone, Debug, PartialEq)]
pub struct BasicEvent {
    name: String,
    probability: Probability,
    description: Option<String>,
    model: Option<FailureModel>,
}

serde::impl_serde_struct!(BasicEvent { name, probability } optional { description, model });

impl BasicEvent {
    /// Creates a basic event.
    pub fn new(name: impl Into<String>, probability: Probability) -> Self {
        BasicEvent {
            name: name.into(),
            probability,
            description: None,
            model: None,
        }
    }

    /// Creates a basic event with a free-form description.
    pub fn with_description(
        name: impl Into<String>,
        probability: Probability,
        description: impl Into<String>,
    ) -> Self {
        BasicEvent {
            name: name.into(),
            probability,
            description: Some(description.into()),
            model: None,
        }
    }

    /// Creates a rate-parameterised basic event. The stored base probability
    /// is the model evaluated at the default mission time
    /// ([`FailureModel::base_probability`]).
    pub fn with_model(name: impl Into<String>, model: FailureModel) -> Self {
        BasicEvent {
            name: name.into(),
            probability: model.base_probability(),
            description: None,
            model: Some(model),
        }
    }

    /// The event name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The probability of occurrence.
    pub fn probability(&self) -> Probability {
        self.probability
    }

    /// Optional free-form description.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// Replaces the probability (used by sensitivity analyses).
    pub fn set_probability(&mut self, probability: Probability) {
        self.probability = probability;
    }

    /// The time-dependent failure model, when the event has one.
    pub fn model(&self) -> Option<&FailureModel> {
        self.model.as_ref()
    }

    /// Attaches (or removes) the time-dependent failure model. The stored
    /// base probability is untouched.
    pub fn set_model(&mut self, model: Option<FailureModel>) {
        self.model = model;
    }

    /// The probability of the event at mission time `t`: the failure model
    /// evaluated at `t`, or the stored probability for time-invariant
    /// events.
    ///
    /// # Panics
    ///
    /// Panics when the event has a model and `t` is negative or not finite
    /// (see [`FailureModel::probability_at`]).
    pub fn probability_at(&self, t: f64) -> Probability {
        match &self.model {
            Some(model) => model.probability_at(t),
            None => self.probability,
        }
    }
}

impl fmt::Display for BasicEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (p={})", self.name, self.probability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_round_trips_its_index() {
        let id = EventId::from_index(12);
        assert_eq!(id.index(), 12);
        assert_eq!(id.to_string(), "e12");
    }

    #[test]
    fn basic_event_accessors() {
        let p = Probability::new(0.2).unwrap();
        let mut event = BasicEvent::with_description("x1", p, "sensor 1 fails");
        assert_eq!(event.name(), "x1");
        assert_eq!(event.probability().value(), 0.2);
        assert_eq!(event.description(), Some("sensor 1 fails"));
        assert!(event.to_string().contains("x1"));
        event.set_probability(Probability::new(0.5).unwrap());
        assert_eq!(event.probability().value(), 0.5);
    }

    #[test]
    fn serde_round_trip() {
        let event = BasicEvent::new("x3", Probability::new(0.001).unwrap());
        let json = serde_json::to_string(&event).unwrap();
        let back: BasicEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(event, back);
    }

    #[test]
    fn failure_models_follow_the_handbook_laws() {
        let exp = FailureModel::exponential(0.5).unwrap();
        assert_eq!(exp.probability_at(0.0).value(), 0.0);
        assert!((exp.probability_at(2.0).value() - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
        // Monotone non-decreasing, capped at 1.
        assert!(exp.probability_at(10.0).value() <= 1.0);
        assert!(exp.probability_at(3.0).value() > exp.probability_at(2.0).value());

        let rep = FailureModel::repairable(0.2, 0.8).unwrap();
        assert_eq!(rep.probability_at(0.0).value(), 0.0);
        // Ramps towards the steady-state unavailability λ/(λ+μ) = 0.2.
        assert!((rep.probability_at(1e6).value() - 0.2).abs() < 1e-12);

        // Degenerate repairable law: no failures means zero unavailability.
        let idle = FailureModel::repairable(0.0, 0.0).unwrap();
        assert_eq!(idle.probability_at(5.0).value(), 0.0);

        let fixed = FailureModel::Fixed(Probability::new(0.3).unwrap());
        assert_eq!(fixed.probability_at(0.0).value(), 0.3);
        assert_eq!(fixed.probability_at(42.0).value(), 0.3);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        for rate in [-0.1, f64::NAN, f64::INFINITY] {
            assert!(FailureModel::exponential(rate).is_err(), "{rate}");
            assert!(FailureModel::repairable(rate, 0.1).is_err(), "{rate}");
            assert!(FailureModel::repairable(0.1, rate).is_err(), "{rate}");
        }
    }

    #[test]
    fn modelled_events_evaluate_at_time_and_round_trip() {
        let event = BasicEvent::with_model("pump", FailureModel::exponential(0.25).unwrap());
        // The base probability is the model at the default mission time.
        assert_eq!(
            event.probability().value(),
            1.0 - (-0.25f64 * DEFAULT_MISSION_TIME).exp()
        );
        assert_eq!(
            event.probability_at(4.0).value(),
            1.0 - (-1.0f64).exp(),
            "bit-exact law evaluation"
        );
        let json = serde_json::to_string(&event).unwrap();
        let back: BasicEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(event, back);

        let repairable =
            BasicEvent::with_model("link", FailureModel::repairable(0.1, 0.9).unwrap());
        let json = serde_json::to_string(&repairable).unwrap();
        let back: BasicEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(repairable, back);

        // Time-invariant events answer their stored probability at every t.
        let plain = BasicEvent::new("x", Probability::new(0.4).unwrap());
        assert_eq!(plain.probability_at(0.0).value(), 0.4);
        assert_eq!(plain.probability_at(100.0).value(), 0.4);
    }

    #[test]
    fn bad_failure_model_documents_are_rejected() {
        assert!(serde_json::from_str::<FailureModel>(r#"{"exponential": -1.0}"#).is_err());
        assert!(serde_json::from_str::<FailureModel>(r#"{"weibull": 1.0}"#).is_err());
        assert!(
            serde_json::from_str::<FailureModel>(r#"{"repairable": {"lambda": 0.1}}"#).is_err()
        );
    }
}
