//! Monte Carlo estimation and uncertainty propagation.
//!
//! Two complementary uses of sampling in classical FTA, both of which scale
//! to trees far beyond the reach of the exact (exponential) oracle:
//!
//! * [`estimate_top_probability`] — estimate `P(top)` by sampling basic-event
//!   occurrence vectors and evaluating the structure function, with a
//!   standard error and a 95% confidence interval;
//! * [`propagate_uncertainty`] — treat the basic-event probabilities
//!   themselves as uncertain (a multiplicative *error factor*, the usual
//!   practice in probabilistic risk assessment), sample probability vectors,
//!   and report percentiles of the induced top-event probability as well as
//!   how often the identity of the MPMCS changes.

use fault_tree::{CutSet, FaultTree, Probability};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration shared by the Monte Carlo routines.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of samples to draw.
    pub samples: usize,
    /// Seed for the deterministic random number generator.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            samples: 100_000,
            seed: 0x5eed,
        }
    }
}

/// A Monte Carlo estimate with its sampling uncertainty.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloEstimate {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Lower end of the 95% confidence interval (clamped to `[0, 1]`).
    pub ci95_low: f64,
    /// Upper end of the 95% confidence interval (clamped to `[0, 1]`).
    pub ci95_high: f64,
    /// Number of samples used.
    pub samples: usize,
}

/// Estimates the top-event probability by direct sampling of the basic
/// events.
///
/// Each sample draws an occurrence vector (event `i` occurs with probability
/// `p_i`, independently) and evaluates the structure function; the estimate
/// is the fraction of samples in which the top event occurred.
pub fn estimate_top_probability(tree: &FaultTree, config: &MonteCarloConfig) -> MonteCarloEstimate {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let probabilities: Vec<f64> = tree
        .events()
        .iter()
        .map(|e| e.probability().value())
        .collect();
    let samples = config.samples.max(1);
    let mut hits = 0usize;
    let mut occurred = vec![false; probabilities.len()];
    for _ in 0..samples {
        for (slot, &p) in occurred.iter_mut().zip(&probabilities) {
            *slot = rng.gen::<f64>() < p;
        }
        if tree.evaluate(&occurred) {
            hits += 1;
        }
    }
    let mean = hits as f64 / samples as f64;
    // Binomial standard error.
    let std_error = (mean * (1.0 - mean) / samples as f64).sqrt();
    MonteCarloEstimate {
        mean,
        std_error,
        ci95_low: (mean - 1.96 * std_error).max(0.0),
        ci95_high: (mean + 1.96 * std_error).min(1.0),
        samples,
    }
}

/// How the uncertainty on each basic-event probability is modelled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UncertaintyModel {
    /// Log-uniform between `p / error_factor` and `p · error_factor`
    /// (clamped to `[0, 1]`), the standard "error factor" idiom of
    /// probabilistic risk assessment.
    ErrorFactor(f64),
    /// Uniform on `[p · (1 − spread), p · (1 + spread)]`, clamped to `[0, 1]`.
    RelativeSpread(f64),
}

/// Summary statistics of an uncertainty-propagation run.
#[derive(Clone, Debug, PartialEq)]
pub struct UncertaintyReport {
    /// Mean of the sampled top-event probabilities.
    pub mean: f64,
    /// 5th percentile of the sampled top-event probabilities.
    pub p05: f64,
    /// Median of the sampled top-event probabilities.
    pub p50: f64,
    /// 95th percentile of the sampled top-event probabilities.
    pub p95: f64,
    /// Fraction of samples in which the maximum-probability MCS differs from
    /// the nominal one (how robust the MPMCS identity is to data uncertainty).
    pub mpmcs_switch_rate: f64,
    /// Number of probability vectors sampled.
    pub samples: usize,
}

/// Propagates uncertainty on the basic-event probabilities to the top event
/// and to the MPMCS choice.
///
/// The top-event probability for each sampled probability vector is computed
/// from the provided minimal cut sets with the min-cut upper bound (the
/// standard MCS-based quantification), so the routine needs the cut sets but
/// never re-runs an exact analysis per sample. The nominal MPMCS is the cut
/// set with the highest probability under the tree's nominal probabilities.
///
/// # Panics
///
/// Panics if `cut_sets` is empty.
pub fn propagate_uncertainty(
    tree: &FaultTree,
    cut_sets: &[CutSet],
    model: UncertaintyModel,
    config: &MonteCarloConfig,
) -> UncertaintyReport {
    assert!(
        !cut_sets.is_empty(),
        "uncertainty propagation needs at least one minimal cut set"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let nominal: Vec<f64> = tree
        .events()
        .iter()
        .map(|e| e.probability().value())
        .collect();
    let nominal_mpmcs = index_of_best(cut_sets, &nominal);
    let samples = config.samples.max(1);
    let mut tops = Vec::with_capacity(samples);
    let mut switches = 0usize;
    let mut perturbed = vec![0.0; nominal.len()];
    for _ in 0..samples {
        for (slot, &p) in perturbed.iter_mut().zip(&nominal) {
            *slot = sample_probability(p, model, &mut rng);
        }
        tops.push(mcub(cut_sets, &perturbed));
        if index_of_best(cut_sets, &perturbed) != nominal_mpmcs {
            switches += 1;
        }
    }
    tops.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = tops.iter().sum::<f64>() / samples as f64;
    UncertaintyReport {
        mean,
        p05: percentile(&tops, 0.05),
        p50: percentile(&tops, 0.50),
        p95: percentile(&tops, 0.95),
        mpmcs_switch_rate: switches as f64 / samples as f64,
        samples,
    }
}

/// Samples one perturbed probability according to the uncertainty model.
fn sample_probability(p: f64, model: UncertaintyModel, rng: &mut StdRng) -> f64 {
    let value = match model {
        UncertaintyModel::ErrorFactor(ef) => {
            let ef = ef.max(1.0);
            let low = (p / ef).max(f64::MIN_POSITIVE);
            let high = (p * ef).min(1.0);
            let u: f64 = rng.gen();
            (low.ln() + u * (high.ln() - low.ln())).exp()
        }
        UncertaintyModel::RelativeSpread(spread) => {
            let spread = spread.clamp(0.0, 1.0);
            let u: f64 = rng.gen();
            p * (1.0 - spread + 2.0 * spread * u)
        }
    };
    value.clamp(0.0, 1.0)
}

fn cut_probability(cut: &CutSet, probabilities: &[f64]) -> f64 {
    cut.iter().map(|e| probabilities[e.index()]).product()
}

fn mcub(cut_sets: &[CutSet], probabilities: &[f64]) -> f64 {
    1.0 - cut_sets
        .iter()
        .map(|c| 1.0 - cut_probability(c, probabilities))
        .product::<f64>()
}

fn index_of_best(cut_sets: &[CutSet], probabilities: &[f64]) -> usize {
    let mut best = 0;
    let mut best_p = f64::NEG_INFINITY;
    for (i, cut) in cut_sets.iter().enumerate() {
        let p = cut_probability(cut, probabilities);
        if p > best_p {
            best_p = p;
            best = i;
        }
    }
    best
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let position = q * (sorted.len() - 1) as f64;
    let low = position.floor() as usize;
    let high = position.ceil() as usize;
    if low == high {
        sorted[low]
    } else {
        let fraction = position - low as f64;
        sorted[low] * (1.0 - fraction) + sorted[high] * fraction
    }
}

/// Builds a copy of the tree with every probability multiplied by `factor`
/// (clamped to `[0, 1]`); a convenience for stress scenarios ("what if every
/// component were twice as likely to fail?").
pub fn scale_probabilities(tree: &FaultTree, factor: f64) -> FaultTree {
    let events: Vec<_> = tree
        .events()
        .iter()
        .map(|event| {
            let scaled = (event.probability().value() * factor).clamp(0.0, 1.0);
            let mut event = event.clone();
            event.set_probability(Probability::new(scaled).expect("clamped to [0,1]"));
            event
        })
        .collect();
    FaultTree::from_parts(tree.name(), events, tree.gates().to_vec(), tree.top())
        .expect("scaling probabilities keeps the tree valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute;
    use crate::mocus::Mocus;
    use fault_tree::examples::fire_protection_system;

    #[test]
    fn sampling_converges_to_the_exact_probability() {
        let tree = fire_protection_system();
        let exact = brute::exact_top_event_probability(&tree);
        let estimate = estimate_top_probability(
            &tree,
            &MonteCarloConfig {
                samples: 200_000,
                seed: 7,
            },
        );
        assert!(
            (estimate.mean - exact).abs() < 5.0 * estimate.std_error.max(1e-4),
            "estimate {} vs exact {}",
            estimate.mean,
            exact
        );
        assert!(estimate.ci95_low <= exact && exact <= estimate.ci95_high);
    }

    #[test]
    fn estimates_are_deterministic_for_a_fixed_seed() {
        let tree = fire_protection_system();
        let config = MonteCarloConfig {
            samples: 10_000,
            seed: 42,
        };
        let a = estimate_top_probability(&tree, &config);
        let b = estimate_top_probability(&tree, &config);
        assert_eq!(a, b);
        let c = estimate_top_probability(
            &tree,
            &MonteCarloConfig {
                samples: 10_000,
                seed: 43,
            },
        );
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn uncertainty_report_brackets_the_nominal_probability() {
        let tree = fire_protection_system();
        let cut_sets = Mocus::new(&tree).minimal_cut_sets().unwrap();
        let report = propagate_uncertainty(
            &tree,
            &cut_sets,
            UncertaintyModel::ErrorFactor(3.0),
            &MonteCarloConfig {
                samples: 5_000,
                seed: 11,
            },
        );
        assert!(report.p05 <= report.p50 && report.p50 <= report.p95);
        let nominal = crate::quant::min_cut_upper_bound(&tree, &cut_sets);
        assert!(report.p05 < nominal && nominal < report.p95);
        // With an error factor of 3 the MPMCS {x1,x2} (0.02) can be overtaken
        // by {x5,x6} (0.005) only occasionally.
        assert!(report.mpmcs_switch_rate < 0.5);
        assert_eq!(report.samples, 5_000);
    }

    #[test]
    fn zero_spread_leaves_probabilities_unchanged() {
        let tree = fire_protection_system();
        let cut_sets = Mocus::new(&tree).minimal_cut_sets().unwrap();
        let report = propagate_uncertainty(
            &tree,
            &cut_sets,
            UncertaintyModel::RelativeSpread(0.0),
            &MonteCarloConfig {
                samples: 200,
                seed: 3,
            },
        );
        let nominal = crate::quant::min_cut_upper_bound(&tree, &cut_sets);
        assert!((report.p50 - nominal).abs() < 1e-12);
        assert_eq!(report.mpmcs_switch_rate, 0.0);
    }

    #[test]
    fn scale_probabilities_clamps_to_one() {
        let tree = fire_protection_system();
        let doubled = scale_probabilities(&tree, 10.0);
        for (before, after) in tree.events().iter().zip(doubled.events()) {
            let expected = (before.probability().value() * 10.0).min(1.0);
            assert!((after.probability().value() - expected).abs() < 1e-12);
        }
        let exact_before = brute::exact_top_event_probability(&tree);
        let exact_after = brute::exact_top_event_probability(&doubled);
        assert!(exact_after >= exact_before);
    }
}
