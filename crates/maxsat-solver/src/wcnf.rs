//! Reading and writing Weighted Partial MaxSAT instances in the WCNF format.
//!
//! Both the classic header format (`p wcnf <vars> <clauses> <top>`, hard
//! clauses carry the `top` weight) and the 2022 MaxSAT-Evaluation format
//! (no header, hard clauses start with `h`) are supported.

use std::fmt;
use std::io::{self, BufRead, Write};

use sat_solver::Lit;

use crate::instance::WcnfInstance;

/// Errors produced while parsing WCNF input.
#[derive(Debug)]
pub enum ParseWcnfError {
    /// An I/O error occurred while reading.
    Io(io::Error),
    /// A token could not be parsed.
    InvalidToken {
        /// Line number (1-based).
        line: usize,
        /// Offending token.
        token: String,
    },
    /// The `p wcnf` header is malformed.
    InvalidHeader {
        /// Line number (1-based).
        line: usize,
    },
    /// A clause line is empty or lacks the terminating zero.
    MalformedClause {
        /// Line number (1-based).
        line: usize,
    },
}

impl fmt::Display for ParseWcnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseWcnfError::Io(e) => write!(f, "i/o error while reading WCNF: {e}"),
            ParseWcnfError::InvalidToken { line, token } => {
                write!(f, "invalid WCNF token {token:?} on line {line}")
            }
            ParseWcnfError::InvalidHeader { line } => {
                write!(f, "invalid WCNF header on line {line}")
            }
            ParseWcnfError::MalformedClause { line } => {
                write!(f, "malformed WCNF clause on line {line}")
            }
        }
    }
}

impl std::error::Error for ParseWcnfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseWcnfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseWcnfError {
    fn from(e: io::Error) -> Self {
        ParseWcnfError::Io(e)
    }
}

/// Parses a WCNF instance from a reader (classic or 2022 format).
///
/// # Errors
///
/// Returns [`ParseWcnfError`] on I/O failures or malformed input.
pub fn parse_wcnf<R: BufRead>(reader: R) -> Result<WcnfInstance, ParseWcnfError> {
    let mut instance = WcnfInstance::new();
    let mut top: Option<u64> = None;
    let mut declared_vars = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() >= 4 && parts[1] == "wcnf" {
                declared_vars = parts[2]
                    .parse()
                    .map_err(|_| ParseWcnfError::InvalidHeader { line: lineno + 1 })?;
                top = if parts.len() >= 5 {
                    Some(
                        parts[4]
                            .parse()
                            .map_err(|_| ParseWcnfError::InvalidHeader { line: lineno + 1 })?,
                    )
                } else {
                    None
                };
                continue;
            }
            return Err(ParseWcnfError::InvalidHeader { line: lineno + 1 });
        }
        let mut tokens = line.split_whitespace().peekable();
        let first = match tokens.peek() {
            Some(t) => *t,
            None => continue,
        };
        let is_hard_2022 = first == "h";
        let weight: Option<u64> = if is_hard_2022 {
            tokens.next();
            None
        } else {
            let w: u64 = first.parse().map_err(|_| ParseWcnfError::InvalidToken {
                line: lineno + 1,
                token: first.to_string(),
            })?;
            tokens.next();
            Some(w)
        };
        let mut lits = Vec::new();
        let mut terminated = false;
        for token in tokens {
            let value: i64 = token.parse().map_err(|_| ParseWcnfError::InvalidToken {
                line: lineno + 1,
                token: token.to_string(),
            })?;
            if value == 0 {
                terminated = true;
                break;
            }
            lits.push(Lit::from_dimacs(value));
        }
        if !terminated {
            return Err(ParseWcnfError::MalformedClause { line: lineno + 1 });
        }
        match (weight, top) {
            (None, _) => instance.add_hard(lits),
            (Some(w), Some(t)) if w >= t => instance.add_hard(lits),
            (Some(0), _) => {} // zero-weight soft clauses carry no information
            (Some(w), _) => instance.add_soft(lits, w),
        }
    }
    instance.ensure_vars(declared_vars);
    Ok(instance)
}

/// Parses a WCNF instance from a string.
///
/// # Errors
///
/// See [`parse_wcnf`].
pub fn parse_wcnf_str(input: &str) -> Result<WcnfInstance, ParseWcnfError> {
    parse_wcnf(input.as_bytes())
}

/// Writes an instance in the classic `p wcnf` format.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_wcnf<W: Write>(writer: &mut W, instance: &WcnfInstance) -> io::Result<()> {
    let top = instance.total_soft_weight() + 1;
    writeln!(
        writer,
        "p wcnf {} {} {}",
        instance.num_vars(),
        instance.num_hard() + instance.num_soft(),
        top
    )?;
    for clause in instance.hard_clauses() {
        write!(writer, "{top} ")?;
        for lit in clause {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    for soft in instance.soft_clauses() {
        write!(writer, "{} ", soft.weight)?;
        for lit in &soft.lits {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders an instance to a WCNF string.
pub fn to_wcnf_string(instance: &WcnfInstance) -> String {
    let mut buffer = Vec::new();
    write_wcnf(&mut buffer, instance).expect("writing to a Vec cannot fail");
    String::from_utf8(buffer).expect("WCNF output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxSatAlgorithm, OllSolver};
    use sat_solver::Var;

    #[test]
    fn parses_the_classic_format() {
        let text = "c comment\np wcnf 3 4 100\n100 1 2 0\n100 -1 3 0\n5 -2 0\n7 -3 0\n";
        let inst = parse_wcnf_str(text).expect("valid WCNF");
        assert_eq!(inst.num_vars(), 3);
        assert_eq!(inst.num_hard(), 2);
        assert_eq!(inst.num_soft(), 2);
        assert_eq!(inst.total_soft_weight(), 12);
    }

    #[test]
    fn parses_the_2022_format() {
        let text = "h 1 2 0\n3 -1 0\n4 -2 0\n";
        let inst = parse_wcnf_str(text).expect("valid WCNF");
        assert_eq!(inst.num_hard(), 1);
        assert_eq!(inst.num_soft(), 2);
        let result = OllSolver::default().solve(&inst);
        assert_eq!(result.outcome.cost(), Some(3));
    }

    #[test]
    fn round_trips_through_the_writer() {
        let mut inst = WcnfInstance::with_vars(2);
        inst.add_hard([
            Lit::positive(Var::from_index(0)),
            Lit::positive(Var::from_index(1)),
        ]);
        inst.add_soft([Lit::negative(Var::from_index(0))], 4);
        inst.add_soft([Lit::negative(Var::from_index(1))], 9);
        let text = to_wcnf_string(&inst);
        let parsed = parse_wcnf_str(&text).expect("round trip");
        assert_eq!(parsed.num_hard(), inst.num_hard());
        assert_eq!(parsed.num_soft(), inst.num_soft());
        assert_eq!(parsed.total_soft_weight(), inst.total_soft_weight());
        let a = OllSolver::default().solve(&inst);
        let b = OllSolver::default().solve(&parsed);
        assert_eq!(a.outcome.cost(), b.outcome.cost());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(matches!(
            parse_wcnf_str("p wcnf x 1 10\n"),
            Err(ParseWcnfError::InvalidHeader { .. })
        ));
        assert!(matches!(
            parse_wcnf_str("10 1 2\n"),
            Err(ParseWcnfError::MalformedClause { .. })
        ));
        assert!(matches!(
            parse_wcnf_str("10 1 z 0\n"),
            Err(ParseWcnfError::InvalidToken { .. })
        ));
    }
}
