//! The JSON value model shared by the `serde` and `serde_json` substitutes.

use std::fmt;
use std::ops::Index;

/// A JSON number: either an exact 64-bit integer or a double.
///
/// Integers and floats that denote the same quantity (e.g. `1` and `1.0`)
/// compare equal, so values survive a print/parse round trip that normalises
/// `1.0` to `1`.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// An integer that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
}

impl Number {
    /// Builds a number from a (possibly wide) integer, falling back to a
    /// float when it exceeds the `i64` range.
    pub fn from_i128(value: i128) -> Self {
        match i64::try_from(value) {
            Ok(small) => Number::Int(small),
            Err(_) => Number::Float(value as f64),
        }
    }

    /// Builds a number from a double.
    pub fn from_f64(value: f64) -> Self {
        Number::Float(value)
    }

    /// The value as a double.
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(n) => n as f64,
            Number::Float(x) => x,
        }
    }

    /// The value as a wide integer, when it is one (floats qualify only if
    /// they are finite and integral).
    pub fn as_i128(self) -> Option<i128> {
        match self {
            Number::Int(n) => Some(i128::from(n)),
            Number::Float(x) if x.is_finite() && x.fract() == 0.0 => Some(x as i128),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

/// A JSON object preserving insertion order (documents stay human-diffable).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key/value pair, replacing any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (existing, slot) in &mut self.entries {
            if *existing == key {
                return Some(std::mem::replace(slot, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(existing, _)| existing == key)
            .map(|(_, value)| value)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries
            .iter()
            .map(|(key, value)| (key.as_str(), value))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (key, value) in iter {
            map.insert(key, value);
        }
        map
    }
}

/// A JSON document tree, mirroring `serde_json::Value`.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` when the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, when the value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, when the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a double, when the value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as an `i64`, when it is an integral number in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i128().and_then(|wide| i64::try_from(wide).ok()),
            _ => None,
        }
    }

    /// The number as a `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_i128().and_then(|wide| u64::try_from(wide).ok()),
            _ => None,
        }
    }

    /// The number as a wide integer, when it is integral.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(n) => n.as_i128(),
            _ => None,
        }
    }

    /// The element vector, when the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(elements) => Some(elements),
            _ => None,
        }
    }

    /// The object, when the value is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

macro_rules! impl_value_int_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i128() == Some(*other as i128)
            }
        }
    )*};
}

impl_value_int_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

const NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// Indexing never panics: missing keys and non-objects yield `null`,
    /// matching `serde_json`'s behaviour.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Out-of-range indices and non-arrays yield `null`.
    fn index(&self, index: usize) -> &Value {
        self.as_array()
            .and_then(|elements| elements.get(index))
            .unwrap_or(&NULL)
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(n) => write!(f, "{n}"),
            // Rust's shortest-round-trip formatting; non-finite values have
            // no JSON representation and are rendered as null by the writer.
            Number::Float(x) => write!(f, "{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_compare_across_kinds() {
        assert_eq!(Number::Int(3), Number::Float(3.0));
        assert_ne!(Number::Int(3), Number::Float(3.5));
        assert_eq!(Number::from_i128(1 << 40), Number::Int(1 << 40));
    }

    #[test]
    fn indexing_is_total() {
        let mut map = Map::new();
        map.insert("k".to_string(), Value::Bool(true));
        let value = Value::Object(map);
        assert_eq!(value["k"], Value::Bool(true));
        assert!(value["missing"].is_null());
        assert!(value["missing"]["deeper"].is_null());
        assert!(Value::Array(vec![])[3].is_null());
    }

    #[test]
    fn map_insert_replaces_existing_keys() {
        let mut map = Map::new();
        map.insert("a".to_string(), Value::Bool(false));
        let old = map.insert("a".to_string(), Value::Bool(true));
        assert_eq!(old, Some(Value::Bool(false)));
        assert_eq!(map.len(), 1);
        assert_eq!(map.get("a"), Some(&Value::Bool(true)));
    }
}
