//! Library backing the `mpmcs4fta` command line tool.
//!
//! The original MPMCS4FTA tool is a command-line program that reads a fault
//! tree, computes the Maximum Probability Minimal Cut Set, and writes the
//! result as JSON. This crate reproduces that workflow: argument parsing,
//! input-format detection (JSON or Galileo), solving, and JSON report
//! generation, all exposed as a library so it can be unit tested and reused.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bdd_engine::VariableOrdering;
use fault_tree::parser::{galileo, json};
use fault_tree::{examples, FaultTree};
use ft_backend::{AnalysisCache, BackendKind, BackendSolution, Budget, DEFAULT_CACHE_BYTES};
use ft_batch::{run_batch, BatchConfig, BatchManifest};
use ft_generators::{random_tree, RandomTreeConfig};
use ft_session::{Analyzer, SessionError, Termination};
use mpmcs::{AlgorithmChoice, BranchingChoice, EnumerationLimit, MpmcsOptions, MpmcsSolver};

/// Errors surfaced to the command line user.
#[derive(Debug)]
pub enum CliError {
    /// Command line arguments could not be interpreted.
    Usage(String),
    /// The input file could not be read.
    Io(std::io::Error),
    /// The input could not be parsed as a fault tree.
    Parse(fault_tree::FaultTreeError),
    /// The solver failed.
    Solve(mpmcs::MpmcsError),
    /// A classical analysis (MOCUS, BDD) exceeded its budget or failed.
    Analysis(String),
    /// A batch manifest could not be built or read.
    Batch(ft_batch::BatchError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "cannot read input: {e}"),
            CliError::Parse(e) => write!(f, "cannot parse fault tree: {e}"),
            CliError::Solve(e) => write!(f, "solver error: {e}"),
            CliError::Analysis(message) => write!(f, "analysis error: {message}"),
            CliError::Batch(e) => write!(f, "batch error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<fault_tree::FaultTreeError> for CliError {
    fn from(e: fault_tree::FaultTreeError) -> Self {
        CliError::Parse(e)
    }
}

impl From<mpmcs::MpmcsError> for CliError {
    fn from(e: mpmcs::MpmcsError) -> Self {
        CliError::Solve(e)
    }
}

impl From<ft_batch::BatchError> for CliError {
    fn from(e: ft_batch::BatchError) -> Self {
        CliError::Batch(e)
    }
}

/// The usage string printed on `--help` (stdout, exit 0) and appended to
/// argument errors (stderr, exit 2).
pub const USAGE: &str = "\
mpmcs4fta — Maximum Probability Minimal Cut Sets for Fault Tree Analysis

USAGE:
    mpmcs4fta [OPTIONS] <INPUT>
    mpmcs4fta [OPTIONS] --example fps|tank|sensors|scada|crossing|hydraulics
    mpmcs4fta [OPTIONS] --generate <NODES> [--seed <SEED>]
    mpmcs4fta [OPTIONS] --batch <DIR|MANIFEST> [--jobs <N>] [--importance]
    mpmcs4fta serve [--port <P>] [--workers <N>] [--cache-bytes <B>]

MODES:
    <INPUT>                     Analyse one fault tree from a file, in JSON
                                (.json) or Galileo (.dft/.galileo/anything
                                else) format
    --example <NAME>            Analyse one of the built-in example systems
    --generate <NODES>          Analyse a seeded random tree of ~NODES nodes
    --batch <DIR|MANIFEST>      Analyse a whole fleet in one process: every
                                model file under DIR (recursively), or the
                                trees + generated workloads listed in a JSON
                                MANIFEST; prints one aggregated JSON report
                                with per-tree results in input order
    serve                       Run the HTTP front end: register trees and
                                answer every analysis above over a socket,
                                with chunked streaming of solution sets
    --help, -h                  Show this message

OPTIONS:
    --format <json|galileo>     Force the input format (default: by extension)
    --backend <NAME>            maxsat (default) | bdd | mocus | auto
                                Which analysis engine answers the mpmcs
                                queries; auto picks per tree from structural
                                features (event/gate counts, module count,
                                cut-set estimate, event sharing)
    --cross-check               Run the chosen backend AND a reference backend
                                (maxsat, or bdd when maxsat is chosen), assert
                                they report identical minimal cut sets, and
                                report per-backend timings; exits non-zero on
                                any mismatch (mpmcs analysis only)
    --bdd-ordering <NAME>       depth-first (default) | natural — the BDD
                                variable ordering (bdd backend and the
                                importance table's exact probability)
    --preprocess                Run the modular divide-and-conquer pass:
                                simplify the tree, split it at independent
                                modules, solve the pieces separately and
                                compose (shrinks encodings for every backend;
                                per-cut-set solver stats become aggregates)
    --algorithm <NAME>          portfolio | sequential | oll | linear-su
                                (maxsat backend only; default: portfolio;
                                batch default: sequential, which keeps batch
                                reports deterministic)
    --branching <NAME>          vsids (default) | random — the SAT decision
                                heuristic of the MaxSAT backend's solvers
                                (maxsat backend only; random is a baseline
                                for heuristic experiments)
    --analysis <NAME>           mpmcs (default) | path-set | importance | modules |
                                stability | dot | ascii   (single-tree modes only)
    --top-k <N>                 Report the N most probable minimal cut sets
                                (per tree in batch mode)
    --all                       Report every minimal cut set (single-tree only)
    --stats                     Include detailed solver statistics (conflicts,
                                propagations, restarts, learnt-clause reuse
                                across incremental calls, inprocessing rounds,
                                clause-arena compactions) in the JSON report
                                (mpmcs analysis and batch mode)
    --timeout-ms <N>            Per-query wall-clock budget in milliseconds
                                (mpmcs analysis and batch mode). A query that
                                hits the deadline stops cleanly and reports
                                the canonical solution prefix it had proven,
                                marked \"truncated\": true; the process exits
                                with code 3 when any result was truncated
    --max-solutions <N>         Cap the number of reported solutions per query
                                (mpmcs analysis and batch mode); capped
                                results are marked \"truncated\": true and
                                exit with code 3
    --cache                     Share one content-addressed analysis cache
                                across the run: complete answers are keyed on
                                the canonical weighted hash of the (sub)tree
                                and replayed bit-identically for repeated or
                                isomorphic trees and modules (mpmcs analysis
                                and batch mode). Counters appear in the
                                summary, and — like timings — are kept out of
                                deterministic batch report comparisons
    --cache-bytes <N>           Byte budget of the --cache table (default
                                67108864 = 64 MiB); least-recently-used
                                entries are evicted beyond it. Implies --cache
    --sweep <START:END:STEP>    Mission-time sweep (mpmcs analysis and batch
                                mode): report the top-event probability at
                                every time START, START+STEP, ... <= END.
                                The structure is solved once (BDD compile /
                                cut-set enumeration) and re-quantified per
                                point, each point bit-identical to the same
                                query against the tree evaluated at that time
    --sweep-format <json|csv>   Output of a single-tree --sweep: json
                                (default; grid + probabilities arrays) or csv
                                (t,probability rows, ready for plotting)
    --output <FILE>             Write the JSON report to FILE instead of stdout
    --quiet                     Suppress the human-readable summary on stderr

BATCH OPTIONS:
    --jobs <N>                  Worker threads (default: all available cores)
    --importance                Also compute the per-tree importance table

SERVE OPTIONS:
    --port <P>                  TCP port to listen on (default: 0 — an
                                ephemeral port, printed on startup)
    --host <ADDR>               Bind address (default: 127.0.0.1)
    --workers <N>               Request worker threads (default: 4); further
                                connections queue, and beyond the queue the
                                server sheds with 503 + Retry-After
    --cache-bytes <B>           Enable the shared content-addressed analysis
                                cache with a byte budget, shared by every
                                connection
    --quiet                     Suppress the shutdown summary on stderr

ANALYSES:
    mpmcs        the Maximum Probability Minimal Cut Set (paper pipeline)
    path-set     maximum-reliability minimal path sets (dual problem)
    importance   Birnbaum / Fussell-Vesely / RAW / RRW / criticality table
    modules      independent modules and modular quantification
    stability    MPMCS stability margins under probability perturbations
    dot          Graphviz DOT rendering with the MPMCS highlighted
    ascii        indented textual rendering of the tree
";

/// Which analysis the tool runs on the loaded tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisKind {
    /// The paper's MPMCS pipeline (default).
    #[default]
    Mpmcs,
    /// Maximum-reliability minimal path sets (the dual optimisation).
    PathSet,
    /// The per-event importance table.
    Importance,
    /// Module detection and modular quantification.
    Modules,
    /// MPMCS stability margins.
    Stability,
    /// Graphviz DOT output with the MPMCS highlighted.
    Dot,
    /// Indented ASCII rendering of the tree.
    Ascii,
}

/// How the fault tree is obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSource {
    /// Read from a file (with an optional format override).
    File {
        /// Path to the input file.
        path: PathBuf,
        /// Forced format, if any.
        format: Option<InputFormat>,
    },
    /// Use one of the built-in examples.
    Example(String),
    /// Generate a random tree of roughly this many nodes.
    Generated {
        /// Target total node count.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
}

/// Supported input formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// The JSON document format.
    Json,
    /// The Galileo textual format.
    Galileo,
}

// The mission-time grid specification behind `--sweep <START:END:STEP>` now
// lives in the facade so the HTTP front end's `sweep` endpoint describes
// exactly the same grids; re-exported here for the historical CLI API.
pub use ft_session::{SweepRange, MAX_SWEEP_POINTS};

/// Output format of a single-tree `--sweep` curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepFormat {
    /// A JSON object carrying the grid and the probability curve (default).
    #[default]
    Json,
    /// `t,probability` CSV rows, ready for plotting tools.
    Csv,
}

/// Options of the `serve` subcommand (the HTTP front end).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Interface to bind (default `127.0.0.1`).
    pub host: String,
    /// TCP port to bind; `0` (the default) picks an ephemeral port, which
    /// is printed on startup.
    pub port: u16,
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Attach a shared analysis cache of this many bytes.
    pub cache_bytes: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            host: "127.0.0.1".to_string(),
            port: 0,
            workers: 4,
            cache_bytes: None,
        }
    }
}

/// The top-level mode the invocation selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliMode {
    /// `--help`: print the usage text on stdout and exit successfully.
    Help,
    /// Analyse one fault tree.
    Single(InputSource),
    /// Analyse a fleet of fault trees: a directory of model files or a JSON
    /// batch manifest.
    Batch(PathBuf),
    /// `serve`: run the HTTP front end until interrupted.
    Serve(ServeOptions),
}

/// Parsed command line options.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// What the invocation does.
    pub mode: CliMode,
    /// Which analysis to run (single-tree modes).
    pub analysis: AnalysisKind,
    /// Which MaxSAT strategy to use (`None` = the mode's default: parallel
    /// portfolio for single trees, deterministic sequential for batches).
    pub algorithm: Option<AlgorithmChoice>,
    /// Which SAT decision heuristic the MaxSAT backend's solvers use
    /// (default: VSIDS).
    pub branching: BranchingChoice,
    /// Which analysis engine answers the MPMCS queries.
    pub backend: BackendKind,
    /// Run a second (reference) backend and assert identical cut sets.
    pub cross_check: bool,
    /// The BDD variable ordering.
    pub bdd_ordering: VariableOrdering,
    /// Run the modular divide-and-conquer preprocessing pass.
    pub preprocess: bool,
    /// How many cut sets to report (`None` = just the MPMCS).
    pub top_k: Option<usize>,
    /// Report all minimal cut sets.
    pub all: bool,
    /// Where to write the JSON report (`None` = stdout).
    pub output: Option<PathBuf>,
    /// Suppress the human-readable summary.
    pub quiet: bool,
    /// Batch worker threads (`0` = all available cores).
    pub jobs: usize,
    /// Compute per-tree importance tables in batch mode.
    pub importance: bool,
    /// Include detailed solver statistics in the JSON report (kept out of
    /// the deterministic batch rendering, like timings).
    pub stats: bool,
    /// Per-query wall-clock budget in milliseconds (`None` = unlimited).
    pub timeout_ms: Option<u64>,
    /// Per-query cap on reported solutions (`None` = uncapped).
    pub max_solutions: Option<usize>,
    /// Share one content-addressed analysis cache across the run.
    pub cache: bool,
    /// Byte budget of the `--cache` table (`None` = the default 64 MiB).
    pub cache_bytes: Option<usize>,
    /// Mission-time sweep grid (`--sweep`; `None` = point queries).
    pub sweep: Option<SweepRange>,
    /// Output format of a single-tree `--sweep` curve.
    pub sweep_format: SweepFormat,
}

impl CliOptions {
    /// The per-query [`Budget`] implied by the parsed flags.
    pub fn budget(&self) -> Budget {
        Budget::from_limits(self.timeout_ms, self.max_solutions)
    }

    /// `true` when any budget flag was given — the JSON output then carries
    /// the explicit `truncated` / `termination` envelope.
    pub fn budgeted(&self) -> bool {
        self.timeout_ms.is_some() || self.max_solutions.is_some()
    }

    /// The shared analysis cache implied by the parsed flags, when `--cache`
    /// was given.
    pub fn analysis_cache(&self) -> Option<Arc<AnalysisCache>> {
        self.cache.then(|| {
            Arc::new(AnalysisCache::new(
                self.cache_bytes.unwrap_or(DEFAULT_CACHE_BYTES),
            ))
        })
    }
}

/// Parses command line arguments (excluding the program name).
///
/// `--help` is not an error: it yields [`CliMode::Help`], which `main` turns
/// into the usage text on stdout and a zero exit code.
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the problem.
pub fn parse_args<I, S>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut input: Option<InputSource> = None;
    let mut batch: Option<PathBuf> = None;
    let mut format: Option<InputFormat> = None;
    let mut analysis = AnalysisKind::Mpmcs;
    let mut algorithm: Option<AlgorithmChoice> = None;
    let mut branching = BranchingChoice::Vsids;
    let mut branching_given = false;
    let mut backend = BackendKind::MaxSat;
    let mut cross_check = false;
    let mut bdd_ordering = VariableOrdering::DepthFirst;
    let mut preprocess = false;
    let mut top_k: Option<usize> = None;
    let mut all = false;
    let mut output: Option<PathBuf> = None;
    let mut quiet = false;
    let mut generate: Option<usize> = None;
    let mut seed = 42u64;
    let mut seed_given = false;
    let mut jobs = 0usize;
    let mut jobs_given = false;
    let mut importance = false;
    let mut stats = false;
    let mut timeout_ms: Option<u64> = None;
    let mut max_solutions: Option<usize> = None;
    let mut cache = false;
    let mut cache_bytes: Option<usize> = None;
    let mut sweep: Option<SweepRange> = None;
    let mut sweep_format = SweepFormat::Json;
    let mut sweep_format_given = false;

    let args: Vec<String> = args.into_iter().map(Into::into).collect();
    // `serve` is a subcommand with its own small flag vocabulary.
    if args.first().map(String::as_str) == Some("serve") {
        return parse_serve_args(&args[1..]);
    }
    let mut i = 0;
    let usage = |message: &str| CliError::Usage(message.to_string());
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match arg {
            "--help" | "-h" => {
                return Ok(CliOptions {
                    mode: CliMode::Help,
                    analysis,
                    algorithm,
                    branching,
                    backend,
                    cross_check,
                    bdd_ordering,
                    preprocess,
                    top_k,
                    all,
                    output,
                    quiet,
                    jobs,
                    importance,
                    stats,
                    timeout_ms,
                    max_solutions,
                    cache,
                    cache_bytes,
                    sweep,
                    sweep_format,
                })
            }
            "--format" => {
                format = Some(match value("--format")?.as_str() {
                    "json" => InputFormat::Json,
                    "galileo" | "dft" => InputFormat::Galileo,
                    other => return Err(CliError::Usage(format!("unknown format {other:?}"))),
                })
            }
            "--algorithm" => {
                algorithm = Some(match value("--algorithm")?.as_str() {
                    "portfolio" => AlgorithmChoice::Portfolio,
                    "sequential" => AlgorithmChoice::SequentialPortfolio,
                    "oll" => AlgorithmChoice::Oll,
                    "linear-su" | "linear" => AlgorithmChoice::LinearSu,
                    other => return Err(CliError::Usage(format!("unknown algorithm {other:?}"))),
                })
            }
            "--branching" => {
                branching_given = true;
                branching = match value("--branching")?.as_str() {
                    "vsids" => BranchingChoice::Vsids,
                    "random" => BranchingChoice::Random,
                    other => return Err(CliError::Usage(format!("unknown branching {other:?}"))),
                }
            }
            "--backend" => {
                let name = value("--backend")?;
                backend = BackendKind::parse(&name)
                    .ok_or_else(|| CliError::Usage(format!("unknown backend {name:?}")))?
            }
            "--cross-check" => cross_check = true,
            "--bdd-ordering" => {
                let name = value("--bdd-ordering")?;
                bdd_ordering = VariableOrdering::parse(&name)
                    .ok_or_else(|| CliError::Usage(format!("unknown BDD ordering {name:?}")))?
            }
            "--preprocess" => preprocess = true,
            "--analysis" => {
                analysis = match value("--analysis")?.as_str() {
                    "mpmcs" | "cut-set" => AnalysisKind::Mpmcs,
                    "path-set" | "pathset" | "path" => AnalysisKind::PathSet,
                    "importance" => AnalysisKind::Importance,
                    "modules" | "module" => AnalysisKind::Modules,
                    "stability" => AnalysisKind::Stability,
                    "dot" | "graphviz" => AnalysisKind::Dot,
                    "ascii" | "text" => AnalysisKind::Ascii,
                    other => return Err(CliError::Usage(format!("unknown analysis {other:?}"))),
                }
            }
            "--top-k" => {
                top_k = Some(value("--top-k")?.parse().map_err(|_| {
                    CliError::Usage("--top-k expects a positive integer".to_string())
                })?)
            }
            "--all" => all = true,
            "--output" => output = Some(PathBuf::from(value("--output")?)),
            "--quiet" => quiet = true,
            "--batch" => batch = Some(PathBuf::from(value("--batch")?)),
            "--jobs" => {
                jobs_given = true;
                jobs = value("--jobs")?.parse().map_err(|_| {
                    CliError::Usage("--jobs expects a non-negative integer".to_string())
                })?
            }
            "--importance" => importance = true,
            "--stats" => stats = true,
            "--timeout-ms" => {
                timeout_ms = Some(value("--timeout-ms")?.parse().map_err(|_| {
                    CliError::Usage("--timeout-ms expects a millisecond count".to_string())
                })?)
            }
            "--max-solutions" => {
                max_solutions = Some(value("--max-solutions")?.parse().map_err(|_| {
                    CliError::Usage("--max-solutions expects a positive integer".to_string())
                })?)
            }
            "--sweep" => sweep = Some(parse_sweep_range(&value("--sweep")?)?),
            "--sweep-format" => {
                sweep_format_given = true;
                sweep_format = match value("--sweep-format")?.as_str() {
                    "json" => SweepFormat::Json,
                    "csv" => SweepFormat::Csv,
                    other => {
                        return Err(CliError::Usage(format!("unknown sweep format {other:?}")))
                    }
                }
            }
            "--cache" => cache = true,
            "--cache-bytes" => {
                cache_bytes = Some(value("--cache-bytes")?.parse().map_err(|_| {
                    CliError::Usage("--cache-bytes expects a byte count".to_string())
                })?)
            }
            "--example" => input = Some(InputSource::Example(value("--example")?)),
            "--generate" => {
                generate =
                    Some(value("--generate")?.parse().map_err(|_| {
                        CliError::Usage("--generate expects a node count".to_string())
                    })?)
            }
            "--seed" => {
                seed_given = true;
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError::Usage("--seed expects an integer".to_string()))?
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option {other:?}")))
            }
            path => {
                if input.is_some() {
                    return Err(usage("multiple inputs given"));
                }
                input = Some(InputSource::File {
                    path: PathBuf::from(path),
                    format: None,
                });
            }
        }
        i += 1;
    }
    if let Some(nodes) = generate {
        if input.is_some() {
            return Err(usage("multiple inputs given"));
        }
        input = Some(InputSource::Generated { nodes, seed });
    }
    if top_k == Some(0) {
        return Err(usage("--top-k must be at least 1"));
    }
    if max_solutions == Some(0) {
        return Err(usage("--max-solutions must be at least 1"));
    }
    if cache_bytes == Some(0) {
        return Err(usage("--cache-bytes must be at least 1"));
    }
    // An explicit byte budget is an explicit request for the cache.
    if cache_bytes.is_some() {
        cache = true;
    }
    if (timeout_ms.is_some() || max_solutions.is_some()) && cross_check {
        return Err(usage(
            "--timeout-ms / --max-solutions cannot be combined with --cross-check \
             (a cross-check needs both engines' complete answers)",
        ));
    }
    if sweep_format_given && sweep.is_none() {
        return Err(usage("--sweep-format requires --sweep"));
    }
    if sweep.is_some() && cross_check {
        return Err(usage(
            "--sweep cannot be combined with --cross-check (cross-checks compare \
             cut-set enumerations; sweeps report a probability curve)",
        ));
    }
    if algorithm.is_some() && matches!(backend, BackendKind::Bdd | BackendKind::Mocus) {
        return Err(usage(
            "--algorithm only applies to the maxsat backend (and to auto when it resolves to maxsat)",
        ));
    }
    if branching_given && matches!(backend, BackendKind::Bdd | BackendKind::Mocus) {
        return Err(usage(
            "--branching only applies to the maxsat backend (and to auto when it resolves to maxsat)",
        ));
    }
    let mode = match (batch, input) {
        (Some(_), Some(_)) => {
            return Err(usage("--batch cannot be combined with a single-tree input"))
        }
        (Some(path), None) => {
            if all {
                return Err(usage("--all is not supported in batch mode; use --top-k"));
            }
            if cross_check {
                return Err(usage(
                    "--cross-check is a single-tree mode; batch runs one backend per tree",
                ));
            }
            if analysis != AnalysisKind::Mpmcs {
                return Err(usage(
                    "--analysis is not supported in batch mode (batch runs the MPMCS pipeline)",
                ));
            }
            if format.is_some() {
                return Err(usage(
                    "--format is not supported in batch mode (formats are detected per file)",
                ));
            }
            if seed_given {
                return Err(usage(
                    "--seed only applies to --generate; set seeds in the manifest's generated entries",
                ));
            }
            if sweep_format_given {
                return Err(usage(
                    "--sweep-format only applies to single-tree sweeps \
                     (batch reports embed the curves in the JSON report)",
                ));
            }
            CliMode::Batch(path)
        }
        (None, Some(mut input)) => {
            if jobs_given {
                return Err(usage("--jobs only applies to --batch mode"));
            }
            if importance {
                return Err(usage(
                    "--importance only applies to --batch mode; use --analysis importance for one tree",
                ));
            }
            if stats && analysis != AnalysisKind::Mpmcs {
                return Err(usage(
                    "--stats only applies to the mpmcs analysis and to --batch mode",
                ));
            }
            if cache && analysis != AnalysisKind::Mpmcs {
                return Err(usage(
                    "--cache only applies to the mpmcs analysis and to --batch mode",
                ));
            }
            if (timeout_ms.is_some() || max_solutions.is_some()) && analysis != AnalysisKind::Mpmcs
            {
                return Err(usage(
                    "--timeout-ms / --max-solutions only apply to the mpmcs analysis and to --batch mode",
                ));
            }
            if analysis != AnalysisKind::Mpmcs
                && (backend != BackendKind::MaxSat || cross_check || preprocess)
            {
                return Err(usage(
                    "--backend / --cross-check / --preprocess only apply to the mpmcs analysis and to --batch mode",
                ));
            }
            if sweep.is_some() && analysis != AnalysisKind::Mpmcs {
                return Err(usage(
                    "--sweep only applies to the mpmcs analysis and to --batch mode",
                ));
            }
            if sweep.is_some() && (all || top_k.is_some()) {
                return Err(usage(
                    "--sweep reports the top-event probability curve; \
                     it cannot be combined with --all / --top-k",
                ));
            }
            if let (InputSource::File { format: slot, .. }, Some(forced)) = (&mut input, format) {
                *slot = Some(forced);
            }
            CliMode::Single(input)
        }
        (None, None) => return Err(usage("no input given")),
    };
    Ok(CliOptions {
        mode,
        analysis,
        algorithm,
        branching,
        backend,
        cross_check,
        bdd_ordering,
        preprocess,
        top_k,
        all,
        output,
        quiet,
        jobs,
        importance,
        stats,
        timeout_ms,
        max_solutions,
        cache,
        cache_bytes,
        sweep,
        sweep_format,
    })
}

/// A [`CliOptions`] carrying only a mode — the `serve` subcommand ignores
/// the single-tree analysis flags.
fn serve_cli_options(mode: CliMode) -> CliOptions {
    CliOptions {
        mode,
        analysis: AnalysisKind::Mpmcs,
        algorithm: None,
        branching: BranchingChoice::Vsids,
        backend: BackendKind::MaxSat,
        cross_check: false,
        bdd_ordering: VariableOrdering::DepthFirst,
        preprocess: false,
        top_k: None,
        all: false,
        output: None,
        quiet: false,
        jobs: 0,
        importance: false,
        stats: false,
        timeout_ms: None,
        max_solutions: None,
        cache: false,
        cache_bytes: None,
        sweep: None,
        sweep_format: SweepFormat::Json,
    }
}

/// Parses the flags of the `serve` subcommand.
fn parse_serve_args(args: &[String]) -> Result<CliOptions, CliError> {
    let mut serve = ServeOptions::default();
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match arg {
            "--help" | "-h" => return Ok(serve_cli_options(CliMode::Help)),
            "--port" => {
                serve.port = value("--port")?
                    .parse()
                    .map_err(|_| CliError::Usage("--port expects a TCP port number".to_string()))?
            }
            "--workers" => {
                serve.workers = value("--workers")?.parse().map_err(|_| {
                    CliError::Usage("--workers expects a positive integer".to_string())
                })?;
                if serve.workers == 0 {
                    return Err(CliError::Usage("--workers must be at least 1".to_string()));
                }
            }
            "--cache-bytes" => {
                let bytes: usize = value("--cache-bytes")?.parse().map_err(|_| {
                    CliError::Usage("--cache-bytes expects a byte count".to_string())
                })?;
                if bytes == 0 {
                    return Err(CliError::Usage(
                        "--cache-bytes must be at least 1".to_string(),
                    ));
                }
                serve.cache_bytes = Some(bytes);
            }
            "--host" => serve.host = value("--host")?,
            "--quiet" => quiet = true,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown serve option {other:?} (serve takes --port, --workers, \
                     --cache-bytes, --host, --quiet)"
                )))
            }
        }
        i += 1;
    }
    let mut options = serve_cli_options(CliMode::Serve(serve));
    options.quiet = quiet;
    Ok(options)
}

/// `serve`: run the HTTP front end until a termination signal arrives,
/// then drain gracefully and report the admission counters.
fn run_serve(serve: &ServeOptions) -> Result<RunOutput, CliError> {
    ft_server::signal::reset();
    ft_server::signal::install();
    let handle = ft_server::Server::start(ft_server::ServerConfig {
        host: serve.host.clone(),
        port: serve.port,
        workers: serve.workers,
        cache_bytes: serve.cache_bytes,
        ..ft_server::ServerConfig::default()
    })?;
    // Printed unconditionally: with `--port 0` this line is the only way
    // to learn the bound port.
    eprintln!(
        "mpmcs4fta serving on http://{} ({} workers{}); Ctrl-C to stop",
        handle.addr(),
        serve.workers,
        match serve.cache_bytes {
            Some(bytes) => format!(", {bytes}-byte shared cache"),
            None => String::new(),
        }
    );
    while !ft_server::signal::interrupted() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let counters = handle.counters();
    handle.shutdown();
    let output = serde_json::to_string_pretty(&serde_json::json!({
        "accepted": counters.accepted,
        "requests": counters.requests,
        "shed": counters.shed,
        "streamed": counters.streamed,
    }))
    .expect("counter reports always serialise");
    Ok(RunOutput {
        output,
        summary: format!(
            "server stopped: {} requests served on {} connections, {} shed\n",
            counters.requests, counters.accepted, counters.shed
        ),
        truncated: false,
    })
}

/// Parses the `--sweep` value `<START:END:STEP>` into a validated range.
/// The grid semantics live in [`ft_session::SweepRange`], shared with the
/// HTTP front end's `sweep` endpoint.
fn parse_sweep_range(text: &str) -> Result<SweepRange, CliError> {
    SweepRange::parse(text).map_err(|reason| CliError::Usage(format!("--sweep: {reason}")))
}

/// Loads the fault tree described by a single-tree input source.
///
/// # Errors
///
/// I/O and parse errors are reported as [`CliError`].
pub fn load_tree(input: &InputSource) -> Result<FaultTree, CliError> {
    match input {
        InputSource::Example(name) => match name.as_str() {
            "fps" | "fire" => Ok(examples::fire_protection_system()),
            "tank" | "pressure" => Ok(examples::pressure_tank_system()),
            "sensors" | "voting" => Ok(examples::redundant_sensor_network()),
            "scada" | "water" => Ok(examples::water_treatment_scada()),
            "crossing" | "railway" => Ok(examples::railway_level_crossing()),
            "hydraulics" | "aircraft" => Ok(examples::aircraft_hydraulic_system()),
            other => Err(CliError::Usage(format!(
                "unknown example {other:?}; available: fps, tank, sensors, scada, crossing, hydraulics"
            ))),
        },
        InputSource::Generated { nodes, seed } => Ok(random_tree(
            &RandomTreeConfig::with_total_nodes(*nodes),
            *seed,
        )),
        InputSource::File { path, format } => {
            let text = fs::read_to_string(path)?;
            let format = format.unwrap_or_else(|| {
                if path.extension().and_then(|e| e.to_str()) == Some("json") {
                    InputFormat::Json
                } else {
                    InputFormat::Galileo
                }
            });
            let tree = match format {
                InputFormat::Json => json::from_json_str(&text)?,
                InputFormat::Galileo => galileo::parse_galileo(&text)?,
            };
            Ok(tree)
        }
    }
}

/// The result of one CLI run: the machine-readable output, the
/// human-readable summary, and whether any answer was truncated by a
/// `--timeout-ms` / `--max-solutions` budget (mapped to exit code 3).
#[derive(Clone, Debug)]
pub struct RunOutput {
    /// The machine-readable output (JSON, or DOT/ASCII for the rendering
    /// analyses).
    pub output: String,
    /// The human-readable summary printed on stderr.
    pub summary: String,
    /// `true` when a budget stopped a query early; the JSON output then
    /// carries `"truncated": true`.
    pub truncated: bool,
}

/// Runs the selected mode and returns the machine-readable output (JSON, or
/// DOT/ASCII text for the rendering analyses) plus a human-readable summary.
/// For [`CliMode::Help`] the usage text is returned as the output.
///
/// This is the historical pair-returning entry point;
/// [`run_with_status`] additionally reports budget truncation for the
/// distinct exit code.
///
/// # Errors
///
/// Solver failures are reported as [`CliError::Solve`]; budget overruns of
/// the classical analyses as [`CliError::Analysis`]; manifest problems as
/// [`CliError::Batch`].
pub fn run(options: &CliOptions) -> Result<(String, String), CliError> {
    run_with_status(options).map(|result| (result.output, result.summary))
}

/// Like [`run`], also reporting whether any answer was truncated by a
/// budget (the binary exits with code 3 in that case).
///
/// # Errors
///
/// See [`run`].
pub fn run_with_status(options: &CliOptions) -> Result<RunOutput, CliError> {
    let complete = |(output, summary): (String, String)| RunOutput {
        output,
        summary,
        truncated: false,
    };
    let input = match &options.mode {
        CliMode::Help => {
            return Ok(RunOutput {
                output: USAGE.to_string(),
                summary: String::new(),
                truncated: false,
            })
        }
        CliMode::Batch(path) => return run_batch_mode(options, path),
        CliMode::Serve(serve) => return run_serve(serve),
        CliMode::Single(input) => input,
    };
    let tree = load_tree(input)?;
    match options.analysis {
        AnalysisKind::Mpmcs if options.sweep.is_some() => run_sweep(options, &tree),
        AnalysisKind::Mpmcs => run_mpmcs(options, &tree),
        AnalysisKind::PathSet => run_path_set(options, &tree).map(complete),
        AnalysisKind::Importance => run_importance(options, &tree).map(complete),
        AnalysisKind::Modules => run_modules(&tree).map(complete),
        AnalysisKind::Stability => run_stability(&tree).map(complete),
        AnalysisKind::Dot => run_dot(options, &tree).map(complete),
        AnalysisKind::Ascii => Ok(RunOutput {
            output: fault_tree::export::to_ascii(&tree),
            summary: format!("tree: {} rendered as text\n", tree.name()),
            truncated: false,
        }),
    }
}

/// Batch mode: build the manifest, fan the trees out over the worker pool,
/// and aggregate one report (see [`ft_batch`]).
fn run_batch_mode(options: &CliOptions, path: &std::path::Path) -> Result<RunOutput, CliError> {
    let manifest = BatchManifest::from_path(path)?;
    if manifest.is_empty() {
        return Err(CliError::Usage(format!(
            "no fault-tree models found under {}",
            path.display()
        )));
    }
    let config = BatchConfig {
        jobs: options.jobs,
        top_k: options.top_k.unwrap_or(1),
        // The batch default is the *sequential* portfolio: parallelism comes
        // from the worker pool, and per-tree results stay deterministic.
        algorithm: options
            .algorithm
            .unwrap_or(AlgorithmChoice::SequentialPortfolio),
        branching: options.branching,
        importance: options.importance,
        stats: options.stats,
        backend: options.backend,
        bdd_ordering: options.bdd_ordering,
        preprocess: options.preprocess,
        timeout_ms: options.timeout_ms,
        max_solutions: options.max_solutions,
        cache: options.analysis_cache(),
        sweep: options.sweep.as_ref().map(SweepRange::grid),
    };
    let report = run_batch(&manifest, &config);
    Ok(RunOutput {
        truncated: report.any_truncated(),
        output: report.to_json(),
        summary: report.render_text(),
    })
}

/// The number of minimal cut sets the classical analyses are allowed to
/// enumerate before giving up with [`CliError::Analysis`].
const MOCUS_BUDGET: usize = 50_000;

fn cut_sets_for_analysis(tree: &FaultTree) -> Result<Vec<fault_tree::CutSet>, CliError> {
    ft_analysis::mocus::Mocus::with_budget(tree, MOCUS_BUDGET)
        .minimal_cut_sets()
        .map_err(|e| CliError::Analysis(e.to_string()))
}

fn exact_top_probability(tree: &FaultTree, ordering: VariableOrdering) -> f64 {
    bdd_engine::compile_fault_tree(tree, ordering).top_event_probability(tree)
}

/// The session-facade analyzer implied by the parsed options, over `kind`.
/// The parsed tree is shared, not copied, between analyzers (`--cross-check`
/// builds two).
fn analyzer_for(
    options: &CliOptions,
    tree: &Arc<FaultTree>,
    kind: BackendKind,
    cache: Option<Arc<AnalysisCache>>,
) -> Analyzer {
    let mut analyzer = Analyzer::for_shared(Arc::clone(tree))
        .backend(kind)
        .algorithm(options.algorithm.unwrap_or_default())
        .branching(options.branching)
        .bdd_ordering(options.bdd_ordering)
        .preprocess(options.preprocess)
        .budget(options.budget());
    if let Some(cache) = cache {
        analyzer = analyzer.cache(cache);
    }
    analyzer
}

/// Runs the configured mpmcs query (single / top-k / all) through the
/// session facade, returning the solutions plus how the query ended.
fn query_analyzer(
    analyzer: &mut Analyzer,
    options: &CliOptions,
) -> Result<(Vec<BackendSolution>, Termination), CliError> {
    let map_error = |error: SessionError| match error {
        SessionError::NoCutSet => CliError::Solve(mpmcs::MpmcsError::NoCutSet),
        SessionError::Stopped(cause) => CliError::Analysis(format!(
            "the analysis stopped before producing a result: {cause}"
        )),
        other => CliError::Analysis(other.to_string()),
    };
    if options.all {
        let set = analyzer.all_mcs().map_err(map_error)?;
        Ok((set.solutions, set.termination))
    } else if let Some(k) = options.top_k {
        let set = analyzer.top_k(k).map_err(map_error)?;
        Ok((set.solutions, set.termination))
    } else {
        let best = analyzer.mpmcs().map_err(map_error)?;
        Ok((vec![best], Termination::Complete))
    }
}

/// Compares the two backends' answers of a `--cross-check` run; `Some`
/// describes the first mismatch. Positions must agree on probability; a
/// different cut set at a position is tolerated only as an equal-probability
/// tie where both sides report a verified minimal cut set — which covers the
/// two places correct engines may legitimately differ: the single-MPMCS
/// query (any tied optimum is valid) and a top-k boundary straddled by a tie
/// group (the MaxSAT path keeps discovery order there by design, the
/// classical backends pick canonically). Full enumerations are canonically
/// ordered on both sides, so for them this degenerates to exact equality.
fn cross_check_mismatch(
    tree: &FaultTree,
    primary: &[BackendSolution],
    secondary: &[BackendSolution],
) -> Option<String> {
    if primary.len() != secondary.len() {
        return Some(format!(
            "cut-set counts differ: {} vs {}",
            primary.len(),
            secondary.len()
        ));
    }
    for (rank, (a, b)) in primary.iter().zip(secondary).enumerate() {
        // Compare in log space: an absolute tolerance on `−ln p` is a
        // *relative* tolerance on the probability, which FTA needs — cut-set
        // probabilities routinely live at 1e-12 and below, where any
        // absolute probability tolerance would wave real divergences
        // through. (Non-finite log weights — probability-zero cut sets —
        // must simply agree.)
        let log_weights_agree = if a.log_weight.is_finite() && b.log_weight.is_finite() {
            (a.log_weight - b.log_weight).abs() <= 1e-9
        } else {
            a.log_weight == b.log_weight
        };
        if !log_weights_agree {
            return Some(format!(
                "probabilities differ at rank {}: {:.12e} vs {:.12e}",
                rank + 1,
                a.probability,
                b.probability
            ));
        }
        if a.cut_set != b.cut_set {
            let tie = tree.is_minimal_cut_set(&a.cut_set) && tree.is_minimal_cut_set(&b.cut_set);
            if !tie {
                return Some(format!(
                    "cut sets differ at rank {}: {} vs {}",
                    rank + 1,
                    a.cut_set.display_names(tree),
                    b.cut_set.display_names(tree)
                ));
            }
        }
    }
    None
}

/// `--sweep`: quantify the top-event probability over the mission-time grid,
/// solving the structure once and re-quantifying per point through
/// [`Analyzer::sweep`] — every point bit-identical to the same query against
/// the tree re-quantified at that time.
fn run_sweep(options: &CliOptions, tree: &FaultTree) -> Result<RunOutput, CliError> {
    let range = options
        .sweep
        .expect("run_sweep is only dispatched with --sweep");
    let grid = range.grid();
    let tree = Arc::new(tree.clone());
    let cache = options.analysis_cache();
    let mut analyzer = analyzer_for(options, &tree, options.backend, cache.clone());
    let backend = analyzer.resolved_backend();
    let start = Instant::now();
    let report = analyzer.sweep(&grid).map_err(|error| match error {
        SessionError::NoCutSet => CliError::Solve(mpmcs::MpmcsError::NoCutSet),
        SessionError::Stopped(cause) => CliError::Analysis(format!(
            "the analysis stopped before producing a result: {cause}"
        )),
        other => CliError::Analysis(other.to_string()),
    })?;
    let elapsed = start.elapsed();

    let output = match options.sweep_format {
        SweepFormat::Json => {
            ft_session::report::render_sweep_json(&tree, backend, options.preprocess, &report)
        }
        SweepFormat::Csv => ft_session::report::render_sweep_csv(&report),
    };

    let mut summary = format!(
        "sweep: {} at {} mission times in [{}, {}] via {} ({:.2} ms)\n",
        tree.name(),
        grid.len(),
        range.start,
        range.end,
        backend.name(),
        elapsed.as_secs_f64() * 1e3
    );
    if let Some(cache) = &cache {
        let stats = cache.stats();
        summary.push_str(&format!(
            "cache: {} hits, {} misses, {} insertions, {} entries ({} bytes of {})\n",
            stats.hits, stats.misses, stats.insertions, stats.entries, stats.bytes, stats.capacity,
        ));
    }
    Ok(RunOutput {
        output,
        summary,
        truncated: false,
    })
}

fn run_mpmcs(options: &CliOptions, tree: &FaultTree) -> Result<RunOutput, CliError> {
    let tree = Arc::new(tree.clone());
    let cache = options.analysis_cache();
    let mut analyzer = analyzer_for(options, &tree, options.backend, cache.clone());
    let primary_kind = analyzer.resolved_backend();
    let start = Instant::now();
    let (solutions, termination) = query_analyzer(&mut analyzer, options)?;
    let primary_elapsed = start.elapsed();
    let truncated = termination.is_truncated();

    // A single report renders as a bare object, several as an array —
    // exactly the pre-backend-layer output shape (`--top-k 1` has always
    // produced an object). The shared renderer keeps this byte-identical
    // to the HTTP front end's answers.
    let report_value = ft_session::report::report_value(&tree, &solutions, options.stats);

    let mut summary = String::new();
    summary.push_str(&format!(
        "tree: {} ({} events, {} gates)\n",
        tree.name(),
        tree.num_events(),
        tree.num_gates()
    ));
    if options.backend != BackendKind::MaxSat || options.preprocess {
        summary.push_str(&format!(
            "backend: {}{}\n",
            primary_kind.name(),
            if options.preprocess {
                " (modular preprocessing)"
            } else {
                ""
            }
        ));
    }
    for (rank, solution) in solutions.iter().enumerate() {
        summary.push_str(&format!(
            "#{}: {} p={:.6e} ({} events, {}, {:.2} ms)\n",
            rank + 1,
            solution.cut_set.display_names(&tree),
            solution.probability,
            solution.cut_set.len(),
            solution.algorithm,
            solution.duration.as_secs_f64() * 1e3
        ));
    }
    if truncated {
        summary.push_str(&format!(
            "truncated: the budget stopped the query ({termination}); \
             the {} reported solutions are the canonical prefix\n",
            solutions.len()
        ));
    }
    if let Some(cache) = &cache {
        let stats = cache.stats();
        summary.push_str(&format!(
            "cache: {} hits, {} misses, {} insertions, {} entries ({} bytes of {})\n",
            stats.hits, stats.misses, stats.insertions, stats.entries, stats.bytes, stats.capacity,
        ));
    }

    if !options.cross_check {
        let cache_stats = cache.as_ref().filter(|_| options.stats).map(|cache| {
            let stats = cache.stats();
            serde_json::json!({
                "hits": stats.hits,
                "misses": stats.misses,
                "insertions": stats.insertions,
                "evictions": stats.evictions,
                "entries": stats.entries,
                "bytes": stats.bytes,
                "capacity": stats.capacity,
            })
        });
        // Budgeted runs wrap the report in an explicit envelope so partial
        // results can never be mistaken for complete ones; budgetless runs
        // keep the historical bare report shape. `--cache --stats` runs use
        // the envelope too, to carry the cache counters — a flag combination
        // that never existed before, so no historical shape is disturbed.
        let json = match cache_stats {
            Some(cache_stats) if options.budgeted() => {
                let value = serde_json::json!({
                    "truncated": truncated,
                    "termination": termination.label(),
                    "report": report_value,
                    "cache_stats": cache_stats,
                });
                serde_json::to_string_pretty(&value).expect("reports always serialise")
            }
            Some(cache_stats) => {
                let value = serde_json::json!({
                    "report": report_value,
                    "cache_stats": cache_stats,
                });
                serde_json::to_string_pretty(&value).expect("reports always serialise")
            }
            // The plain shapes — bare report, or the budget envelope —
            // come from the shared renderer, byte-identical to ft-server.
            None => ft_session::report::render_report(
                &tree,
                &solutions,
                termination,
                options.budgeted(),
                options.stats,
            ),
        };
        return Ok(RunOutput {
            output: json,
            summary,
            truncated,
        });
    }

    // Cross-check: run the reference backend on the same query and insist on
    // identical answers before reporting anything.
    let reference_kind = if primary_kind == BackendKind::MaxSat {
        BackendKind::Bdd
    } else {
        BackendKind::MaxSat
    };
    let mut reference = analyzer_for(options, &tree, reference_kind, cache.clone());
    let reference_kind = reference.resolved_backend();
    let start = Instant::now();
    let (reference_solutions, _) = query_analyzer(&mut reference, options)?;
    let reference_elapsed = start.elapsed();

    if let Some(mismatch) = cross_check_mismatch(&tree, &solutions, &reference_solutions) {
        return Err(CliError::Analysis(format!(
            "cross-check mismatch between {} and {}: {mismatch}",
            primary_kind.name(),
            reference_kind.name()
        )));
    }

    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let query = if options.all {
        "all".to_string()
    } else if let Some(k) = options.top_k {
        format!("top-{k}")
    } else {
        "mpmcs".to_string()
    };
    let value = serde_json::json!({
        "cross_check": serde_json::json!({
            "query": query,
            "match": true,
            "backends": serde_json::json!([
                serde_json::json!({
                    "backend": primary_kind.name(),
                    "solve_time_ms": ms(primary_elapsed),
                    "cut_sets": solutions.len(),
                }),
                serde_json::json!({
                    "backend": reference_kind.name(),
                    "solve_time_ms": ms(reference_elapsed),
                    "cut_sets": reference_solutions.len(),
                }),
            ]),
        }),
        "report": report_value,
    });
    summary.push_str(&format!(
        "cross-check ({query}): {} and {} report identical minimal cut sets\n  {}: {:.2} ms\n  {}: {:.2} ms\n",
        primary_kind.name(),
        reference_kind.name(),
        primary_kind.name(),
        ms(primary_elapsed),
        reference_kind.name(),
        ms(reference_elapsed),
    ));
    let json = serde_json::to_string_pretty(&value).expect("reports always serialise");
    Ok(RunOutput {
        output: json,
        summary,
        truncated,
    })
}

fn run_path_set(options: &CliOptions, tree: &FaultTree) -> Result<(String, String), CliError> {
    let solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: options.algorithm.unwrap_or_default(),
        branching: options.branching,
        ..MpmcsOptions::new()
    });
    let solutions = if options.all {
        solver.enumerate_path_sets(tree, EnumerationLimit::All)?
    } else if let Some(k) = options.top_k {
        solver.enumerate_path_sets(tree, EnumerationLimit::AtMost(k))?
    } else {
        vec![solver.solve_max_reliability_path_set(tree)?]
    };
    let json = serde_json::to_string_pretty(
        &solutions
            .iter()
            .map(|solution| {
                serde_json::json!({
                    "events": solution.event_names(tree),
                    "reliability": solution.reliability,
                    "log_weight": solution.log_weight,
                    "algorithm": solution.algorithm,
                })
            })
            .collect::<Vec<_>>(),
    )
    .expect("path-set reports always serialise");
    let mut summary = format!("maximum-reliability minimal path sets of {}\n", tree.name());
    for (rank, solution) in solutions.iter().enumerate() {
        summary.push_str(&format!(
            "#{}: {} reliability={:.6}\n",
            rank + 1,
            solution.path_set.display_names(tree),
            solution.reliability
        ));
    }
    Ok((json, summary))
}

fn run_importance(options: &CliOptions, tree: &FaultTree) -> Result<(String, String), CliError> {
    let cut_sets = cut_sets_for_analysis(tree)?;
    let ordering = options.bdd_ordering;
    let exact = move |t: &FaultTree| exact_top_probability(t, ordering);
    let table = ft_analysis::importance::ImportanceTable::compute(tree, &cut_sets, exact);
    // Rendered through the shared report module (the HTTP front end's
    // importance endpoint uses the same function on the facade's table).
    let report = ft_session::ImportanceReport {
        rows: tree
            .event_ids()
            .map(|event| {
                let i = event.index();
                ft_session::ImportanceRow {
                    event: tree.event(event).name().to_string(),
                    birnbaum: table.birnbaum[i],
                    fussell_vesely: table.fussell_vesely[i],
                    raw: table.raw[i],
                    rrw: table.rrw[i],
                    criticality: table.criticality[i],
                    structural: table.structural[i],
                }
            })
            .collect(),
    };
    let json = ft_session::report::render_importance(&report);
    Ok((json, table.render(tree)))
}

fn run_modules(tree: &FaultTree) -> Result<(String, String), CliError> {
    let report = ft_analysis::modules::ModularReport::of(tree);
    let json = serde_json::to_string_pretty(&serde_json::json!({
        "modules": report
            .modules
            .iter()
            .map(|&g| tree.gate(g).name())
            .collect::<Vec<_>>(),
        "repeated_events": report.repeated_events,
        "independent_probability": report.independent_probability,
    }))
    .expect("module reports always serialise");
    Ok((json, report.render(tree)))
}

fn run_stability(tree: &FaultTree) -> Result<(String, String), CliError> {
    let cut_sets = cut_sets_for_analysis(tree)?;
    let stability = ft_analysis::sensitivity::MpmcsStability::of(tree, &cut_sets)
        .ok_or_else(|| CliError::Analysis("the tree has no minimal cut set".to_string()))?;
    let json = serde_json::to_string_pretty(&serde_json::json!({
        "mpmcs": stability.mpmcs.display_names(tree),
        "probability": stability.probability,
        "margins": stability
            .margins
            .iter()
            .map(|(event, threshold, margin)| {
                serde_json::json!({
                    "event": tree.event(*event).name(),
                    "switch_threshold": threshold,
                    "relative_margin": margin,
                })
            })
            .collect::<Vec<_>>(),
    }))
    .expect("stability reports always serialise");
    Ok((json, stability.render(tree)))
}

fn run_dot(options: &CliOptions, tree: &FaultTree) -> Result<(String, String), CliError> {
    let solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: options.algorithm.unwrap_or_default(),
        branching: options.branching,
        ..MpmcsOptions::new()
    });
    let solution = solver.solve(tree)?;
    let dot = fault_tree::export::to_dot_with_highlight(tree, Some(&solution.cut_set));
    let summary = format!(
        "DOT rendering of {} with MPMCS {} (p={:.6e}) highlighted\n",
        tree.name(),
        solution.cut_set.display_names(tree),
        solution.probability
    );
    Ok((dot, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_typical_invocation() {
        let options = parse_args(["--algorithm", "oll", "--top-k", "3", "tree.json"]).unwrap();
        assert_eq!(options.algorithm, Some(AlgorithmChoice::Oll));
        assert_eq!(options.top_k, Some(3));
        assert!(matches!(
            options.mode,
            CliMode::Single(InputSource::File { .. })
        ));
    }

    #[test]
    fn help_is_a_successful_mode_not_an_error() {
        for flags in [vec!["--help"], vec!["-h"], vec!["--example", "fps", "-h"]] {
            let options = parse_args(flags).unwrap();
            assert_eq!(options.mode, CliMode::Help);
        }
        let (output, summary) = run(&parse_args(["--help"]).unwrap()).unwrap();
        assert_eq!(output, USAGE);
        assert!(summary.is_empty());
        // The usage text documents every mode, including batch.
        for flag in ["--batch", "--jobs", "--importance", "--top-k", "--analysis"] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn parses_a_serve_invocation() {
        let options = parse_args(["serve"]).unwrap();
        assert_eq!(options.mode, CliMode::Serve(ServeOptions::default()));
        let options = parse_args([
            "serve",
            "--port",
            "8080",
            "--workers",
            "2",
            "--cache-bytes",
            "1048576",
            "--host",
            "0.0.0.0",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(
            options.mode,
            CliMode::Serve(ServeOptions {
                host: "0.0.0.0".to_string(),
                port: 8080,
                workers: 2,
                cache_bytes: Some(1_048_576),
            })
        );
        assert!(options.quiet);
        assert_eq!(parse_args(["serve", "--help"]).unwrap().mode, CliMode::Help);
        // The usage text documents the subcommand.
        for token in ["serve", "SERVE OPTIONS", "--workers"] {
            assert!(USAGE.contains(token), "usage must document {token}");
        }
    }

    #[test]
    fn serve_flag_mistakes_are_rejected() {
        for flags in [
            vec!["serve", "--port", "notaport"],
            vec!["serve", "--port"],
            vec!["serve", "--workers", "0"],
            vec!["serve", "--cache-bytes", "0"],
            vec!["serve", "--backend", "bdd"],
            vec!["serve", "tree.json"],
        ] {
            assert!(
                matches!(parse_args(flags.clone()), Err(CliError::Usage(_))),
                "{flags:?} must be a usage error"
            );
        }
    }

    #[test]
    fn serve_runs_until_interrupted_and_reports_counters() {
        let serve = ServeOptions {
            workers: 1,
            ..ServeOptions::default()
        };
        // Raise the flag up front: run_serve resets it, so trip it again
        // from a helper thread shortly after the server boots.
        let trip = std::thread::spawn(|| {
            std::thread::sleep(Duration::from_millis(250));
            ft_server::signal::trigger();
        });
        let result = run_serve(&serve).unwrap();
        trip.join().unwrap();
        assert!(!result.truncated);
        assert!(result.summary.contains("server stopped"));
        let counters: serde_json::Value = serde_json::from_str(&result.output).unwrap();
        assert_eq!(counters["requests"], serde_json::json!(0));
        assert_eq!(counters["shed"], serde_json::json!(0));
    }

    #[test]
    fn parses_a_batch_invocation() {
        let options = parse_args(["--batch", "models/", "--jobs", "4", "--top-k", "2"]).unwrap();
        assert_eq!(options.mode, CliMode::Batch(PathBuf::from("models/")));
        assert_eq!(options.jobs, 4);
        assert_eq!(options.top_k, Some(2));
        assert!(!options.importance);
        let options = parse_args(["--batch", "batch.json", "--importance"]).unwrap();
        assert!(options.importance);
    }

    #[test]
    fn batch_conflicts_are_rejected() {
        assert!(matches!(
            parse_args(["--batch", "models/", "tree.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--batch", "models/", "--all"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--batch", "models/", "--analysis", "importance"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--batch", "models/", "--jobs", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--batch", "models/", "--format", "json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--batch", "models/", "--seed", "9"]),
            Err(CliError::Usage(_))
        ));
        // Batch-only flags are rejected in single-tree mode too, instead of
        // being silently ignored.
        assert!(matches!(
            parse_args(["tree.json", "--jobs", "4"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["tree.json", "--importance"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(matches!(parse_args(["--top-k"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--top-k", "0", "x.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--algorithm", "magic", "x.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(Vec::<String>::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["a.json", "b.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--unknown", "x.json"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_the_branching_flag_and_rejects_it_off_the_maxsat_backend() {
        let options = parse_args(["--example", "fps"]).unwrap();
        assert_eq!(options.branching, BranchingChoice::Vsids);
        let options = parse_args(["--example", "fps", "--branching", "random"]).unwrap();
        assert_eq!(options.branching, BranchingChoice::Random);
        let options = parse_args(["--example", "fps", "--branching", "vsids"]).unwrap();
        assert_eq!(options.branching, BranchingChoice::Vsids);
        assert!(matches!(
            parse_args(["--example", "fps", "--branching", "magic"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "--example",
                "fps",
                "--backend",
                "bdd",
                "--branching",
                "random"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "--example",
                "fps",
                "--backend",
                "mocus",
                "--branching",
                "vsids"
            ]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn random_branching_reports_the_same_mpmcs() {
        let run_with = |branching: &str| {
            let options = parse_args([
                "--example",
                "fps",
                "--algorithm",
                "sequential",
                "--branching",
                branching,
                "--top-k",
                "3",
                "--quiet",
            ])
            .unwrap();
            let (json, _) = run(&options).unwrap();
            let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
            parsed
                .as_array()
                .unwrap()
                .iter()
                .map(|r| {
                    (
                        r["probability"].as_f64().unwrap(),
                        r["mpmcs"]
                            .as_array()
                            .unwrap()
                            .iter()
                            .map(|e| e["name"].as_str().unwrap().to_string())
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run_with("vsids"), run_with("random"));
    }

    #[test]
    fn stats_flag_adds_solver_statistics_to_the_report() {
        let options = parse_args([
            "--example",
            "fps",
            "--algorithm",
            "sequential",
            "--stats",
            "--quiet",
        ])
        .unwrap();
        assert!(options.stats);
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let stats = &parsed["solver_stats"];
        assert!(stats["propagations"].as_u64().unwrap() > 0);
        assert!(stats["sat_calls"].as_u64().unwrap() > 0);
        // Without the flag the block is absent.
        let options =
            parse_args(["--example", "fps", "--algorithm", "sequential", "--quiet"]).unwrap();
        let (json, _) = run(&options).unwrap();
        assert!(!json.contains("solver_stats"));
        // Enumeration reports carry per-stage stats plus the growing
        // session-cumulative counter of the shared incremental session.
        let options = parse_args([
            "--example",
            "fps",
            "--algorithm",
            "sequential",
            "--top-k",
            "3",
            "--stats",
            "--quiet",
        ])
        .unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let reports = parsed.as_array().unwrap();
        assert_eq!(reports.len(), 3);
        let session_calls: Vec<u64> = reports
            .iter()
            .map(|r| r["solver_stats"]["session_calls"].as_u64().unwrap())
            .collect();
        assert!(session_calls.windows(2).all(|w| w[0] < w[1]));
        // --stats is rejected where it cannot apply.
        assert!(matches!(
            parse_args(["--example", "fps", "--analysis", "ascii", "--stats"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stats_flag_flows_into_batch_reports() {
        let dir = std::env::temp_dir().join(format!("mpmcs4fta_cli_stats_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("and.dft"),
            "toplevel top;\ntop and a b;\na prob=0.5;\nb prob=0.25;\n",
        )
        .unwrap();
        let options = parse_args(["--batch", dir.to_str().unwrap(), "--stats", "--quiet"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let stats = &parsed["results"][0]["cut_sets"][0]["solver_stats"];
        assert!(stats["propagations"].as_u64().unwrap() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn runs_the_builtin_example_end_to_end() {
        let options =
            parse_args(["--example", "fps", "--algorithm", "sequential", "--quiet"]).unwrap();
        let (json, summary) = run(&options).unwrap();
        assert!(json.contains("\"x1\""));
        assert!(json.contains("\"x2\""));
        assert!(summary.contains("{x1, x2}"));
        assert!(summary.contains("7 events"));
    }

    #[test]
    fn runs_top_k_and_all_modes() {
        let options =
            parse_args(["--example", "fps", "--top-k", "2", "--algorithm", "oll"]).unwrap();
        let (json, summary) = run(&options).unwrap();
        assert!(summary.lines().count() >= 3);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(2));

        let options = parse_args(["--example", "fps", "--all", "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(5));
    }

    #[test]
    fn runs_on_generated_trees() {
        let options =
            parse_args(["--generate", "150", "--seed", "3", "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed["probability"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn loads_files_in_both_formats() {
        use std::io::Write;
        let dir = std::env::temp_dir();
        let galileo_path = dir.join("mpmcs4fta_cli_test.dft");
        let mut file = fs::File::create(&galileo_path).unwrap();
        write!(
            file,
            "toplevel top;\ntop and a b;\na prob=0.5;\nb prob=0.25;\n"
        )
        .unwrap();
        let options = parse_args([galileo_path.to_str().unwrap(), "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!((parsed["probability"].as_f64().unwrap() - 0.125).abs() < 1e-9);

        let json_path = dir.join("mpmcs4fta_cli_test.json");
        let tree = examples::fire_protection_system();
        fs::write(&json_path, fault_tree::parser::json::to_json_string(&tree)).unwrap();
        let options = parse_args([json_path.to_str().unwrap(), "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        assert!(json.contains("\"x1\""));
        let _ = fs::remove_file(galileo_path);
        let _ = fs::remove_file(json_path);
    }

    #[test]
    fn unknown_examples_are_rejected() {
        let options = parse_args(["--example", "nope"]).unwrap();
        assert!(matches!(run(&options), Err(CliError::Usage(_))));
    }

    #[test]
    fn path_set_analysis_reports_the_dual_optimum() {
        let options = parse_args([
            "--example",
            "fps",
            "--analysis",
            "path-set",
            "--algorithm",
            "oll",
        ])
        .unwrap();
        let (json, summary) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(1));
        assert!(summary.contains("reliability"));
        let all = parse_args([
            "--example",
            "fps",
            "--analysis",
            "path-set",
            "--all",
            "--algorithm",
            "oll",
        ])
        .unwrap();
        let (json, _) = run(&all).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(4));
    }

    #[test]
    fn importance_modules_and_stability_analyses_render_tables() {
        let importance = parse_args(["--example", "fps", "--analysis", "importance"]).unwrap();
        let (json, summary) = run(&importance).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(7));
        assert!(summary.contains("birnbaum"));

        let modules = parse_args(["--example", "fps", "--analysis", "modules"]).unwrap();
        let (json, summary) = run(&modules).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["repeated_events"].as_u64(), Some(0));
        assert!(summary.contains("modules"));

        let stability = parse_args(["--example", "fps", "--analysis", "stability"]).unwrap();
        let (json, summary) = run(&stability).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["mpmcs"].as_str(), Some("{x1, x2}"));
        assert!(summary.contains("margin"));
    }

    #[test]
    fn dot_and_ascii_analyses_render_the_tree() {
        let dot = parse_args([
            "--example",
            "scada",
            "--analysis",
            "dot",
            "--algorithm",
            "oll",
        ])
        .unwrap();
        let (output, summary) = run(&dot).unwrap();
        assert!(output.starts_with("digraph"));
        assert!(summary.contains("highlighted"));

        let ascii = parse_args(["--example", "hydraulics", "--analysis", "ascii"]).unwrap();
        let (output, _) = run(&ascii).unwrap();
        assert!(output.contains("2/3 VOTE"));
    }

    #[test]
    fn unknown_analyses_are_rejected() {
        assert!(matches!(
            parse_args(["--example", "fps", "--analysis", "magic"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn backend_flags_are_parsed_and_validated() {
        let options = parse_args([
            "--example",
            "fps",
            "--backend",
            "bdd",
            "--bdd-ordering",
            "natural",
            "--preprocess",
            "--cross-check",
        ])
        .unwrap();
        assert_eq!(options.backend, BackendKind::Bdd);
        assert_eq!(options.bdd_ordering, VariableOrdering::Natural);
        assert!(options.preprocess);
        assert!(options.cross_check);
        // Unknown names are usage errors.
        assert!(matches!(
            parse_args(["--example", "fps", "--backend", "zbdd"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--example", "fps", "--bdd-ordering", "random"]),
            Err(CliError::Usage(_))
        ));
        // --algorithm belongs to the maxsat backend.
        assert!(matches!(
            parse_args([
                "--example",
                "fps",
                "--backend",
                "mocus",
                "--algorithm",
                "oll"
            ]),
            Err(CliError::Usage(_))
        ));
        // Backend flags only apply to the mpmcs analysis.
        assert!(matches!(
            parse_args([
                "--example",
                "fps",
                "--analysis",
                "ascii",
                "--backend",
                "bdd"
            ]),
            Err(CliError::Usage(_))
        ));
        // Cross-check is a single-tree mode.
        assert!(matches!(
            parse_args(["--batch", "models/", "--cross-check"]),
            Err(CliError::Usage(_))
        ));
        // The usage text documents the new flags.
        for flag in [
            "--backend",
            "--cross-check",
            "--bdd-ordering",
            "--preprocess",
        ] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn every_backend_reports_the_paper_answer() {
        for backend in ["maxsat", "bdd", "mocus", "auto"] {
            for preprocess in [false, true] {
                let mut args = vec!["--example", "fps", "--backend", backend, "--quiet"];
                if preprocess {
                    args.push("--preprocess");
                }
                let (json, _) = run(&parse_args(args).unwrap()).unwrap();
                let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
                assert_eq!(
                    parsed["mpmcs"][0]["name"].as_str(),
                    Some("x1"),
                    "{backend} preprocess={preprocess}"
                );
                assert!((parsed["probability"].as_f64().unwrap() - 0.02).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cross_check_wraps_the_report_and_reports_per_backend_timings() {
        let options = parse_args([
            "--example",
            "fps",
            "--backend",
            "bdd",
            "--cross-check",
            "--all",
            "--algorithm",
            "sequential",
            "--quiet",
        ]);
        // --algorithm with --backend bdd is rejected; drop it.
        assert!(options.is_err());
        let options = parse_args([
            "--example",
            "fps",
            "--backend",
            "bdd",
            "--cross-check",
            "--all",
        ])
        .unwrap();
        let (json, summary) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["cross_check"]["match"].as_bool(), Some(true));
        let backends = parsed["cross_check"]["backends"].as_array().unwrap();
        assert_eq!(backends.len(), 2);
        assert_eq!(backends[0]["backend"].as_str(), Some("bdd"));
        assert_eq!(backends[1]["backend"].as_str(), Some("maxsat"));
        assert_eq!(backends[0]["cut_sets"].as_u64(), Some(5));
        assert_eq!(
            parsed["report"].as_array().map(|r| r.len()),
            Some(5),
            "the primary backend's report rides along"
        );
        assert!(summary.contains("identical minimal cut sets"));
    }

    #[test]
    fn budget_flags_are_parsed_and_validated() {
        let options = parse_args([
            "--example",
            "fps",
            "--timeout-ms",
            "250",
            "--max-solutions",
            "4",
        ])
        .unwrap();
        assert_eq!(options.timeout_ms, Some(250));
        assert_eq!(options.max_solutions, Some(4));
        assert!(options.budgeted());
        assert_eq!(options.budget().max_solutions_limit(), Some(4));
        // Budgets need complete answers to cross-check against.
        assert!(matches!(
            parse_args(["--example", "fps", "--timeout-ms", "5", "--cross-check"]),
            Err(CliError::Usage(_))
        ));
        // Budgets only apply to the mpmcs analysis and batch mode.
        assert!(matches!(
            parse_args([
                "--example",
                "fps",
                "--analysis",
                "ascii",
                "--timeout-ms",
                "5"
            ]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--example", "fps", "--max-solutions", "0"]),
            Err(CliError::Usage(_))
        ));
        // The usage text documents the new flags.
        for flag in ["--timeout-ms", "--max-solutions"] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn max_solutions_truncates_with_an_explicit_envelope_and_status() {
        // A cap below the requested enumeration truncates: the JSON gains
        // the envelope, the result is flagged for the distinct exit code.
        let options = parse_args([
            "--example",
            "fps",
            "--all",
            "--max-solutions",
            "2",
            "--quiet",
        ])
        .unwrap();
        let result = run_with_status(&options).unwrap();
        assert!(result.truncated);
        let parsed: serde_json::Value = serde_json::from_str(&result.output).unwrap();
        assert_eq!(parsed["truncated"].as_bool(), Some(true));
        assert_eq!(parsed["termination"].as_str(), Some("solution-cap"));
        let report = parsed["report"].as_array().unwrap();
        assert_eq!(report.len(), 2);
        assert!(result.summary.contains("truncated"));

        // The capped prefix equals the uncapped run's prefix.
        let full = parse_args(["--example", "fps", "--all", "--quiet"]).unwrap();
        let (full_json, _) = run(&full).unwrap();
        let full_parsed: serde_json::Value = serde_json::from_str(&full_json).unwrap();
        let full_report = full_parsed.as_array().unwrap();
        assert_eq!(full_report.len(), 5);
        for (capped, complete) in report.iter().zip(full_report) {
            assert_eq!(capped["mpmcs"], complete["mpmcs"]);
        }

        // A cap exactly matching the family size is a complete answer on
        // every engine path (regression: this used to flip with --timeout-ms).
        for extra in [vec![], vec!["--timeout-ms", "60000"]] {
            let mut args = vec![
                "--example",
                "fps",
                "--all",
                "--max-solutions",
                "5",
                "--quiet",
            ];
            args.extend(extra);
            let exact = parse_args(args).unwrap();
            let result = run_with_status(&exact).unwrap();
            assert!(!result.truncated, "exact cap must be complete");
            let parsed: serde_json::Value = serde_json::from_str(&result.output).unwrap();
            assert_eq!(parsed["termination"].as_str(), Some("complete"));
        }

        // A generous budget does not truncate, but keeps the envelope.
        let roomy = parse_args([
            "--example",
            "fps",
            "--all",
            "--max-solutions",
            "50",
            "--quiet",
        ])
        .unwrap();
        let result = run_with_status(&roomy).unwrap();
        assert!(!result.truncated);
        let parsed: serde_json::Value = serde_json::from_str(&result.output).unwrap();
        assert_eq!(parsed["truncated"].as_bool(), Some(false));
        assert_eq!(parsed["termination"].as_str(), Some("complete"));
    }

    #[test]
    fn sweep_flags_are_parsed_and_validated() {
        let options = parse_args(["--example", "fps", "--sweep", "0:10:0.5"]).unwrap();
        let range = options.sweep.expect("--sweep given");
        assert_eq!(range.start, 0.0);
        assert_eq!(range.end, 10.0);
        assert_eq!(range.step, 0.5);
        assert_eq!(range.points(), 21);
        let grid = range.grid();
        assert_eq!(grid.len(), 21);
        assert_eq!(grid[0], 0.0);
        assert_eq!(grid[20], 10.0);
        assert_eq!(options.sweep_format, SweepFormat::Json);
        let options = parse_args([
            "--example",
            "fps",
            "--sweep",
            "0:1:0.25",
            "--sweep-format",
            "csv",
        ])
        .unwrap();
        assert_eq!(options.sweep_format, SweepFormat::Csv);
        // A single time is a valid (degenerate) sweep.
        let single = parse_args(["--example", "fps", "--sweep", "2:2:1"]).unwrap();
        assert_eq!(single.sweep.unwrap().grid(), vec![2.0]);
        // Malformed or out-of-range specifications are usage errors.
        for bad in [
            "0:10",
            "a:b:c",
            "0:10:0",
            "5:1:1",
            "-1:1:0.5",
            "nan:1:1",
            "0:1e9:0.0001",
        ] {
            assert!(
                matches!(
                    parse_args(["--example", "fps", "--sweep", bad]),
                    Err(CliError::Usage(_))
                ),
                "--sweep {bad} must be rejected"
            );
        }
        assert!(matches!(
            parse_args(["--example", "fps", "--sweep-format", "csv"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "--example",
                "fps",
                "--sweep",
                "0:1:1",
                "--sweep-format",
                "tsv"
            ]),
            Err(CliError::Usage(_))
        ));
        // A sweep is a probability-curve query: cut-set enumeration flags and
        // cross-checks do not compose with it.
        assert!(matches!(
            parse_args(["--example", "fps", "--sweep", "0:1:1", "--all"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--example", "fps", "--sweep", "0:1:1", "--top-k", "2"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--example", "fps", "--sweep", "0:1:1", "--cross-check"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args([
                "--example",
                "fps",
                "--analysis",
                "ascii",
                "--sweep",
                "0:1:1"
            ]),
            Err(CliError::Usage(_))
        ));
        // Batches accept --sweep but pick the format themselves (JSON report).
        assert!(parse_args(["--batch", "models/", "--sweep", "0:1:1"]).is_ok());
        assert!(matches!(
            parse_args([
                "--batch",
                "models/",
                "--sweep",
                "0:1:1",
                "--sweep-format",
                "csv"
            ]),
            Err(CliError::Usage(_))
        ));
        for flag in ["--sweep", "--sweep-format"] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }
    }

    #[test]
    fn sweep_mode_emits_curves_in_both_formats_matching_point_queries() {
        let options = parse_args(["--example", "fps", "--sweep", "0:2:0.5", "--quiet"]).unwrap();
        let (json, summary) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["backend"].as_str(), Some("maxsat"));
        let grid: Vec<f64> = parsed["grid"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(grid, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
        let probabilities: Vec<f64> = parsed["probabilities"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(probabilities.len(), 5);
        // Every point must be bit-identical to the facade's point query
        // against the tree evaluated at that mission time.
        let tree = examples::fire_protection_system();
        for (&t, &p) in grid.iter().zip(&probabilities) {
            let point = Analyzer::for_tree(tree.at_time(t))
                .probability()
                .expect("solvable");
            assert_eq!(p.to_bits(), point.to_bits(), "CLI sweep diverged at t={t}");
        }
        assert!(summary.contains("sweep"), "summary: {summary}");

        let options = parse_args([
            "--example",
            "fps",
            "--sweep",
            "0:2:0.5",
            "--sweep-format",
            "csv",
            "--quiet",
        ])
        .unwrap();
        let (csv, _) = run(&options).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,probability");
        assert_eq!(lines.len(), 6, "header + one row per grid point");
        assert!(lines[1].starts_with("0,"));
        // CSV rows round-trip to the exact JSON probabilities (Rust prints
        // the shortest exactly-round-tripping decimal).
        for (line, &p) in lines[1..].iter().zip(&probabilities) {
            let printed: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert_eq!(printed.to_bits(), p.to_bits());
        }
    }

    #[test]
    fn batch_sweeps_attach_curves_per_tree() {
        let dir = std::env::temp_dir().join(format!("mpmcs4fta_cli_sweep_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let tree = examples::fire_protection_system();
        fs::write(dir.join("fps.json"), json::to_json_string(&tree)).unwrap();
        let options = parse_args([
            "--batch",
            dir.to_str().unwrap(),
            "--sweep",
            "0:1:0.5",
            "--quiet",
        ])
        .unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let curve = &parsed["results"][0]["sweep"];
        assert_eq!(curve["grid"].as_array().map(|g| g.len()), Some(3));
        assert_eq!(curve["probabilities"].as_array().map(|p| p.len()), Some(3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_flags_are_parsed_validated_and_surface_counters() {
        let options = parse_args(["--example", "fps", "--cache", "--quiet"]).unwrap();
        assert!(options.cache);
        assert_eq!(options.cache_bytes, None);
        // --cache-bytes implies --cache.
        let options = parse_args(["--example", "fps", "--cache-bytes", "1048576"]).unwrap();
        assert!(options.cache);
        assert_eq!(options.cache_bytes, Some(1 << 20));
        assert!(matches!(
            parse_args(["--example", "fps", "--cache-bytes", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--example", "fps", "--analysis", "ascii", "--cache"]),
            Err(CliError::Usage(_))
        ));
        for flag in ["--cache", "--cache-bytes"] {
            assert!(USAGE.contains(flag), "usage must document {flag}");
        }

        // Single-tree mode: the summary reports the counters, and with
        // --stats the JSON envelope carries them too.
        let options = parse_args(["--example", "fps", "--top-k", "3", "--cache"]).unwrap();
        let (_, summary) = run(&options).unwrap();
        assert!(summary.contains("cache: "), "summary: {summary}");
        let options =
            parse_args(["--example", "fps", "--top-k", "3", "--cache", "--stats"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed["cache_stats"]["misses"].as_u64().unwrap() > 0);
        assert_eq!(parsed["report"].as_array().map(|r| r.len()), Some(3));
    }

    #[test]
    fn cached_batches_report_identical_answers_and_their_counters() {
        let dir = std::env::temp_dir().join(format!("mpmcs4fta_cli_cache_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let tree = examples::fire_protection_system();
        // Two copies of the same model: the second is answered from the
        // cache within a single batch run.
        fs::write(dir.join("a.json"), json::to_json_string(&tree)).unwrap();
        fs::write(dir.join("b.json"), json::to_json_string(&tree)).unwrap();
        let run_batch_with = |extra: &[&str]| {
            // One worker: the second copy deterministically hits the entry
            // the first one deposited.
            let mut args = vec![
                "--batch",
                dir.to_str().unwrap(),
                "--top-k",
                "2",
                "--jobs",
                "1",
                "--quiet",
            ];
            args.extend(extra);
            let (json, _) = run(&parse_args(args).unwrap()).unwrap();
            json
        };
        let plain = run_batch_with(&[]);
        let cached = run_batch_with(&["--cache"]);
        let normalise = |text: &str| {
            serde_json::from_str::<ft_batch::BatchReport>(text)
                .expect("valid batch report")
                .to_deterministic_json()
        };
        assert_eq!(
            normalise(&plain),
            normalise(&cached),
            "--cache must not change a byte of the deterministic report"
        );
        let parsed: serde_json::Value = serde_json::from_str(&cached).unwrap();
        assert!(parsed["summary"]["cache"]["hits"].as_u64().unwrap() > 0);
        let plain_parsed: serde_json::Value = serde_json::from_str(&plain).unwrap();
        assert!(plain_parsed["summary"]["cache"].is_null());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_mode_honours_the_solution_cap() {
        let dir = std::env::temp_dir().join(format!("mpmcs4fta_cli_budget_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let tree = examples::fire_protection_system();
        fs::write(dir.join("fps.json"), json::to_json_string(&tree)).unwrap();
        let options = parse_args([
            "--batch",
            dir.to_str().unwrap(),
            "--top-k",
            "5",
            "--max-solutions",
            "2",
            "--quiet",
        ])
        .unwrap();
        let result = run_with_status(&options).unwrap();
        assert!(result.truncated);
        let parsed: serde_json::Value = serde_json::from_str(&result.output).unwrap();
        let row = &parsed["results"][0];
        assert_eq!(row["truncated"].as_bool(), Some(true));
        assert_eq!(row["cut_sets"].as_array().map(|c| c.len()), Some(2));
        assert!(result.summary.contains("[truncated]"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_mode_aggregates_a_directory_deterministically() {
        let dir = std::env::temp_dir().join(format!("mpmcs4fta_cli_batch_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("and.dft"),
            "toplevel top;\ntop and a b;\na prob=0.5;\nb prob=0.25;\n",
        )
        .unwrap();
        let tree = examples::fire_protection_system();
        fs::write(dir.join("fps.json"), json::to_json_string(&tree)).unwrap();

        let run_with_jobs = |jobs: &str| {
            let options = parse_args([
                "--batch",
                dir.to_str().unwrap(),
                "--jobs",
                jobs,
                "--top-k",
                "2",
                "--quiet",
            ])
            .unwrap();
            run(&options).unwrap()
        };
        let (json_1, summary) = run_with_jobs("1");
        let (json_8, _) = run_with_jobs("8");

        let parsed: serde_json::Value = serde_json::from_str(&json_1).unwrap();
        let results = parsed["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        // Directory order (lexicographic), not completion order.
        assert_eq!(results[0]["name"].as_str(), Some("and.dft"));
        assert_eq!(results[1]["name"].as_str(), Some("fps.json"));
        assert_eq!(results[1]["cut_sets"].as_array().map(|c| c.len()), Some(2));
        assert_eq!(parsed["summary"]["succeeded"].as_u64(), Some(2));
        assert!(summary.contains("2 trees (2 ok, 0 failed)"));

        // Byte-identical across worker counts, modulo timings + worker count:
        // round-trip through the typed report for its canonical deterministic
        // rendering.
        let normalise = |text: &str| {
            serde_json::from_str::<ft_batch::BatchReport>(text)
                .expect("run() emits a valid batch report")
                .to_deterministic_json()
        };
        assert_eq!(normalise(&json_1), normalise(&json_8));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_batch_directories_are_a_usage_error() {
        let dir = std::env::temp_dir().join(format!("mpmcs4fta_cli_empty_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let options = parse_args(["--batch", dir.to_str().unwrap()]).unwrap();
        assert!(matches!(run(&options), Err(CliError::Usage(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
