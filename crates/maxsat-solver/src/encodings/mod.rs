//! Cardinality and pseudo-Boolean encodings used by the MaxSAT algorithms.

pub mod gte;
pub mod totalizer;

use sat_solver::{Lit, Solver, Var};

use crate::instance::WcnfInstance;

/// Something that can receive fresh variables and clauses.
///
/// The encodings are written against this trait so they can emit clauses
/// directly into a running [`Solver`] (incremental use by the MaxSAT
/// algorithms) or into a [`WcnfInstance`] (offline encoding, testing).
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn add_var(&mut self) -> Var;
    /// Adds a clause.
    fn add_sink_clause(&mut self, lits: &[Lit]);
}

impl ClauseSink for Solver {
    fn add_var(&mut self) -> Var {
        let v = self.new_var();
        // Encoding variables (totalizer/GTE outputs) are assumed and re-used
        // by later reformulation clauses; keep them out of inprocessing's
        // variable elimination.
        self.freeze_var(v);
        v
    }

    fn add_sink_clause(&mut self, lits: &[Lit]) {
        self.add_clause(lits.iter().copied());
    }
}

impl ClauseSink for WcnfInstance {
    fn add_var(&mut self) -> Var {
        self.new_var()
    }

    fn add_sink_clause(&mut self, lits: &[Lit]) {
        self.add_hard(lits.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_and_instance_both_act_as_sinks() {
        let mut solver = Solver::new();
        let v = ClauseSink::add_var(&mut solver);
        ClauseSink::add_sink_clause(&mut solver, &[Lit::positive(v)]);
        assert_eq!(solver.num_vars(), 1);

        let mut inst = WcnfInstance::new();
        let v = ClauseSink::add_var(&mut inst);
        ClauseSink::add_sink_clause(&mut inst, &[Lit::positive(v)]);
        assert_eq!(inst.num_hard(), 1);
    }
}
