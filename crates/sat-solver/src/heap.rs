//! An indexed max-heap over variables ordered by VSIDS activity.
//!
//! The heap supports `decrease`/`increase` by position lookup, which the
//! solver needs when it bumps the activity of a variable that is already
//! enqueued.

use crate::lit::Var;

/// Indexed binary max-heap keyed by an external activity array.
#[derive(Debug, Default, Clone)]
pub(crate) struct VarHeap {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    positions: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    pub(crate) fn new() -> Self {
        VarHeap::default()
    }

    /// Ensures the position table covers `n` variables.
    pub(crate) fn grow(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, ABSENT);
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn contains(&self, var: Var) -> bool {
        self.positions
            .get(var.index())
            .map(|&p| p != ABSENT)
            .unwrap_or(false)
    }

    pub(crate) fn insert(&mut self, var: Var, activity: &[f64]) {
        self.grow(var.index() + 1);
        if self.contains(var) {
            return;
        }
        let pos = self.heap.len();
        self.heap.push(var.0);
        self.positions[var.index()] = pos;
        self.sift_up(pos, activity);
    }

    /// Removes and returns the variable with maximum activity.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty heap");
        self.positions[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores the heap property after the activity of `var` increased.
    pub(crate) fn update(&mut self, var: Var, activity: &[f64]) {
        if let Some(&pos) = self.positions.get(var.index()) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    fn sift_up(&mut self, mut pos: usize, activity: &[f64]) {
        let var = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / 2;
            let parent_var = self.heap[parent];
            if activity[var as usize] > activity[parent_var as usize] {
                self.heap[pos] = parent_var;
                self.positions[parent_var as usize] = pos;
                pos = parent;
            } else {
                break;
            }
        }
        self.heap[pos] = var;
        self.positions[var as usize] = pos;
    }

    fn sift_down(&mut self, mut pos: usize, activity: &[f64]) {
        let var = self.heap[pos];
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < len
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                child = right;
            }
            let child_var = self.heap[child];
            if activity[child_var as usize] > activity[var as usize] {
                self.heap[pos] = child_var;
                self.positions[child_var as usize] = pos;
                pos = child;
            } else {
                break;
            }
        }
        self.heap[pos] = var;
        self.positions[var as usize] = pos;
    }

    #[cfg(test)]
    fn check_invariants(&self, activity: &[f64]) {
        for (pos, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.positions[v as usize], pos);
            if pos > 0 {
                let parent = self.heap[(pos - 1) / 2];
                assert!(activity[parent as usize] >= activity[v as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0, 0.1];
        let mut heap = VarHeap::new();
        heap.grow(5);
        for i in 0..5 {
            heap.insert(Var::from_index(i), &activity);
        }
        heap.check_invariants(&activity);
        let order: Vec<usize> = std::iter::from_fn(|| heap.pop_max(&activity))
            .map(|v| v.index())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
        assert!(heap.is_empty());
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(0), &activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
        assert_eq!(heap.pop_max(&activity), None);
    }

    #[test]
    fn update_after_activity_bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        // Bump variable 0 above everything else.
        activity[0] = 10.0;
        heap.update(Var::from_index(0), &activity);
        heap.check_invariants(&activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0; 4];
        let mut heap = VarHeap::new();
        heap.grow(4);
        assert!(!heap.contains(Var::from_index(2)));
        heap.insert(Var::from_index(2), &activity);
        assert!(heap.contains(Var::from_index(2)));
        heap.pop_max(&activity);
        assert!(!heap.contains(Var::from_index(2)));
    }
}
