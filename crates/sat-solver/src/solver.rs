//! The CDCL solver.
//!
//! The implementation follows the classic MiniSat architecture: two-literal
//! watches with blockers, first-UIP conflict analysis with basic clause
//! minimisation, pluggable branching (VSIDS with phase saving by default,
//! see [`BranchingStrategy`]), Luby restarts, and activity/LBD-guided
//! learnt-clause database reduction. Clauses live in a flat arena
//! ([`crate::clause`]) addressed by offset, compacted in place when enough
//! of it is dead. Assumptions are supported and a final conflict (unsat
//! core over the assumptions) is produced when solving under assumptions
//! fails, which the core-guided MaxSAT algorithms rely on. Between solve
//! calls the solver can run bounded inprocessing (subsumption,
//! self-subsuming resolution, constrained variable elimination — see
//! [`crate::inprocess`]).

use std::sync::Arc;

use crate::branching::{BranchingChoice, BranchingStrategy};
use crate::clause::{self, ClauseDb, ClauseRef};
use crate::cnf::CnfFormula;
use crate::inprocess::InprocessConfig;
use crate::lit::{LBool, Lit, Var};
use crate::stats::SolverStats;

/// A cancellation probe installed with [`Solver::set_interrupt`]: the search
/// loop polls it at restart boundaries and periodically between conflicts,
/// and abandons the current call with [`SolveResult::Interrupted`] once it
/// returns `true`. The closure form (rather than a bare flag) lets callers
/// fold wall-clock deadlines and shared cancellation tokens into one probe.
pub type InterruptHook = Arc<dyn Fn() -> bool + Send + Sync>;

/// Tunable solver parameters.
///
/// The defaults mirror MiniSat's. The parallel MaxSAT portfolio (paper Step 5)
/// instantiates solvers with different configurations so that the racers
/// explore the search space differently.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities (0 < decay < 1).
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities (0 < decay < 1).
    pub clause_decay: f64,
    /// Frequency of random branching decisions in `[0, 1)` (VSIDS only).
    pub random_var_freq: f64,
    /// Initial number of conflicts between restarts.
    pub restart_first: u64,
    /// Default polarity assigned to fresh variables (phase saving overrides it).
    pub default_phase: bool,
    /// Seed for the solver-internal RNG (random decisions, tie breaking).
    pub seed: u64,
    /// Initial learnt-clause limit as a fraction of the original clause count.
    pub learntsize_factor: f64,
    /// Growth factor applied to the learnt-clause limit after each reduction.
    pub learntsize_inc: f64,
    /// Which branching heuristic drives decisions (see
    /// [`BranchingChoice`]).
    pub branching: BranchingChoice,
    /// Inprocessing schedule and bounds (see [`InprocessConfig`]).
    pub inprocess: InprocessConfig,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            random_var_freq: 0.0,
            restart_first: 100,
            default_phase: false,
            seed: 42,
            learntsize_factor: 1.0 / 3.0,
            learntsize_inc: 1.1,
            branching: BranchingChoice::Vsids,
            inprocess: InprocessConfig::default(),
        }
    }
}

/// A total satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Truth value of `var` in the model.
    ///
    /// # Panics
    ///
    /// Panics if the variable was not known to the solver.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Truth value of a literal in the model.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) ^ lit.is_negative()
    }

    /// The model as a boolean slice indexed by variable.
    pub fn as_slice(&self) -> &[bool] {
        &self.values
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Outcome of a `solve` call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula (under the given assumptions) is satisfiable.
    Sat(Model),
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The call was abandoned because the installed [`InterruptHook`] fired
    /// before the search decided the formula. The solver state stays
    /// consistent (the trail is fully backtracked, learnt clauses are kept),
    /// so a later call resumes the search seamlessly.
    Interrupted,
}

impl SolveResult {
    /// `true` if the result is [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// Returns the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat | SolveResult::Interrupted => None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Watcher {
    pub(crate) cref: ClauseRef,
    pub(crate) blocker: Lit,
}

/// A CDCL SAT solver.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Solver {
    pub(crate) config: SolverConfig,
    pub(crate) db: ClauseDb,
    pub(crate) watches: Vec<Vec<Watcher>>,
    pub(crate) assigns: Vec<LBool>,
    pub(crate) phase: Vec<bool>,
    pub(crate) reason: Vec<Option<ClauseRef>>,
    pub(crate) level: Vec<u32>,
    pub(crate) trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    cla_inc: f64,
    branching: Box<dyn BranchingStrategy>,
    seen: Vec<bool>,
    pub(crate) ok: bool,
    pub(crate) stats: SolverStats,
    max_learnt: f64,
    num_original_clauses: usize,
    unsat_core: Vec<Lit>,
    last_model: Option<Model>,
    interrupt: Option<InterruptHook>,
    /// Variables that inprocessing must never eliminate (assumption
    /// variables are frozen automatically; encoding layers freeze their
    /// selector variables explicitly).
    pub(crate) frozen: Vec<bool>,
    /// Variables removed by bounded variable elimination. Their clauses are
    /// kept on [`Solver::elim_stack`] for model extension and restoration.
    pub(crate) eliminated: Vec<bool>,
    /// For each eliminated variable, the clauses it occurred in at
    /// elimination time (model extension walks this in reverse).
    pub(crate) elim_stack: Vec<(Var, Vec<Vec<Lit>>)>,
    /// Conflict count at the end of the last inprocessing round.
    pub(crate) last_inprocess_conflicts: u64,
}

/// Private outcome of one bounded `search` episode.
enum SearchOutcome {
    /// The formula was decided within the conflict budget.
    Decided(bool),
    /// The conflict budget was exhausted; restart and search again.
    Restart,
    /// The interrupt hook fired mid-search.
    Interrupted,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_clauses", &self.db.len())
            .field("branching", &self.branching.name())
            .field("ok", &self.ok)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        let branching = config.branching.build(&config);
        Solver {
            config,
            db: ClauseDb::default(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            cla_inc: 1.0,
            branching,
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            max_learnt: 0.0,
            num_original_clauses: 0,
            unsat_core: Vec::new(),
            last_model: None,
            interrupt: None,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_stack: Vec::new(),
            last_inprocess_conflicts: 0,
        }
    }

    /// Installs (or clears) the cancellation probe polled by the search loop.
    /// See [`InterruptHook`].
    pub fn set_interrupt(&mut self, hook: Option<InterruptHook>) {
        self.interrupt = hook;
    }

    /// `true` when an installed interrupt hook currently requests
    /// cancellation.
    fn interrupt_requested(&self) -> bool {
        self.interrupt.as_ref().is_some_and(|hook| hook())
    }

    /// Creates a solver preloaded with the clauses of `cnf`.
    pub fn from_cnf(cnf: &CnfFormula) -> Self {
        let mut solver = Solver::new();
        solver.add_cnf(cnf);
        solver
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learnt, including lazily deleted ones).
    pub fn num_clauses(&self) -> usize {
        self.db.len()
    }

    /// Number of learnt clauses currently alive in the database — the state
    /// an incremental session carries between solve calls.
    pub fn num_learnt(&self) -> usize {
        self.db.num_learnt
    }

    /// Read-only views of every live clause (original and learnt), in
    /// insertion order.
    pub fn clauses(&self) -> impl Iterator<Item = crate::clause::Clause<'_>> {
        self.db
            .refs()
            .filter(|&c| !self.db.is_deleted(c))
            .map(|c| self.db.view(c))
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The name of the branching heuristic in effect.
    pub fn branching_name(&self) -> &'static str {
        self.branching.name()
    }

    /// `false` once the clause database has been proven unsatisfiable at the
    /// top level (no assumptions involved).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.phase.push(self.config.default_phase);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.branching.on_new_var(v);
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Marks `var` as untouchable by inprocessing's variable elimination.
    /// Assumption variables are frozen automatically on every
    /// [`Solver::solve_with_assumptions`] call; encoding layers (soft-clause
    /// selectors, totalizer outputs) freeze theirs at allocation time.
    pub fn freeze_var(&mut self, var: Var) {
        self.ensure_vars(var.index() + 1);
        self.frozen[var.index()] = true;
    }

    /// `true` when `var` is protected from variable elimination.
    pub fn is_frozen(&self, var: Var) -> bool {
        self.frozen.get(var.index()).copied().unwrap_or(false)
    }

    /// Adds all clauses of a [`CnfFormula`].
    pub fn add_cnf(&mut self, cnf: &CnfFormula) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.add_clause(clause.iter().copied());
        }
    }

    /// Adds a clause. Returns `false` if the clause database became
    /// unsatisfiable at the top level.
    ///
    /// Clauses may only be added between `solve` calls (the solver is always
    /// at decision level 0 at that point).
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            self.ensure_vars(lit.var().index() + 1);
        }
        // A new clause may mention a variable that inprocessing eliminated;
        // restore such variables first (re-adding their original clauses
        // keeps the database logically equivalent — the resolvents that
        // replaced them are implied).
        if !self.elim_stack.is_empty() {
            for lit in &clause {
                let v = lit.var();
                if self.eliminated[v.index()] {
                    self.restore_eliminated_var(v);
                    if !self.ok {
                        return false;
                    }
                }
            }
        }
        clause.sort_unstable();
        clause.dedup();
        // Tautology / top-level simplification.
        let mut simplified = Vec::with_capacity(clause.len());
        let mut i = 0;
        while i < clause.len() {
            let lit = clause[i];
            if i + 1 < clause.len() && clause[i + 1] == !lit {
                return true; // tautology: p ∨ ¬p
            }
            match self.lit_value(lit) {
                LBool::True => return true, // clause already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(lit),
            }
            i += 1;
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let cref = self.db.add(&simplified, false);
                self.num_original_clauses += 1;
                self.attach_clause(cref);
                true
            }
        }
    }

    /// Re-activates a variable removed by variable elimination: its original
    /// clauses are added back (restoring any variables *they* mention that
    /// were eliminated later, recursively).
    fn restore_eliminated_var(&mut self, var: Var) {
        if !self.eliminated[var.index()] {
            return;
        }
        self.eliminated[var.index()] = false;
        let pos = self
            .elim_stack
            .iter()
            .rposition(|(v, _)| *v == var)
            .expect("eliminated variable has a stack entry");
        let (_, clauses) = self.elim_stack.remove(pos);
        for lits in clauses {
            // `add_clause` restores nested eliminated variables itself.
            self.add_clause(lits);
            if !self.ok {
                return;
            }
        }
    }

    pub(crate) fn attach_clause(&mut self, cref: ClauseRef) {
        let l0 = self.db.lit_at(cref, 0);
        let l1 = self.db.lit_at(cref, 1);
        self.watches[(!l0).code()].push(Watcher { cref, blocker: l1 });
        self.watches[(!l1).code()].push(Watcher { cref, blocker: l0 });
    }

    /// Removes the clause's two watcher entries (it must currently be
    /// attached and live). Used by inprocessing before rewriting a clause's
    /// literals in place.
    pub(crate) fn detach_clause(&mut self, cref: ClauseRef) {
        let l0 = self.db.lit_at(cref, 0);
        let l1 = self.db.lit_at(cref, 1);
        self.watches[(!l0).code()].retain(|w| w.cref != cref);
        self.watches[(!l1).code()].retain(|w| w.cref != cref);
    }

    #[inline(always)]
    fn var_value(&self, var: Var) -> LBool {
        self.assigns[var.index()]
    }

    #[inline(always)]
    pub(crate) fn lit_value(&self, lit: Lit) -> LBool {
        let v = self.assigns[lit.var().index()];
        if lit.is_negative() {
            v.negate()
        } else {
            v
        }
    }

    #[inline(always)]
    pub(crate) fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    pub(crate) fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        debug_assert!(self.lit_value(lit).is_undef());
        let v = lit.var().index();
        self.assigns[v] = LBool::from_bool(lit.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("trail not empty");
            let v = lit.var();
            self.phase[v.index()] = self.var_value(v) == LBool::True;
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.branching.on_unassign(v);
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn clause_bump_activity(&mut self, cref: ClauseRef) {
        let activity = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, activity);
        if activity > 1e20 {
            let refs: Vec<ClauseRef> = self.db.refs().collect();
            for c in refs {
                let scaled = self.db.activity(c) * 1e-20;
                self.db.set_activity(c, scaled);
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn clause_decay_activity(&mut self) {
        self.cla_inc /= self.config.clause_decay;
    }

    /// Unit propagation. Returns the conflicting clause, if any.
    ///
    /// The watcher scan is allocation-free: each watch list is taken out,
    /// compacted in place (the blocker fast path just slides the entry
    /// down), and put back.
    pub(crate) fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut watchers = std::mem::take(&mut self.watches[p.code()]);
            let total = watchers.len();
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < total {
                let w = watchers[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    watchers[j] = w;
                    j += 1;
                    continue;
                }
                if self.db.is_deleted(w.cref) {
                    continue; // lazily drop watchers of deleted clauses
                }
                let false_lit = !p;
                if self.db.lit_at(w.cref, 0) == false_lit {
                    self.db.swap_lits(w.cref, 0, 1);
                }
                let first = self.db.lit_at(w.cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    watchers[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a replacement watch.
                let len = self.db.len_of(w.cref);
                for k in 2..len {
                    let cand = self.db.lit_at(w.cref, k);
                    if self.lit_value(cand) != LBool::False {
                        self.db.swap_lits(w.cref, 1, k);
                        self.watches[(!cand).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Unit or conflicting: keep watching.
                watchers[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    // Copy the unexamined tail back in one block move.
                    watchers.copy_within(i..total, j);
                    j += total - i;
                    i = total;
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            watchers.truncate(j);
            self.watches[p.code()] = watchers;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, mut conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::positive(Var::from_index(0))];
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            if self.db.is_learnt(conflict) {
                self.clause_bump_activity(conflict);
            }
            let len = self.db.len_of(conflict);
            let start = usize::from(p.is_some());
            for k in start..len {
                let q = self.db.lit_at(conflict, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.branching.on_conflict_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal of the current level to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            conflict = self.reason[pl.var().index()]
                .expect("propagated literal at conflict level must have a reason");
        }

        // Basic (non-recursive) clause minimisation: a literal is redundant if
        // its reason clause is fully covered by the remaining learnt literals.
        let mut minimized = Vec::with_capacity(learnt.len());
        minimized.push(learnt[0]);
        for &lit in &learnt[1..] {
            let keep = match self.reason[lit.var().index()] {
                None => true,
                Some(reason) => {
                    let rlen = self.db.len_of(reason);
                    (1..rlen).any(|k| {
                        let r = self.db.lit_at(reason, k);
                        !self.seen[r.var().index()] && self.level[r.var().index()] > 0
                    })
                }
            };
            if keep {
                minimized.push(lit);
            }
        }
        // Clear the seen flags of all literals touched.
        for &lit in &learnt {
            self.seen[lit.var().index()] = false;
        }
        let mut learnt = minimized;

        // Compute the backtrack level and move the corresponding literal to
        // position 1 so that it is watched.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backtrack_level)
    }

    /// Computes the subset of assumptions responsible for falsifying `p`
    /// (the final conflict). `p` is the assumption that was found false.
    fn analyze_final(&mut self, p: Lit) {
        self.unsat_core.clear();
        self.unsat_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var();
            if !self.seen[v.index()] {
                continue;
            }
            match self.reason[v.index()] {
                None => {
                    debug_assert!(self.level[v.index()] > 0);
                    // A decision below/at the assumption levels is an assumption;
                    // record its negation (the final conflict is a clause).
                    self.unsat_core.push(!lit);
                }
                Some(reason) => {
                    let rlen = self.db.len_of(reason);
                    for k in 1..rlen {
                        let q = self.db.lit_at(reason, k);
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v.index()] = false;
        }
        self.seen[p.var().index()] = false;
    }

    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = Vec::new();
        for cref in self.db.refs() {
            if self.db.is_learnt(cref) && !self.db.is_deleted(cref) && self.db.len_of(cref) > 2 {
                learnt_refs.push(cref);
            }
        }
        learnt_refs.sort_by(|&a, &b| {
            self.db.lbd(b).cmp(&self.db.lbd(a)).then(
                self.db
                    .activity(a)
                    .partial_cmp(&self.db.activity(b))
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_remove = learnt_refs.len() / 2;
        let mut removed = 0;
        for cref in learnt_refs {
            if removed >= to_remove {
                break;
            }
            if self.is_locked(cref) || self.db.lbd(cref) <= 2 {
                continue;
            }
            self.db.delete(cref);
            self.stats.deleted_clauses += 1;
            removed += 1;
        }
        self.stats.learnt_clauses = self.db.num_learnt as u64;
        self.maybe_compact();
    }

    /// Compacts the clause arena when at least a quarter of it is dead.
    pub(crate) fn maybe_compact(&mut self) {
        if self.db.arena_len() >= 2048 && self.db.wasted * 4 >= self.db.arena_len() {
            self.compact_clauses();
        }
    }

    /// Rewrites the clause arena in place, dropping deleted clauses, then
    /// remaps every watcher and reason reference to the new offsets. Safe at
    /// any decision level; normally triggered automatically by learnt-DB
    /// reduction and inprocessing, exposed for tests and embedders that want
    /// to bound memory eagerly.
    pub fn compact_clauses(&mut self) {
        let table = self.db.compact();
        for list in &mut self.watches {
            list.retain_mut(|w| match clause::remap(&table, w.cref) {
                Some(new) => {
                    w.cref = new;
                    true
                }
                None => false,
            });
        }
        for slot in &mut self.reason {
            if let Some(cref) = *slot {
                *slot = clause::remap(&table, cref);
            }
        }
        self.stats.arena_compactions += 1;
    }

    pub(crate) fn is_locked(&self, cref: ClauseRef) -> bool {
        let first = self.db.lit_at(cref, 0);
        self.lit_value(first) == LBool::True && self.reason[first.var().index()] == Some(cref)
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    /// How many conflicts may pass between polls of the interrupt hook
    /// within one `search` episode (the hook is also polled at every restart
    /// boundary). Small enough to bound cancellation latency, large enough to
    /// keep the probe off the hot path.
    const INTERRUPT_CHECK_INTERVAL: u64 = 512;

    /// CDCL search with a conflict budget: decided within the budget,
    /// restart-requested when the budget is exhausted, or interrupted when
    /// the installed hook fired.
    fn search(&mut self, conflict_budget: u64, assumptions: &[Lit]) -> SearchOutcome {
        let mut conflicts = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                conflicts += 1;
                self.stats.conflicts += 1;
                if conflicts.is_multiple_of(Self::INTERRUPT_CHECK_INTERVAL)
                    && self.interrupt_requested()
                {
                    self.cancel_until(0);
                    return SearchOutcome::Interrupted;
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.unsat_core.clear();
                    return SearchOutcome::Decided(false);
                }
                let (learnt, backtrack_level) = self.analyze(conflict);
                self.cancel_until(backtrack_level);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let asserting = learnt[0];
                    let cref = self.db.add(&learnt, true);
                    self.db.set_lbd(cref, lbd);
                    self.attach_clause(cref);
                    self.clause_bump_activity(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.branching.on_conflict();
                self.clause_decay_activity();
                self.stats.learnt_clauses = self.db.num_learnt as u64;
            } else {
                if conflicts >= conflict_budget {
                    self.cancel_until(0);
                    return SearchOutcome::Restart;
                }
                if self.db.num_learnt as f64 > self.max_learnt {
                    self.reduce_db();
                    self.max_learnt *= self.config.learntsize_inc;
                }
                // Apply pending assumptions as decisions.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => {
                            self.analyze_final(!p);
                            // The core stores assumption literals themselves.
                            let core: Vec<Lit> = self.unsat_core.iter().map(|&l| !l).collect();
                            self.unsat_core = core;
                            return SearchOutcome::Decided(false);
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(lit) => lit,
                    None => {
                        self.stats.decisions += 1;
                        match self.branching.pick(&self.assigns, &self.phase) {
                            Some(lit) => lit,
                            None => return SearchOutcome::Decided(true),
                        }
                    }
                };
                self.new_decision_level();
                self.unchecked_enqueue(next, None);
            }
        }
    }

    fn luby(y: f64, mut x: u64) -> f64 {
        let (mut size, mut seq) = (1u64, 0u32);
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        y.powi(seq as i32)
    }

    /// Solves the current clause database.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumptions.
    ///
    /// When the result is [`SolveResult::Unsat`], [`Solver::unsat_core`]
    /// returns a subset of the assumptions that is already unsatisfiable
    /// together with the clause database (the *final conflict*).
    ///
    /// When an [`InterruptHook`] is installed ([`Solver::set_interrupt`]) and
    /// fires mid-search, the call returns [`SolveResult::Interrupted`] with
    /// the trail fully backtracked; learnt clauses, activities and phases are
    /// kept, so a later call resumes the search.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.stats.solve_calls > 0 {
            // A warm start: every learnt clause still alive was derived by an
            // earlier call and is reused instead of re-derived.
            self.stats.incremental_calls += 1;
            self.stats.learnt_reused += self.db.num_learnt as u64;
        }
        self.stats.solve_calls += 1;
        self.unsat_core.clear();
        self.last_model = None;
        if !self.ok {
            return SolveResult::Unsat;
        }
        for lit in assumptions {
            self.ensure_vars(lit.var().index() + 1);
            // Assumption variables must survive variable elimination: freeze
            // them forever, and restore any that were eliminated before this
            // call first assumed them.
            self.frozen[lit.var().index()] = true;
            if self.eliminated[lit.var().index()] {
                self.restore_eliminated_var(lit.var());
                if !self.ok {
                    return SolveResult::Unsat;
                }
            }
        }
        // A level-0 boundary: run scheduled inprocessing before the search.
        self.maybe_inprocess();
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.max_learnt <= 0.0 {
            self.max_learnt =
                (self.num_original_clauses as f64 * self.config.learntsize_factor).max(1000.0);
        }
        let mut restarts = 0u64;
        let result = loop {
            if self.interrupt_requested() {
                self.cancel_until(0);
                return SolveResult::Interrupted;
            }
            let budget =
                (Self::luby(2.0, restarts) * self.config.restart_first as f64).max(1.0) as u64;
            match self.search(budget, assumptions) {
                SearchOutcome::Decided(answer) => break answer,
                SearchOutcome::Interrupted => return SolveResult::Interrupted,
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                }
            }
        };
        let outcome = if result {
            let mut values: Vec<bool> = (0..self.num_vars())
                .map(|i| match self.assigns[i] {
                    LBool::True => true,
                    LBool::False => false,
                    LBool::Undef => self.phase[i],
                })
                .collect();
            self.extend_model(&mut values);
            let model = Model { values };
            self.last_model = Some(model.clone());
            SolveResult::Sat(model)
        } else {
            SolveResult::Unsat
        };
        self.cancel_until(0);
        outcome
    }

    /// Assigns every eliminated variable a value satisfying its stored
    /// clauses (walking the elimination stack in reverse, so variables
    /// eliminated later — whose clauses may mention variables eliminated
    /// earlier — are fixed first... the other way around: clauses stored for
    /// an *earlier* elimination may mention variables eliminated *later*,
    /// so the later ones must be decided first).
    fn extend_model(&self, values: &mut [bool]) {
        for (var, clauses) in self.elim_stack.iter().rev() {
            // Try the current tentative value; flip if any stored clause is
            // falsified (resolution guarantees one of the two values works).
            let satisfied = |values: &[bool], lits: &[Lit]| {
                lits.iter()
                    .any(|l| values[l.var().index()] ^ l.is_negative())
            };
            if clauses.iter().any(|c| !satisfied(values, c)) {
                values[var.index()] = !values[var.index()];
            }
            debug_assert!(
                clauses.iter().all(|c| satisfied(values, c)),
                "variable elimination must be model-extendable"
            );
        }
    }

    /// The final conflict of the last failed `solve_with_assumptions` call:
    /// a subset of the assumptions that cannot be jointly satisfied.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.unsat_core
    }

    /// The model of the last successful solve call, if any.
    pub fn last_model(&self) -> Option<&Model> {
        self.last_model.as_ref()
    }

    /// Checks the internal watch/reason/arena invariants, panicking on any
    /// violation. Used by the compaction and inprocessing regression tests;
    /// O(total literals), so never called on the hot path.
    #[doc(hidden)]
    pub fn assert_integrity(&self) {
        for cref in self.db.refs() {
            if self.db.is_deleted(cref) {
                continue;
            }
            let lits = self.db.lits(cref);
            assert!(lits.len() >= 2, "attached clauses have at least 2 literals");
            for watched in &lits[..2] {
                assert!(
                    self.watches[(!*watched).code()]
                        .iter()
                        .any(|w| w.cref == cref),
                    "live clause {cref:?} must be watched by its first two literals"
                );
            }
        }
        for list in &self.watches {
            for w in list {
                assert!(
                    w.cref.offset() < self.db.arena_len(),
                    "watcher points into the arena"
                );
            }
        }
        for (v, slot) in self.reason.iter().enumerate() {
            if let Some(cref) = slot {
                assert!(!self.db.is_deleted(*cref), "reason clauses stay live");
                assert_eq!(
                    self.db.lit_at(*cref, 0).var(),
                    Var::from_index(v),
                    "a reason clause's first literal is the implied literal"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }
    fn neg(i: usize) -> Lit {
        Lit::negative(Var::from_index(i))
    }

    #[test]
    fn trivially_satisfiable() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(a)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn trivially_unsatisfiable() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::positive(a)]);
        s.add_clause([Lit::negative(a)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // (¬a ∨ b) ∧ (¬b ∨ c) ∧ a  ⟹  c
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_clause([neg(0), pos(1)]);
        s.add_clause([neg(1), pos(2)]);
        s.add_clause([pos(0)]);
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.value(Var::from_index(0)));
                assert!(m.value(Var::from_index(1)));
                assert!(m.value(Var::from_index(2)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // Variables p_{i,j}: pigeon i in hole j, i in 0..3, j in 0..2.
        let mut s = Solver::new();
        let var = |i: usize, j: usize| Var::from_index(i * 2 + j);
        s.ensure_vars(6);
        for i in 0..3 {
            s.add_clause([Lit::positive(var(i, 0)), Lit::positive(var(i, 1))]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::negative(var(i1, j)), Lit::negative(var(i2, j))]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_satisfiability() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::positive(a), Lit::positive(b)]);
        // Assuming both false must fail...
        let result = s.solve_with_assumptions(&[Lit::negative(a), Lit::negative(b)]);
        assert_eq!(result, SolveResult::Unsat);
        let core = s.unsat_core().to_vec();
        assert!(!core.is_empty());
        assert!(core
            .iter()
            .all(|l| *l == Lit::negative(a) || *l == Lit::negative(b)));
        // ...but the solver is still usable and SAT without assumptions.
        assert!(s.is_ok());
        assert!(s.solve().is_sat());
        // And SAT with a single assumption.
        match s.solve_with_assumptions(&[Lit::negative(a)]) {
            SolveResult::Sat(m) => assert!(m.value(b)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn unsat_core_is_a_subset_of_assumptions() {
        let mut s = Solver::new();
        s.ensure_vars(4);
        // x0 and x1 conflict through the clauses; x2, x3 are irrelevant.
        s.add_clause([neg(0), neg(1)]);
        let assumptions = [pos(0), pos(2), pos(1), pos(3)];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let core = s.unsat_core();
        assert!(!core.is_empty());
        for lit in core {
            assert!(
                assumptions.contains(lit),
                "core literal {lit:?} not an assumption"
            );
        }
        // The irrelevant assumptions should not both be required; the core must
        // mention x0 or x1.
        assert!(core.contains(&pos(0)) || core.contains(&pos(1)));
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let mut s = Solver::new();
        s.ensure_vars(2);
        s.add_clause([pos(0), pos(0), pos(1)]);
        s.add_clause([pos(0), neg(0)]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses_on_random_3sat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for instance in 0..20 {
            let num_vars = 30;
            let num_clauses = 100;
            let mut cnf = CnfFormula::with_vars(num_vars);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = Var::from_index(rng.gen_range(0..num_vars));
                    clause.push(Lit::new(v, rng.gen_bool(0.5)));
                }
                cnf.add_clause(clause);
            }
            let mut s = Solver::from_cnf(&cnf);
            if let SolveResult::Sat(model) = s.solve() {
                assert_eq!(
                    cnf.evaluate(model.as_slice()),
                    Some(true),
                    "model must satisfy instance {instance}"
                );
            }
        }
    }

    #[test]
    fn random_branching_agrees_with_vsids_on_random_3sat() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(13);
        for instance in 0..20 {
            let num_vars = 25;
            let mut cnf = CnfFormula::with_vars(num_vars);
            for _ in 0..95 {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = Var::from_index(rng.gen_range(0..num_vars));
                    clause.push(Lit::new(v, rng.gen_bool(0.5)));
                }
                cnf.add_clause(clause);
            }
            let mut vsids = Solver::from_cnf(&cnf);
            let mut random = Solver::with_config(SolverConfig {
                branching: BranchingChoice::Random,
                ..SolverConfig::default()
            });
            random.add_cnf(&cnf);
            assert_eq!(random.branching_name(), "random");
            let a = vsids.solve().is_sat();
            let b = random.solve().is_sat();
            assert_eq!(a, b, "instance {instance}: heuristics must agree");
            if let Some(model) = random.last_model() {
                assert_eq!(cnf.evaluate(model.as_slice()), Some(true));
            }
        }
    }

    #[test]
    fn solver_is_reusable_across_incremental_clause_additions() {
        let mut s = Solver::new();
        s.ensure_vars(3);
        s.add_clause([pos(0), pos(1), pos(2)]);
        assert!(s.solve().is_sat());
        s.add_clause([neg(0)]);
        assert!(s.solve().is_sat());
        s.add_clause([neg(1)]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(Var::from_index(2))),
            other => panic!("expected SAT, got {other:?}"),
        }
        s.add_clause([neg(2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        s.ensure_vars(6);
        for i in 0..5 {
            s.add_clause([neg(i), pos(i + 1)]);
        }
        s.add_clause([pos(0)]);
        s.solve();
        assert!(s.stats().solve_calls >= 1);
        assert!(s.stats().propagations > 0);
    }

    #[test]
    fn interrupt_hook_abandons_and_later_resumes_the_search() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let mut s = Solver::new();
        s.ensure_vars(2);
        s.add_clause([pos(0), pos(1)]);
        let flag = Arc::new(AtomicBool::new(true));
        let probe = Arc::clone(&flag);
        s.set_interrupt(Some(Arc::new(move || probe.load(Ordering::Relaxed))));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert!(s.last_model().is_none());
        assert!(s.is_ok(), "an interrupted call proves nothing");
        // Clearing the request lets the same solver finish the call.
        flag.store(false, Ordering::Relaxed);
        assert!(s.solve().is_sat());
        // Assumption-based calls are interruptible too.
        flag.store(true, Ordering::Relaxed);
        assert_eq!(
            s.solve_with_assumptions(&[neg(0)]),
            SolveResult::Interrupted
        );
        flag.store(false, Ordering::Relaxed);
        assert!(s.solve_with_assumptions(&[neg(0)]).is_sat());
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<f64> = (0..9).map(|i| Solver::luby(2.0, i)).collect();
        assert_eq!(seq, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0]);
    }

    #[test]
    fn default_phase_false_prefers_negative_models() {
        let mut s = Solver::new();
        s.ensure_vars(4);
        // All clauses satisfied by everything-false except the one forcing x0.
        s.add_clause([pos(0), pos(1), pos(2), pos(3)]);
        match s.solve() {
            SolveResult::Sat(m) => {
                let true_count = m.as_slice().iter().filter(|&&b| b).count();
                assert!(true_count <= 2, "phase saving should keep the model sparse");
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn explicit_compaction_preserves_the_search_state() {
        // Pigeonhole forces real learning; compacting mid-session must not
        // change any later answer.
        let mut s = Solver::new();
        let var = |i: usize, j: usize| Var::from_index(i * 3 + j);
        s.ensure_vars(12);
        for i in 0..4 {
            s.add_clause((0..3).map(|j| Lit::positive(var(i, j))));
        }
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause([Lit::negative(var(i1, j)), Lit::negative(var(i2, j))]);
                }
            }
        }
        // Satisfiable under an assumption set that relaxes one pigeon...
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(!s.is_ok());

        // A fresh solver exercising compaction on a satisfiable formula.
        let mut s = Solver::new();
        s.ensure_vars(30);
        for i in 0..29 {
            s.add_clause([neg(i), pos(i + 1)]);
        }
        assert!(s.solve_with_assumptions(&[pos(0)]).is_sat());
        s.assert_integrity();
        s.compact_clauses();
        s.assert_integrity();
        assert_eq!(s.stats().arena_compactions, 1);
        assert!(s.solve_with_assumptions(&[pos(0)]).is_sat());
        assert!(s.solve_with_assumptions(&[neg(29)]).is_sat());
        assert_eq!(
            s.solve_with_assumptions(&[pos(0), neg(29)]),
            SolveResult::Unsat
        );
    }
}
