//! End-to-end smoke test of the HTTP front end: boot a server on an
//! ephemeral port, upload a bundled model over the socket, hit every
//! endpoint once, assert the golden facts of each answer, and shut down
//! gracefully.
//!
//! ```text
//! cargo run --release --example server_smoke
//! ```
//!
//! Run as a CI smoke step: the process exits non-zero (panics) if any
//! endpoint misbehaves, so a regression anywhere on the
//! socket → parse → analyse → render path turns the build red.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use ft_server::http::{read_response, ClientResponse};
use ft_server::{Server, ServerConfig};

fn request(addr: SocketAddr, request: &str) -> ClientResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to the smoke server");
    stream
        .write_all(request.as_bytes())
        .expect("write the request");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader).expect("read the response")
}

fn get(addr: SocketAddr, path: &str) -> ClientResponse {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n"),
    )
}

fn json(response: &ClientResponse) -> serde_json::Value {
    serde_json::from_str(&response.text()).expect("a JSON answer")
}

fn main() {
    let handle = Server::start(ServerConfig {
        workers: 2,
        cache_bytes: Some(16 * 1024 * 1024),
        ..ServerConfig::default()
    })
    .expect("the server binds an ephemeral loopback port");
    let addr = handle.addr();
    println!("smoke server on http://{addr}");

    // Health before any work.
    let health = get(addr, "/health");
    assert_eq!(health.status, 200);
    assert_eq!(json(&health)["status"], serde_json::json!("ok"));

    // Upload the fire protection system from the bundled model file.
    let model = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("examples/trees/fire_protection.json"),
    )
    .expect("bundled model file");
    let upload = request(
        addr,
        &format!(
            "POST /trees HTTP/1.1\r\nHost: smoke\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{model}",
            model.len()
        ),
    );
    assert_eq!(upload.status, 201, "{}", upload.text());
    let entry = json(&upload);
    let hash = entry["hash"].as_str().expect("content hash").to_string();
    assert_eq!(entry["created"], serde_json::json!(true));
    println!(
        "registered {} as {hash}",
        entry["tree"].as_str().unwrap_or("?")
    );

    // The registry lists it.
    let list = get(addr, "/trees");
    assert_eq!(list.status, 200);
    assert_eq!(json(&list)["trees"].as_array().map(Vec::len), Some(1));

    // One query per analysis endpoint, with a golden assert each.
    let mpmcs = get(addr, &format!("/trees/{hash}/mpmcs"));
    assert_eq!(mpmcs.status, 200);
    let report = json(&mpmcs);
    assert!(
        report["probability"].as_f64().expect("MPMCS probability") > 0.0,
        "the fire protection MPMCS has positive probability"
    );

    let top = get(addr, &format!("/trees/{hash}/top-k?k=2"));
    assert_eq!(top.status, 200);
    assert_eq!(json(&top).as_array().map(Vec::len), Some(2));

    let all = get(addr, &format!("/trees/{hash}/all-mcs"));
    assert_eq!(all.status, 200);
    let collected = all.text();

    // The same enumeration streamed: reassembles to the collected bytes.
    let streamed = get(addr, &format!("/trees/{hash}/all-mcs?stream=true"));
    assert_eq!(streamed.status, 200);
    assert_eq!(streamed.trailer("x-termination"), Some("complete"));
    let strip = |text: &str| {
        text.lines()
            .filter(|line| !line.contains("\"solve_time_ms\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&streamed.text()),
        strip(&collected),
        "the stream must reassemble to the collected answer"
    );
    println!(
        "streamed {} chunk(s), {} solution(s)",
        streamed.chunks.len(),
        streamed.trailer("x-delivered").unwrap_or("?")
    );

    let probability = get(addr, &format!("/trees/{hash}/probability"));
    assert_eq!(probability.status, 200);
    let p = json(&probability)["probability"]
        .as_f64()
        .expect("top-event probability");
    assert!((0.0..=1.0).contains(&p));

    let importance = get(addr, &format!("/trees/{hash}/importance"));
    assert_eq!(importance.status, 200);
    assert!(!json(&importance)
        .as_array()
        .expect("importance rows")
        .is_empty());

    let sweep = get(addr, &format!("/trees/{hash}/sweep?range=0:2:1"));
    assert_eq!(sweep.status, 200);
    assert_eq!(json(&sweep)["grid"].as_array().map(Vec::len), Some(3));

    // Budgets label truncation instead of hiding it.
    let capped = get(addr, &format!("/trees/{hash}/all-mcs?max-solutions=1"));
    assert_eq!(capped.status, 200);
    assert_eq!(json(&capped)["truncated"], serde_json::json!(true));

    // Deregister and verify the hash is gone.
    let deleted = request(
        addr,
        &format!("DELETE /trees/{hash} HTTP/1.1\r\nHost: smoke\r\nConnection: close\r\n\r\n"),
    );
    assert_eq!(deleted.status, 204);
    assert_eq!(get(addr, &format!("/trees/{hash}/mpmcs")).status, 404);

    let counters = handle.counters();
    handle.shutdown();
    println!(
        "smoke OK: {} requests on {} connections, {} streamed, {} shed",
        counters.requests, counters.accepted, counters.streamed, counters.shed
    );
}
