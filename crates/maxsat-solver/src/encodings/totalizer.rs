//! Totalizer cardinality encoding (Bailleux–Boufkhad).
//!
//! Given input literals `x_1 … x_n`, the totalizer introduces output literals
//! `o_1 … o_n` together with clauses enforcing the *sum side* implication
//! `(at least j inputs are true) ⇒ o_j`. This single direction is exactly what
//! the core-guided OLL algorithm needs: assuming `¬o_j` then forbids models
//! with `j` or more violated members of a core.

use sat_solver::Lit;

use super::ClauseSink;

/// A built totalizer over a fixed set of input literals.
#[derive(Clone, Debug)]
pub struct Totalizer {
    inputs: Vec<Lit>,
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Builds a totalizer over `inputs`, emitting clauses into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn build<S: ClauseSink>(sink: &mut S, inputs: &[Lit]) -> Self {
        assert!(!inputs.is_empty(), "totalizer needs at least one input");
        let outputs = Self::build_node(sink, inputs);
        Totalizer {
            inputs: inputs.to_vec(),
            outputs,
        }
    }

    fn build_node<S: ClauseSink>(sink: &mut S, inputs: &[Lit]) -> Vec<Lit> {
        if inputs.len() == 1 {
            return vec![inputs[0]];
        }
        let mid = inputs.len() / 2;
        let left = Self::build_node(sink, &inputs[..mid]);
        let right = Self::build_node(sink, &inputs[mid..]);
        let total = left.len() + right.len();
        let outputs: Vec<Lit> = (0..total).map(|_| Lit::positive(sink.add_var())).collect();
        // Sum-side clauses: (≥i from left) ∧ (≥j from right) ⇒ (≥ i+j overall).
        for i in 0..=left.len() {
            for j in 0..=right.len() {
                if i + j == 0 {
                    continue;
                }
                let mut clause = Vec::with_capacity(3);
                if i > 0 {
                    clause.push(!left[i - 1]);
                }
                if j > 0 {
                    clause.push(!right[j - 1]);
                }
                clause.push(outputs[i + j - 1]);
                sink.add_sink_clause(&clause);
            }
        }
        outputs
    }

    /// The input literals.
    pub fn inputs(&self) -> &[Lit] {
        &self.inputs
    }

    /// Output literals: `outputs()[j]` is the literal implied when at least
    /// `j + 1` inputs are true.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// The output literal meaning "at least `bound` inputs are true".
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero or exceeds the number of inputs.
    pub fn at_least(&self, bound: usize) -> Lit {
        assert!(bound >= 1 && bound <= self.outputs.len());
        self.outputs[bound - 1]
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` if the totalizer has no inputs (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::WcnfInstance;
    use sat_solver::{Lit, SolveResult, Solver, Var};

    /// Exhaustively verifies the sum-side semantics: for every assignment of
    /// the inputs, forcing `¬o_{k+1}` is consistent iff at most `k` inputs are
    /// true.
    #[test]
    fn at_most_k_via_negated_outputs_is_exact() {
        let n = 5;
        for k in 0..n {
            let mut inst = WcnfInstance::with_vars(n);
            let inputs: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::from_index(i))).collect();
            let tot = Totalizer::build(&mut inst, &inputs);
            // Enforce "at most k": negate all outputs above k.
            for bound in (k + 1)..=n {
                inst.add_hard([!tot.at_least(bound)]);
            }
            for mask in 0..(1u32 << n) {
                let mut solver = Solver::new();
                solver.ensure_vars(inst.num_vars());
                for clause in inst.hard_clauses() {
                    solver.add_clause(clause.iter().copied());
                }
                let assumptions: Vec<Lit> = (0..n)
                    .map(|i| Lit::new(Var::from_index(i), mask & (1 << i) == 0))
                    .collect();
                let true_count = (0..n).filter(|i| mask & (1 << i) != 0).count();
                let result = solver.solve_with_assumptions(&assumptions);
                assert_eq!(
                    result.is_sat(),
                    true_count <= k,
                    "n={n} k={k} mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn single_input_totalizer_is_the_input_itself() {
        let mut inst = WcnfInstance::with_vars(1);
        let x = Lit::positive(Var::from_index(0));
        let tot = Totalizer::build(&mut inst, &[x]);
        assert_eq!(tot.at_least(1), x);
        assert_eq!(tot.len(), 1);
        assert!(!tot.is_empty());
        assert_eq!(inst.num_hard(), 0);
    }

    #[test]
    fn outputs_accumulate_with_forced_inputs() {
        // Force three of four inputs true; o_3 must be implied, and assuming
        // ¬o_3 must be unsatisfiable while ¬o_4 stays satisfiable.
        let n = 4;
        let mut solver = Solver::new();
        solver.ensure_vars(n);
        let inputs: Vec<Lit> = (0..n).map(|i| Lit::positive(Var::from_index(i))).collect();
        let tot = Totalizer::build(&mut solver, &inputs);
        for lit in inputs.iter().take(3) {
            solver.add_clause([*lit]);
        }
        assert_eq!(
            solver.solve_with_assumptions(&[!tot.at_least(3)]),
            SolveResult::Unsat
        );
        assert!(solver.solve_with_assumptions(&[!tot.at_least(4)]).is_sat());
    }

    #[test]
    #[should_panic]
    fn empty_input_list_is_rejected() {
        let mut inst = WcnfInstance::new();
        let _ = Totalizer::build(&mut inst, &[]);
    }
}
