//! Quickstart: build a fault tree programmatically and compute its Maximum
//! Probability Minimal Cut Set.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fault_tree::{FaultTreeBuilder, FaultTreeError};
use mpmcs::{MpmcsReport, MpmcsSolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Model the system as a fault tree.
    let tree = build_tree()?;
    println!(
        "fault tree '{}': {} basic events, {} gates",
        tree.name(),
        tree.num_events(),
        tree.num_gates()
    );

    // 2. Run the MaxSAT pipeline (paper Steps 1-6).
    let solver = MpmcsSolver::new();
    let solution = solver.solve(&tree)?;

    // 3. Inspect the answer.
    println!(
        "MPMCS = {}  (probability {:.4}, found by {})",
        solution.cut_set.display_names(&tree),
        solution.probability,
        solution.algorithm
    );

    // 4. Emit the JSON report of the original MPMCS4FTA tool.
    let report = MpmcsReport::new(&tree, &solution);
    println!("{}", report.to_json());
    Ok(())
}

/// A small web-service outage model: the service fails if the database
/// cluster loses both replicas, or if the load balancer fails, or if the
/// certificate expires while the renewal automation is broken.
fn build_tree() -> Result<fault_tree::FaultTree, FaultTreeError> {
    let mut builder = FaultTreeBuilder::new("web service outage");
    let primary = builder.basic_event("db primary fails", 0.05)?;
    let replica = builder.basic_event("db replica fails", 0.08)?;
    let balancer = builder.basic_event("load balancer fails", 0.002)?;
    let cert = builder.basic_event("certificate expires", 0.02)?;
    let automation = builder.basic_event("renewal automation broken", 0.1)?;

    let database = builder.and_gate("database cluster down", [primary.into(), replica.into()])?;
    let tls = builder.and_gate("tls outage", [cert.into(), automation.into()])?;
    let top = builder.or_gate(
        "service unavailable",
        [database.into(), balancer.into(), tls.into()],
    )?;
    builder.build(top.into())
}
