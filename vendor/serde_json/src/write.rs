//! Compact and pretty JSON writers.

use serde::{Number, Value};

/// Renders `value` without any whitespace.
pub fn write_compact(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Renders `value` with two-space indentation, matching `serde_json`'s
/// pretty printer closely enough for diffs and tests.
pub fn write_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some("  "), 0);
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(elements) => {
            if elements.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, element) in elements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, element, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, entry)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, entry, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, number: Number) {
    match number {
        Number::Int(n) => out.push_str(&n.to_string()),
        Number::Float(x) if x.is_finite() => out.push_str(&x.to_string()),
        // JSON has no representation for NaN/±inf; real serde_json errors,
        // this substitute degrades to null so report writing stays total.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Map;

    #[test]
    fn pretty_output_matches_the_expected_layout() {
        let mut inner = Map::new();
        inner.insert("k".to_string(), Value::Number(Number::Int(1)));
        let mut map = Map::new();
        map.insert("name".to_string(), Value::String("demo".to_string()));
        map.insert(
            "xs".to_string(),
            Value::Array(vec![Value::Bool(true), Value::Object(inner)]),
        );
        map.insert("empty".to_string(), Value::Array(vec![]));
        let pretty = write_pretty(&Value::Object(map));
        let expected = "{\n  \"name\": \"demo\",\n  \"xs\": [\n    true,\n    {\n      \"k\": 1\n    }\n  ],\n  \"empty\": []\n}";
        assert_eq!(pretty, expected);
    }

    #[test]
    fn compact_output_has_no_whitespace() {
        let mut map = Map::new();
        map.insert("a".to_string(), Value::Number(Number::Float(0.5)));
        let compact = write_compact(&Value::Object(map));
        assert_eq!(compact, "{\"a\":0.5}");
    }
}
