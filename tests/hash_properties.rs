//! Property tests for the canonical tree hash (`fault_tree::tree_hash`)
//! over the full generated corpus: the digests the analysis cache keys on
//! must be invariant under the renamings and commutative reorderings that
//! leave the analysis answers unchanged, must react to any probability
//! change, and must not collide across distinct generated workloads.

use fault_tree::{tree_hash, BasicEvent, EventId, FaultTree, Gate, NodeId, Probability, TreeHash};
use ft_generators::{benchmark_suite, shared_module_tree, Family, RandomTreeConfig};

/// A modest cross-section of every generator in the crate: all structural
/// families at several sizes and seeds, plus the named benchmark workloads.
fn corpus() -> Vec<(String, FaultTree)> {
    let mut trees: Vec<(String, FaultTree)> = Vec::new();
    for family in Family::all() {
        for size in [60usize, 140] {
            for seed in [1u64, 2, 3] {
                trees.push((
                    format!("{}-{size}-{seed}", family.name()),
                    family.generate(size, seed),
                ));
            }
        }
    }
    for (name, tree) in benchmark_suite(5) {
        trees.push((name, tree));
    }
    trees.push((
        "shared-modules-4x3x6".to_string(),
        shared_module_tree(4, 3, 6, 9),
    ));
    trees
}

/// An isomorphic twin: every event and gate renamed, the event table
/// reversed (so every `EventId` changes), and every gate's child list
/// reversed (gates are commutative: AND, OR and k-of-n voting are all
/// order-insensitive).
fn isomorphic_twin(tree: &FaultTree) -> FaultTree {
    let num_events = tree.num_events();
    let remap = |node: NodeId| match node {
        NodeId::Event(e) => NodeId::Event(EventId::from_index(num_events - 1 - e.index())),
        gate => gate,
    };
    let events: Vec<BasicEvent> = tree
        .event_ids()
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .enumerate()
        .map(|(i, e)| BasicEvent::new(format!("twin_e{i}"), tree.event(e).probability()))
        .collect();
    let gates: Vec<Gate> = tree
        .gate_ids()
        .map(|g| {
            let gate = tree.gate(g);
            let inputs: Vec<NodeId> = gate.inputs().iter().rev().map(|&n| remap(n)).collect();
            Gate::new(format!("twin_g{}", g.index()), gate.kind(), inputs)
        })
        .collect();
    FaultTree::from_parts(
        format!("twin:{}", tree.name()),
        events,
        gates,
        remap(tree.top()),
    )
    .expect("isomorphic twins are valid")
}

/// Renaming everything, renumbering every event and reversing every
/// commutative child list preserves both digests on the whole corpus.
#[test]
fn isomorphic_twins_hash_identically_across_the_corpus() {
    for (name, tree) in corpus() {
        let twin = isomorphic_twin(&tree);
        assert_eq!(
            tree_hash(&tree),
            tree_hash(&twin),
            "{name}: an isomorphic twin must hash identically"
        );
    }
}

/// Nudging any single event probability changes the weighted digest and
/// leaves the structure digest alone — on every corpus tree, for the first,
/// middle and last event.
#[test]
fn probability_changes_alter_exactly_the_weighted_digest() {
    for (name, tree) in corpus() {
        let base = tree_hash(&tree);
        let ids: Vec<EventId> = tree.event_ids().collect();
        for &victim in [ids[0], ids[ids.len() / 2], ids[ids.len() - 1]].iter() {
            let events: Vec<BasicEvent> = tree
                .event_ids()
                .map(|e| {
                    let p = tree.event(e).probability().value();
                    let p = if e == victim { (p * 1.5).min(0.999) } else { p };
                    BasicEvent::new(
                        tree.event(e).name().to_string(),
                        Probability::new(p).expect("perturbed probability stays valid"),
                    )
                })
                .collect();
            let gates: Vec<Gate> = tree
                .gate_ids()
                .map(|g| {
                    let gate = tree.gate(g);
                    Gate::new(gate.name().to_string(), gate.kind(), gate.inputs().to_vec())
                })
                .collect();
            let nudged = FaultTree::from_parts(tree.name(), events, gates, tree.top())
                .expect("perturbed tree is valid");
            let hash = tree_hash(&nudged);
            assert_eq!(
                base.structure, hash.structure,
                "{name}: probabilities must not touch the structure digest"
            );
            assert_ne!(
                base.weighted, hash.weighted,
                "{name}: event {victim:?} changed but the weighted digest did not"
            );
        }
    }
}

/// Zero collisions across the full corpus: distinct generated workloads get
/// distinct `(structure, weighted)` digests.
#[test]
fn the_generated_corpus_has_no_hash_collisions() {
    let corpus = corpus();
    let hashes: Vec<(String, TreeHash)> = corpus
        .iter()
        .map(|(name, tree)| (name.clone(), tree_hash(tree)))
        .collect();
    for (i, (name_a, hash_a)) in hashes.iter().enumerate() {
        for (name_b, hash_b) in &hashes[i + 1..] {
            assert_ne!(
                hash_a, hash_b,
                "corpus collision between {name_a} and {name_b}"
            );
        }
    }
    assert!(
        hashes.len() > 40,
        "the corpus must stay a real cross-section (got {})",
        hashes.len()
    );
}

/// Sharing-awareness on a generated DAG: replacing one genuinely shared
/// event with a fresh copy of identical probability keeps the local shapes
/// but must change both digests (the cut-set semantics differ).
#[test]
fn unsharing_an_event_changes_the_digests() {
    let config = RandomTreeConfig {
        shared_event_ratio: 0.5,
        ..RandomTreeConfig::default()
    };
    let tree = ft_generators::random_tree(&config, 13);
    // Find an event feeding two different gates.
    let shared = tree
        .event_ids()
        .find(|&e| {
            tree.gate_ids()
                .filter(|&g| tree.gate(g).inputs().contains(&NodeId::Event(e)))
                .count()
                >= 2
        })
        .expect("a 50% sharing ratio produces shared events");
    let host = tree
        .gate_ids()
        .find(|&g| tree.gate(g).inputs().contains(&NodeId::Event(shared)))
        .expect("the shared event has a host gate");
    let fresh = EventId::from_index(tree.num_events());
    let mut events: Vec<BasicEvent> = tree
        .event_ids()
        .map(|e| {
            BasicEvent::new(
                tree.event(e).name().to_string(),
                tree.event(e).probability(),
            )
        })
        .collect();
    events.push(BasicEvent::new(
        "unshared_copy",
        tree.event(shared).probability(),
    ));
    let gates: Vec<Gate> = tree
        .gate_ids()
        .map(|g| {
            let gate = tree.gate(g);
            let inputs: Vec<NodeId> = gate
                .inputs()
                .iter()
                .map(|&n| {
                    if g == host && n == NodeId::Event(shared) {
                        NodeId::Event(fresh)
                    } else {
                        n
                    }
                })
                .collect();
            Gate::new(gate.name().to_string(), gate.kind(), inputs)
        })
        .collect();
    let unshared = FaultTree::from_parts("unshared", events, gates, tree.top())
        .expect("the unshared variant is valid");
    let a = tree_hash(&tree);
    let b = tree_hash(&unshared);
    assert_ne!(a.structure, b.structure, "sharing must be structural");
    assert_ne!(a.weighted, b.weighted);
}
