//! Library backing the `mpmcs4fta` command line tool.
//!
//! The original MPMCS4FTA tool is a command-line program that reads a fault
//! tree, computes the Maximum Probability Minimal Cut Set, and writes the
//! result as JSON. This crate reproduces that workflow: argument parsing,
//! input-format detection (JSON or Galileo), solving, and JSON report
//! generation, all exposed as a library so it can be unit tested and reused.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::path::PathBuf;

use fault_tree::parser::{galileo, json};
use fault_tree::{examples, FaultTree};
use ft_generators::{random_tree, RandomTreeConfig};
use mpmcs::{AlgorithmChoice, EnumerationLimit, MpmcsOptions, MpmcsReport, MpmcsSolver};

/// Errors surfaced to the command line user.
#[derive(Debug)]
pub enum CliError {
    /// Command line arguments could not be interpreted.
    Usage(String),
    /// The input file could not be read.
    Io(std::io::Error),
    /// The input could not be parsed as a fault tree.
    Parse(fault_tree::FaultTreeError),
    /// The solver failed.
    Solve(mpmcs::MpmcsError),
    /// A classical analysis (MOCUS, BDD) exceeded its budget or failed.
    Analysis(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "cannot read input: {e}"),
            CliError::Parse(e) => write!(f, "cannot parse fault tree: {e}"),
            CliError::Solve(e) => write!(f, "solver error: {e}"),
            CliError::Analysis(message) => write!(f, "analysis error: {message}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<fault_tree::FaultTreeError> for CliError {
    fn from(e: fault_tree::FaultTreeError) -> Self {
        CliError::Parse(e)
    }
}

impl From<mpmcs::MpmcsError> for CliError {
    fn from(e: mpmcs::MpmcsError) -> Self {
        CliError::Solve(e)
    }
}

/// The usage string printed on `--help` or argument errors.
pub const USAGE: &str = "\
mpmcs4fta — Maximum Probability Minimal Cut Sets for Fault Tree Analysis

USAGE:
    mpmcs4fta [OPTIONS] <INPUT>
    mpmcs4fta [OPTIONS] --example fps|tank|sensors
    mpmcs4fta [OPTIONS] --generate <NODES> [--seed <SEED>]

INPUT:
    A fault tree in JSON (.json) or Galileo (.dft/.galileo/anything else) format.

OPTIONS:
    --format <json|galileo>     Force the input format (default: by extension)
    --algorithm <NAME>          portfolio (default) | sequential | oll | linear-su
    --analysis <NAME>           mpmcs (default) | path-set | importance | modules |
                                stability | dot | ascii
    --top-k <N>                 Report the N most probable minimal cut sets
    --all                       Report every minimal cut set (ordered by probability)
    --output <FILE>             Write the JSON report to FILE instead of stdout
    --quiet                     Suppress the human-readable summary on stderr
    --help                      Show this message

ANALYSES:
    mpmcs        the Maximum Probability Minimal Cut Set (paper pipeline)
    path-set     maximum-reliability minimal path sets (dual problem)
    importance   Birnbaum / Fussell-Vesely / RAW / RRW / criticality table
    modules      independent modules and modular quantification
    stability    MPMCS stability margins under probability perturbations
    dot          Graphviz DOT rendering with the MPMCS highlighted
    ascii        indented textual rendering of the tree
";

/// Which analysis the tool runs on the loaded tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisKind {
    /// The paper's MPMCS pipeline (default).
    #[default]
    Mpmcs,
    /// Maximum-reliability minimal path sets (the dual optimisation).
    PathSet,
    /// The per-event importance table.
    Importance,
    /// Module detection and modular quantification.
    Modules,
    /// MPMCS stability margins.
    Stability,
    /// Graphviz DOT output with the MPMCS highlighted.
    Dot,
    /// Indented ASCII rendering of the tree.
    Ascii,
}

/// How the fault tree is obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSource {
    /// Read from a file (with an optional format override).
    File {
        /// Path to the input file.
        path: PathBuf,
        /// Forced format, if any.
        format: Option<InputFormat>,
    },
    /// Use one of the built-in examples.
    Example(String),
    /// Generate a random tree of roughly this many nodes.
    Generated {
        /// Target total node count.
        nodes: usize,
        /// Generator seed.
        seed: u64,
    },
}

/// Supported input formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// The JSON document format.
    Json,
    /// The Galileo textual format.
    Galileo,
}

/// Parsed command line options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOptions {
    /// Where the fault tree comes from.
    pub input: InputSource,
    /// Which analysis to run.
    pub analysis: AnalysisKind,
    /// Which MaxSAT strategy to use.
    pub algorithm: AlgorithmChoice,
    /// How many cut sets to report (`None` = just the MPMCS).
    pub top_k: Option<usize>,
    /// Report all minimal cut sets.
    pub all: bool,
    /// Where to write the JSON report (`None` = stdout).
    pub output: Option<PathBuf>,
    /// Suppress the human-readable summary.
    pub quiet: bool,
}

/// Parses command line arguments (excluding the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] describing the problem, including when
/// `--help` is requested.
pub fn parse_args<I, S>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut input: Option<InputSource> = None;
    let mut format: Option<InputFormat> = None;
    let mut analysis = AnalysisKind::Mpmcs;
    let mut algorithm = AlgorithmChoice::Portfolio;
    let mut top_k: Option<usize> = None;
    let mut all = false;
    let mut output: Option<PathBuf> = None;
    let mut quiet = false;
    let mut generate: Option<usize> = None;
    let mut seed = 42u64;

    let args: Vec<String> = args.into_iter().map(Into::into).collect();
    let mut i = 0;
    let usage = |message: &str| CliError::Usage(message.to_string());
    while i < args.len() {
        let arg = args[i].as_str();
        let mut value = |name: &str| -> Result<String, CliError> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| CliError::Usage(format!("{name} expects a value")))
        };
        match arg {
            "--help" | "-h" => return Err(usage("help requested")),
            "--format" => {
                format = Some(match value("--format")?.as_str() {
                    "json" => InputFormat::Json,
                    "galileo" | "dft" => InputFormat::Galileo,
                    other => return Err(CliError::Usage(format!("unknown format {other:?}"))),
                })
            }
            "--algorithm" => {
                algorithm = match value("--algorithm")?.as_str() {
                    "portfolio" => AlgorithmChoice::Portfolio,
                    "sequential" => AlgorithmChoice::SequentialPortfolio,
                    "oll" => AlgorithmChoice::Oll,
                    "linear-su" | "linear" => AlgorithmChoice::LinearSu,
                    other => return Err(CliError::Usage(format!("unknown algorithm {other:?}"))),
                }
            }
            "--analysis" => {
                analysis = match value("--analysis")?.as_str() {
                    "mpmcs" | "cut-set" => AnalysisKind::Mpmcs,
                    "path-set" | "pathset" | "path" => AnalysisKind::PathSet,
                    "importance" => AnalysisKind::Importance,
                    "modules" | "module" => AnalysisKind::Modules,
                    "stability" => AnalysisKind::Stability,
                    "dot" | "graphviz" => AnalysisKind::Dot,
                    "ascii" | "text" => AnalysisKind::Ascii,
                    other => return Err(CliError::Usage(format!("unknown analysis {other:?}"))),
                }
            }
            "--top-k" => {
                top_k = Some(value("--top-k")?.parse().map_err(|_| {
                    CliError::Usage("--top-k expects a positive integer".to_string())
                })?)
            }
            "--all" => all = true,
            "--output" => output = Some(PathBuf::from(value("--output")?)),
            "--quiet" => quiet = true,
            "--example" => input = Some(InputSource::Example(value("--example")?)),
            "--generate" => {
                generate =
                    Some(value("--generate")?.parse().map_err(|_| {
                        CliError::Usage("--generate expects a node count".to_string())
                    })?)
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError::Usage("--seed expects an integer".to_string()))?
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!("unknown option {other:?}")))
            }
            path => {
                if input.is_some() {
                    return Err(usage("multiple inputs given"));
                }
                input = Some(InputSource::File {
                    path: PathBuf::from(path),
                    format: None,
                });
            }
        }
        i += 1;
    }
    if let Some(nodes) = generate {
        input = Some(InputSource::Generated { nodes, seed });
    }
    let mut input = input.ok_or_else(|| usage("no input given"))?;
    if let (InputSource::File { format: slot, .. }, Some(forced)) = (&mut input, format) {
        *slot = Some(forced);
    }
    if top_k == Some(0) {
        return Err(usage("--top-k must be at least 1"));
    }
    Ok(CliOptions {
        input,
        analysis,
        algorithm,
        top_k,
        all,
        output,
        quiet,
    })
}

/// Loads the fault tree described by the options.
///
/// # Errors
///
/// I/O and parse errors are reported as [`CliError`].
pub fn load_tree(options: &CliOptions) -> Result<FaultTree, CliError> {
    match &options.input {
        InputSource::Example(name) => match name.as_str() {
            "fps" | "fire" => Ok(examples::fire_protection_system()),
            "tank" | "pressure" => Ok(examples::pressure_tank_system()),
            "sensors" | "voting" => Ok(examples::redundant_sensor_network()),
            "scada" | "water" => Ok(examples::water_treatment_scada()),
            "crossing" | "railway" => Ok(examples::railway_level_crossing()),
            "hydraulics" | "aircraft" => Ok(examples::aircraft_hydraulic_system()),
            other => Err(CliError::Usage(format!(
                "unknown example {other:?}; available: fps, tank, sensors, scada, crossing, hydraulics"
            ))),
        },
        InputSource::Generated { nodes, seed } => Ok(random_tree(
            &RandomTreeConfig::with_total_nodes(*nodes),
            *seed,
        )),
        InputSource::File { path, format } => {
            let text = fs::read_to_string(path)?;
            let format = format.unwrap_or_else(|| {
                if path.extension().and_then(|e| e.to_str()) == Some("json") {
                    InputFormat::Json
                } else {
                    InputFormat::Galileo
                }
            });
            let tree = match format {
                InputFormat::Json => json::from_json_str(&text)?,
                InputFormat::Galileo => galileo::parse_galileo(&text)?,
            };
            Ok(tree)
        }
    }
}

/// Runs the selected analysis and returns the machine-readable output (JSON,
/// or DOT/ASCII text for the rendering analyses) plus a human-readable
/// summary.
///
/// # Errors
///
/// Solver failures are reported as [`CliError::Solve`]; budget overruns of
/// the classical analyses as [`CliError::Analysis`].
pub fn run(options: &CliOptions) -> Result<(String, String), CliError> {
    let tree = load_tree(options)?;
    match options.analysis {
        AnalysisKind::Mpmcs => run_mpmcs(options, &tree),
        AnalysisKind::PathSet => run_path_set(options, &tree),
        AnalysisKind::Importance => run_importance(&tree),
        AnalysisKind::Modules => run_modules(&tree),
        AnalysisKind::Stability => run_stability(&tree),
        AnalysisKind::Dot => run_dot(options, &tree),
        AnalysisKind::Ascii => Ok((
            fault_tree::export::to_ascii(&tree),
            format!("tree: {} rendered as text\n", tree.name()),
        )),
    }
}

/// The number of minimal cut sets the classical analyses are allowed to
/// enumerate before giving up with [`CliError::Analysis`].
const MOCUS_BUDGET: usize = 50_000;

fn cut_sets_for_analysis(tree: &FaultTree) -> Result<Vec<fault_tree::CutSet>, CliError> {
    ft_analysis::mocus::Mocus::with_budget(tree, MOCUS_BUDGET)
        .minimal_cut_sets()
        .map_err(|e| CliError::Analysis(e.to_string()))
}

fn exact_top_probability(tree: &FaultTree) -> f64 {
    bdd_engine::compile_fault_tree(tree, bdd_engine::VariableOrdering::DepthFirst)
        .top_event_probability(tree)
}

fn run_mpmcs(options: &CliOptions, tree: &FaultTree) -> Result<(String, String), CliError> {
    let solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: options.algorithm,
        ..MpmcsOptions::new()
    });
    let solutions = if options.all {
        solver.enumerate(tree, EnumerationLimit::All)?
    } else if let Some(k) = options.top_k {
        solver.solve_top_k(tree, k)?
    } else {
        vec![solver.solve(tree)?]
    };
    let reports: Vec<MpmcsReport> = solutions
        .iter()
        .map(|solution| MpmcsReport::new(tree, solution))
        .collect();
    let json = if reports.len() == 1 {
        reports[0].to_json()
    } else {
        serde_json::to_string_pretty(&reports).expect("reports always serialise")
    };
    let mut summary = String::new();
    summary.push_str(&format!(
        "tree: {} ({} events, {} gates)\n",
        tree.name(),
        tree.num_events(),
        tree.num_gates()
    ));
    for (rank, solution) in solutions.iter().enumerate() {
        summary.push_str(&format!(
            "#{}: {} p={:.6e} ({} events, {}, {:.2} ms)\n",
            rank + 1,
            solution.cut_set.display_names(tree),
            solution.probability,
            solution.cut_set.len(),
            solution.algorithm,
            solution.duration.as_secs_f64() * 1e3
        ));
    }
    Ok((json, summary))
}

fn run_path_set(options: &CliOptions, tree: &FaultTree) -> Result<(String, String), CliError> {
    let solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: options.algorithm,
        ..MpmcsOptions::new()
    });
    let solutions = if options.all {
        solver.enumerate_path_sets(tree, EnumerationLimit::All)?
    } else if let Some(k) = options.top_k {
        solver.enumerate_path_sets(tree, EnumerationLimit::AtMost(k))?
    } else {
        vec![solver.solve_max_reliability_path_set(tree)?]
    };
    let json = serde_json::to_string_pretty(
        &solutions
            .iter()
            .map(|solution| {
                serde_json::json!({
                    "events": solution.event_names(tree),
                    "reliability": solution.reliability,
                    "log_weight": solution.log_weight,
                    "algorithm": solution.algorithm,
                })
            })
            .collect::<Vec<_>>(),
    )
    .expect("path-set reports always serialise");
    let mut summary = format!("maximum-reliability minimal path sets of {}\n", tree.name());
    for (rank, solution) in solutions.iter().enumerate() {
        summary.push_str(&format!(
            "#{}: {} reliability={:.6}\n",
            rank + 1,
            solution.path_set.display_names(tree),
            solution.reliability
        ));
    }
    Ok((json, summary))
}

fn run_importance(tree: &FaultTree) -> Result<(String, String), CliError> {
    let cut_sets = cut_sets_for_analysis(tree)?;
    let table =
        ft_analysis::importance::ImportanceTable::compute(tree, &cut_sets, exact_top_probability);
    let json = serde_json::to_string_pretty(
        &tree
            .event_ids()
            .map(|event| {
                let i = event.index();
                serde_json::json!({
                    "event": tree.event(event).name(),
                    "birnbaum": table.birnbaum[i],
                    "fussell_vesely": table.fussell_vesely[i],
                    "raw": table.raw[i],
                    "rrw": if table.rrw[i].is_finite() { Some(table.rrw[i]) } else { None },
                    "criticality": table.criticality[i],
                    "structural": table.structural[i],
                })
            })
            .collect::<Vec<_>>(),
    )
    .expect("importance tables always serialise");
    Ok((json, table.render(tree)))
}

fn run_modules(tree: &FaultTree) -> Result<(String, String), CliError> {
    let report = ft_analysis::modules::ModularReport::of(tree);
    let json = serde_json::to_string_pretty(&serde_json::json!({
        "modules": report
            .modules
            .iter()
            .map(|&g| tree.gate(g).name())
            .collect::<Vec<_>>(),
        "repeated_events": report.repeated_events,
        "independent_probability": report.independent_probability,
    }))
    .expect("module reports always serialise");
    Ok((json, report.render(tree)))
}

fn run_stability(tree: &FaultTree) -> Result<(String, String), CliError> {
    let cut_sets = cut_sets_for_analysis(tree)?;
    let stability = ft_analysis::sensitivity::MpmcsStability::of(tree, &cut_sets)
        .ok_or_else(|| CliError::Analysis("the tree has no minimal cut set".to_string()))?;
    let json = serde_json::to_string_pretty(&serde_json::json!({
        "mpmcs": stability.mpmcs.display_names(tree),
        "probability": stability.probability,
        "margins": stability
            .margins
            .iter()
            .map(|(event, threshold, margin)| {
                serde_json::json!({
                    "event": tree.event(*event).name(),
                    "switch_threshold": threshold,
                    "relative_margin": margin,
                })
            })
            .collect::<Vec<_>>(),
    }))
    .expect("stability reports always serialise");
    Ok((json, stability.render(tree)))
}

fn run_dot(options: &CliOptions, tree: &FaultTree) -> Result<(String, String), CliError> {
    let solver = MpmcsSolver::with_options(MpmcsOptions {
        algorithm: options.algorithm,
        ..MpmcsOptions::new()
    });
    let solution = solver.solve(tree)?;
    let dot = fault_tree::export::to_dot_with_highlight(tree, Some(&solution.cut_set));
    let summary = format!(
        "DOT rendering of {} with MPMCS {} (p={:.6e}) highlighted\n",
        tree.name(),
        solution.cut_set.display_names(tree),
        solution.probability
    );
    Ok((dot, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_typical_invocation() {
        let options = parse_args(["--algorithm", "oll", "--top-k", "3", "tree.json"]).unwrap();
        assert_eq!(options.algorithm, AlgorithmChoice::Oll);
        assert_eq!(options.top_k, Some(3));
        assert!(matches!(options.input, InputSource::File { .. }));
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(matches!(parse_args(["--help"]), Err(CliError::Usage(_))));
        assert!(matches!(parse_args(["--top-k"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse_args(["--top-k", "0", "x.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--algorithm", "magic", "x.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(Vec::<String>::new()),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["a.json", "b.json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_args(["--unknown", "x.json"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn runs_the_builtin_example_end_to_end() {
        let options =
            parse_args(["--example", "fps", "--algorithm", "sequential", "--quiet"]).unwrap();
        let (json, summary) = run(&options).unwrap();
        assert!(json.contains("\"x1\""));
        assert!(json.contains("\"x2\""));
        assert!(summary.contains("{x1, x2}"));
        assert!(summary.contains("7 events"));
    }

    #[test]
    fn runs_top_k_and_all_modes() {
        let options =
            parse_args(["--example", "fps", "--top-k", "2", "--algorithm", "oll"]).unwrap();
        let (json, summary) = run(&options).unwrap();
        assert!(summary.lines().count() >= 3);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(2));

        let options = parse_args(["--example", "fps", "--all", "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(5));
    }

    #[test]
    fn runs_on_generated_trees() {
        let options =
            parse_args(["--generate", "150", "--seed", "3", "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(parsed["probability"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn loads_files_in_both_formats() {
        use std::io::Write;
        let dir = std::env::temp_dir();
        let galileo_path = dir.join("mpmcs4fta_cli_test.dft");
        let mut file = fs::File::create(&galileo_path).unwrap();
        write!(
            file,
            "toplevel top;\ntop and a b;\na prob=0.5;\nb prob=0.25;\n"
        )
        .unwrap();
        let options = parse_args([galileo_path.to_str().unwrap(), "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!((parsed["probability"].as_f64().unwrap() - 0.125).abs() < 1e-9);

        let json_path = dir.join("mpmcs4fta_cli_test.json");
        let tree = examples::fire_protection_system();
        fs::write(&json_path, fault_tree::parser::json::to_json_string(&tree)).unwrap();
        let options = parse_args([json_path.to_str().unwrap(), "--algorithm", "oll"]).unwrap();
        let (json, _) = run(&options).unwrap();
        assert!(json.contains("\"x1\""));
        let _ = fs::remove_file(galileo_path);
        let _ = fs::remove_file(json_path);
    }

    #[test]
    fn unknown_examples_are_rejected() {
        let options = parse_args(["--example", "nope"]).unwrap();
        assert!(matches!(run(&options), Err(CliError::Usage(_))));
    }

    #[test]
    fn path_set_analysis_reports_the_dual_optimum() {
        let options = parse_args([
            "--example",
            "fps",
            "--analysis",
            "path-set",
            "--algorithm",
            "oll",
        ])
        .unwrap();
        let (json, summary) = run(&options).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(1));
        assert!(summary.contains("reliability"));
        let all = parse_args([
            "--example",
            "fps",
            "--analysis",
            "path-set",
            "--all",
            "--algorithm",
            "oll",
        ])
        .unwrap();
        let (json, _) = run(&all).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(4));
    }

    #[test]
    fn importance_modules_and_stability_analyses_render_tables() {
        let importance = parse_args(["--example", "fps", "--analysis", "importance"]).unwrap();
        let (json, summary) = run(&importance).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.as_array().map(|a| a.len()), Some(7));
        assert!(summary.contains("birnbaum"));

        let modules = parse_args(["--example", "fps", "--analysis", "modules"]).unwrap();
        let (json, summary) = run(&modules).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["repeated_events"].as_u64(), Some(0));
        assert!(summary.contains("modules"));

        let stability = parse_args(["--example", "fps", "--analysis", "stability"]).unwrap();
        let (json, summary) = run(&stability).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["mpmcs"].as_str(), Some("{x1, x2}"));
        assert!(summary.contains("margin"));
    }

    #[test]
    fn dot_and_ascii_analyses_render_the_tree() {
        let dot = parse_args([
            "--example",
            "scada",
            "--analysis",
            "dot",
            "--algorithm",
            "oll",
        ])
        .unwrap();
        let (output, summary) = run(&dot).unwrap();
        assert!(output.starts_with("digraph"));
        assert!(summary.contains("highlighted"));

        let ascii = parse_args(["--example", "hydraulics", "--analysis", "ascii"]).unwrap();
        let (output, _) = run(&ascii).unwrap();
        assert!(output.contains("2/3 VOTE"));
    }

    #[test]
    fn unknown_analyses_are_rejected() {
        assert!(matches!(
            parse_args(["--example", "fps", "--analysis", "magic"]),
            Err(CliError::Usage(_))
        ));
    }
}
