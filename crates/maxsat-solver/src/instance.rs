//! Weighted Partial MaxSAT instances.

use sat_solver::{CnfFormula, Lit, Var};

/// A soft clause: a disjunction of literals with a positive weight, paid when
/// the clause is falsified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoftClause {
    /// The literals of the clause.
    pub lits: Vec<Lit>,
    /// The penalty incurred when the clause is falsified.
    pub weight: u64,
}

/// A Weighted Partial MaxSAT instance: hard clauses plus weighted soft clauses.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WcnfInstance {
    num_vars: usize,
    hard: Vec<Vec<Lit>>,
    soft: Vec<SoftClause>,
}

impl WcnfInstance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        WcnfInstance::default()
    }

    /// Creates an empty instance that declares `num_vars` variables.
    pub fn with_vars(num_vars: usize) -> Self {
        WcnfInstance {
            num_vars,
            hard: Vec::new(),
            soft: Vec::new(),
        }
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of hard clauses.
    pub fn num_hard(&self) -> usize {
        self.hard.len()
    }

    /// Number of soft clauses.
    pub fn num_soft(&self) -> usize {
        self.soft.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Declares that variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        if n > self.num_vars {
            self.num_vars = n;
        }
    }

    /// Adds a hard clause.
    pub fn add_hard<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            self.ensure_vars(lit.var().index() + 1);
        }
        self.hard.push(clause);
    }

    /// Adds all clauses of a CNF formula as hard clauses.
    pub fn add_hard_cnf(&mut self, cnf: &CnfFormula) {
        self.ensure_vars(cnf.num_vars());
        for clause in cnf.clauses() {
            self.hard.push(clause.to_vec());
        }
    }

    /// Adds a soft clause with the given weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight == 0`; zero-weight clauses carry no information.
    pub fn add_soft<I>(&mut self, lits: I, weight: u64)
    where
        I: IntoIterator<Item = Lit>,
    {
        assert!(weight > 0, "soft clauses must have a positive weight");
        let clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            self.ensure_vars(lit.var().index() + 1);
        }
        self.soft.push(SoftClause {
            lits: clause,
            weight,
        });
    }

    /// The hard clauses.
    pub fn hard_clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.hard.iter().map(|c| c.as_slice())
    }

    /// The soft clauses.
    pub fn soft_clauses(&self) -> &[SoftClause] {
        &self.soft
    }

    /// The sum of all soft weights (an upper bound on any optimum, and the
    /// conventional `top` weight used by the WCNF format).
    pub fn total_soft_weight(&self) -> u64 {
        self.soft.iter().map(|s| s.weight).sum()
    }

    /// Evaluates a model: returns `(hard_ok, cost)` where `hard_ok` tells
    /// whether all hard clauses are satisfied and `cost` is the total weight
    /// of falsified soft clauses. Returns `None` if the model does not cover
    /// every declared variable.
    pub fn evaluate(&self, model: &[bool]) -> Option<(bool, u64)> {
        if model.len() < self.num_vars {
            return None;
        }
        let lit_true = |lit: &Lit| model[lit.var().index()] ^ lit.is_negative();
        let hard_ok = self.hard.iter().all(|c| c.iter().any(lit_true));
        let cost = self
            .soft
            .iter()
            .filter(|s| !s.lits.iter().any(lit_true))
            .map(|s| s.weight)
            .sum();
        Some((hard_ok, cost))
    }

    /// Returns the cost of a model, assuming it satisfies the hard clauses.
    ///
    /// # Panics
    ///
    /// Panics if the model does not cover every declared variable.
    pub fn cost_of(&self, model: &[bool]) -> u64 {
        self.evaluate(model)
            .expect("model must cover all instance variables")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }
    fn neg(i: usize) -> Lit {
        Lit::negative(Var::from_index(i))
    }

    #[test]
    fn building_an_instance_tracks_counts_and_weights() {
        let mut inst = WcnfInstance::new();
        inst.add_hard([pos(0), pos(1)]);
        inst.add_soft([neg(0)], 4);
        inst.add_soft([neg(1)], 6);
        assert_eq!(inst.num_vars(), 2);
        assert_eq!(inst.num_hard(), 1);
        assert_eq!(inst.num_soft(), 2);
        assert_eq!(inst.total_soft_weight(), 10);
    }

    #[test]
    #[should_panic]
    fn zero_weight_soft_clause_is_rejected() {
        let mut inst = WcnfInstance::new();
        inst.add_soft([pos(0)], 0);
    }

    #[test]
    fn evaluate_reports_hard_violations_and_cost() {
        let mut inst = WcnfInstance::new();
        inst.add_hard([pos(0), pos(1)]);
        inst.add_soft([neg(0)], 4);
        inst.add_soft([neg(1)], 6);
        assert_eq!(inst.evaluate(&[true, false]), Some((true, 4)));
        assert_eq!(inst.evaluate(&[false, true]), Some((true, 6)));
        assert_eq!(inst.evaluate(&[true, true]), Some((true, 10)));
        assert_eq!(inst.evaluate(&[false, false]), Some((false, 0)));
        assert_eq!(inst.evaluate(&[true]), None);
    }

    #[test]
    fn add_hard_cnf_imports_all_clauses() {
        let mut cnf = CnfFormula::new();
        cnf.add_clause([pos(2), neg(0)]);
        cnf.add_clause([pos(1)]);
        let mut inst = WcnfInstance::new();
        inst.add_hard_cnf(&cnf);
        assert_eq!(inst.num_hard(), 2);
        assert_eq!(inst.num_vars(), 3);
    }

    #[test]
    fn new_var_allocates_above_existing_vars() {
        let mut inst = WcnfInstance::with_vars(3);
        assert_eq!(inst.new_var().index(), 3);
        assert_eq!(inst.num_vars(), 4);
    }
}
