//! In-tree, dependency-free substitute for the `rand` crate.
//!
//! The build environment of this repository has no reachable crates.io
//! registry, so the workspace must compile fully offline. This crate mirrors
//! the subset of the `rand` 0.8 API that the workspace uses — seeded
//! [`rngs::StdRng`], [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`] — on top of a splitmix64-seeded
//! xoshiro256++ generator. All output is deterministic per seed, which is
//! exactly what the reproduction needs (every call site seeds explicitly via
//! [`SeedableRng::seed_from_u64`]).
//!
//! The streams differ from the real `rand`/`StdRng` (ChaCha12), so seeds
//! produce different — but still reproducible — sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution in `rand` terms: `[0, 1)` for floats, uniform for integers
/// and booleans).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64 + 1;
                // span == 0 means the full integer range; the workspace never
                // samples that, but keep it correct anyway.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng); // [0, 1)
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        // 53 bits over [0, 1].
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        start + u * (end - start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ seeded
    /// through splitmix64 (same construction the xoshiro authors recommend).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random operations on slices, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            min = min.min(x);
            max = max.max(x);
        }
        assert!(min < 0.01 && max > 0.99, "poor coverage: [{min}, {max}]");
    }

    #[test]
    fn ranges_respect_their_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let a = rng.gen_range(3..10usize);
            assert!((3..10).contains(&a));
            let b = rng.gen_range(2..=5u64);
            assert!((2..=5).contains(&b));
            let c = rng.gen_range(0.25..=0.75f64);
            assert!((0.25..=0.75).contains(&c));
            let d = rng.gen_range(-4..4i64);
            assert!((-4..4).contains(&d));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..50).collect();
        let original = xs.clone();
        xs.shuffle(&mut rng);
        assert_ne!(xs, original, "49!/50! chance of a fixed point-free fail");
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        let picked = *xs.choose(&mut rng).unwrap();
        assert!(original.contains(&picked));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
