//! Cut sets: sets of basic events that jointly trigger the top event.

use std::collections::BTreeSet;
use std::fmt;

use crate::event::EventId;
use crate::probability::{LogWeight, Probability};
use crate::tree::FaultTree;

/// A set of basic events.
///
/// A *cut set* is a set of events whose joint occurrence triggers the top
/// event; a *minimal cut set* (MCS) additionally has no proper subset with
/// that property. The type itself is just an ordered event set — whether it
/// actually cuts a given tree is checked by
/// [`FaultTree::is_cut_set`]/[`FaultTree::is_minimal_cut_set`].
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CutSet {
    events: BTreeSet<EventId>,
}

serde::impl_serde_struct!(CutSet { events });

impl CutSet {
    /// The empty set.
    pub fn new() -> Self {
        CutSet::default()
    }

    /// Adds an event; returns `true` if it was not already present.
    pub fn insert(&mut self, event: EventId) -> bool {
        self.events.insert(event)
    }

    /// Removes an event; returns `true` if it was present.
    pub fn remove(&mut self, event: EventId) -> bool {
        self.events.remove(&event)
    }

    /// `true` if the event belongs to the set.
    pub fn contains(&self, event: EventId) -> bool {
        self.events.contains(&event)
    }

    /// Number of events in the set.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in ascending identifier order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        self.events.iter().copied()
    }

    /// `true` if `self` is a subset of `other`.
    pub fn is_subset(&self, other: &CutSet) -> bool {
        self.events.is_subset(&other.events)
    }

    /// `true` if `self` is a proper subset of `other`.
    pub fn is_proper_subset(&self, other: &CutSet) -> bool {
        self.len() < other.len() && self.is_subset(other)
    }

    /// The joint occurrence probability of the events in the set, assuming
    /// statistical independence (the standard fault-tree assumption, and the
    /// one used by the paper): the product of the individual probabilities.
    pub fn probability(&self, tree: &FaultTree) -> f64 {
        self.events
            .iter()
            .map(|&e| tree.event(e).probability().value())
            .product()
    }

    /// The total logarithmic weight `Σ -ln(pᵢ)` of the set (paper Step 3).
    pub fn log_weight(&self, tree: &FaultTree) -> LogWeight {
        self.events
            .iter()
            .map(|&e| tree.event(e).probability().log_weight())
            .sum()
    }

    /// The joint probability recovered from the logarithmic weight via the
    /// reverse transformation `exp(-Σ wᵢ)` (paper Step 6).
    pub fn probability_from_log(&self, tree: &FaultTree) -> Probability {
        self.log_weight(tree).to_probability()
    }

    /// Renders the set with event names from the tree.
    pub fn display_names(&self, tree: &FaultTree) -> String {
        let names: Vec<&str> = self.events.iter().map(|&e| tree.event(e).name()).collect();
        format!("{{{}}}", names.join(", "))
    }
}

impl FromIterator<EventId> for CutSet {
    fn from_iter<T: IntoIterator<Item = EventId>>(iter: T) -> Self {
        CutSet {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<EventId> for CutSet {
    fn extend<T: IntoIterator<Item = EventId>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl fmt::Display for CutSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.events.iter().map(|e| e.to_string()).collect();
        write!(f, "{{{}}}", ids.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fire_protection_system;

    fn e(i: usize) -> EventId {
        EventId::from_index(i)
    }

    #[test]
    fn set_operations_behave_like_a_set() {
        let mut cut = CutSet::new();
        assert!(cut.is_empty());
        assert!(cut.insert(e(3)));
        assert!(!cut.insert(e(3)));
        assert!(cut.insert(e(1)));
        assert_eq!(cut.len(), 2);
        assert!(cut.contains(e(1)));
        assert!(!cut.contains(e(0)));
        assert!(cut.remove(e(1)));
        assert!(!cut.remove(e(1)));
        assert_eq!(cut.len(), 1);
    }

    #[test]
    fn iteration_is_sorted_and_deterministic() {
        let cut = CutSet::from_iter([e(5), e(1), e(3)]);
        let order: Vec<usize> = cut.iter().map(|id| id.index()).collect();
        assert_eq!(order, vec![1, 3, 5]);
        assert_eq!(cut.to_string(), "{e1, e3, e5}");
    }

    #[test]
    fn subset_relations() {
        let small = CutSet::from_iter([e(1), e(2)]);
        let large = CutSet::from_iter([e(1), e(2), e(3)]);
        assert!(small.is_subset(&large));
        assert!(small.is_proper_subset(&large));
        assert!(!large.is_subset(&small));
        assert!(small.is_subset(&small));
        assert!(!small.is_proper_subset(&small));
    }

    #[test]
    fn probability_is_the_product_of_member_probabilities() {
        let tree = fire_protection_system();
        let x1 = tree.event_by_name("x1").unwrap();
        let x2 = tree.event_by_name("x2").unwrap();
        let cut = CutSet::from_iter([x1, x2]);
        // The paper: MPMCS {x1, x2} has joint probability 0.2 * 0.1 = 0.02.
        assert!((cut.probability(&tree) - 0.02).abs() < 1e-12);
        // Reverse log-space transformation agrees (paper Step 6).
        assert!((cut.probability_from_log(&tree).value() - 0.02).abs() < 1e-9);
        assert_eq!(cut.display_names(&tree), "{x1, x2}");
    }

    #[test]
    fn empty_cut_set_has_probability_one() {
        let tree = fire_protection_system();
        let cut = CutSet::new();
        assert_eq!(cut.probability(&tree), 1.0);
        assert_eq!(cut.log_weight(&tree).value(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let cut = CutSet::from_iter([e(0), e(4)]);
        let json = serde_json::to_string(&cut).unwrap();
        let back: CutSet = serde_json::from_str(&json).unwrap();
        assert_eq!(cut, back);
    }
}
