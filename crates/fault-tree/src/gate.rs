//! Gates: the internal nodes of a fault tree.

use std::fmt;

use crate::tree::NodeId;

/// Identifier of a gate (dense index within its [`FaultTree`](crate::FaultTree)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GateId(pub(crate) u32);

serde::impl_serde_newtype!(GateId);

impl GateId {
    /// Creates an identifier from a dense index.
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }

    /// The dense index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The logical function computed by a gate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// The gate fires when **all** inputs fire.
    And,
    /// The gate fires when **any** input fires.
    Or,
    /// The gate fires when at least `k` inputs fire (a voting / k-out-of-n
    /// gate — the extension the paper lists as future work).
    Vot {
        /// The threshold `k`.
        k: usize,
    },
}

// Externally tagged with lowercase names, matching serde's derive under
// `#[serde(rename_all = "lowercase")]`: `"and"`, `"or"`, `{"vot":{"k":2}}`.
impl serde::Serialize for GateKind {
    fn to_value(&self) -> serde::Value {
        match self {
            GateKind::And => serde::Value::String("and".to_string()),
            GateKind::Or => serde::Value::String("or".to_string()),
            GateKind::Vot { k } => {
                let mut fields = serde::Map::new();
                fields.insert("k".to_string(), serde::Serialize::to_value(k));
                let mut tagged = serde::Map::new();
                tagged.insert("vot".to_string(), serde::Value::Object(fields));
                serde::Value::Object(tagged)
            }
        }
    }
}

impl serde::Deserialize for GateKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        match value {
            serde::Value::String(tag) => match tag.as_str() {
                "and" => Ok(GateKind::And),
                "or" => Ok(GateKind::Or),
                other => Err(serde::Error::custom(format!(
                    "unknown gate kind {other:?}, expected \"and\", \"or\" or \"vot\""
                ))),
            },
            serde::Value::Object(_) => Ok(GateKind::Vot {
                k: serde::de::field(
                    value.get("vot").ok_or_else(|| {
                        serde::Error::custom("unknown gate kind variant, expected \"vot\"")
                    })?,
                    "k",
                )?,
            }),
            other => Err(serde::Error::custom(format!(
                "invalid gate kind: expected string or object, found {}",
                other.kind()
            ))),
        }
    }
}

impl GateKind {
    /// Short lowercase name of the gate kind (`and`, `or`, `vot`).
    pub fn name(&self) -> &'static str {
        match self {
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Vot { .. } => "vot",
        }
    }

    /// Evaluates the gate over the boolean values of its inputs.
    pub fn evaluate(&self, inputs: impl IntoIterator<Item = bool>) -> bool {
        match self {
            GateKind::And => inputs.into_iter().all(|b| b),
            GateKind::Or => inputs.into_iter().any(|b| b),
            GateKind::Vot { k } => inputs.into_iter().filter(|&b| b).count() >= *k,
        }
    }

    /// The *dual* gate kind used when complementing a fault tree into a
    /// success tree (paper Step 1): AND ↔ OR, and a `k/n` voting gate becomes
    /// an `(n−k+1)/n` voting gate.
    pub fn dual(&self, num_inputs: usize) -> GateKind {
        match self {
            GateKind::And => GateKind::Or,
            GateKind::Or => GateKind::And,
            GateKind::Vot { k } => GateKind::Vot {
                k: num_inputs - k + 1,
            },
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Vot { k } => write!(f, "vot({k})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

/// A gate: a named logical combination of other nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    name: String,
    kind: GateKind,
    inputs: Vec<NodeId>,
}

serde::impl_serde_struct!(Gate { name, kind, inputs });

impl Gate {
    /// Creates a gate without validation.
    ///
    /// Prefer [`FaultTreeBuilder::gate`](crate::FaultTreeBuilder::gate) when
    /// building a tree incrementally; this constructor exists for
    /// tree-rewriting code that assembles a full gate list and then validates
    /// it in one go through [`FaultTree::from_parts`](crate::FaultTree::from_parts).
    pub fn new(name: impl Into<String>, kind: GateKind, inputs: Vec<NodeId>) -> Self {
        Gate {
            name: name.into(),
            kind,
            inputs,
        }
    }

    /// The gate name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The logical function of the gate.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] ({} inputs)",
            self.name,
            self.kind,
            self.inputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    #[test]
    fn gate_kind_evaluation() {
        assert!(GateKind::And.evaluate([true, true, true]));
        assert!(!GateKind::And.evaluate([true, false]));
        assert!(GateKind::Or.evaluate([false, true]));
        assert!(!GateKind::Or.evaluate([false, false]));
        assert!(GateKind::Vot { k: 2 }.evaluate([true, false, true]));
        assert!(!GateKind::Vot { k: 2 }.evaluate([true, false, false]));
    }

    #[test]
    fn duals_swap_and_and_or() {
        assert_eq!(GateKind::And.dual(3), GateKind::Or);
        assert_eq!(GateKind::Or.dual(3), GateKind::And);
        // NOT(at least 2 of 3) == at least 2 of 3 complemented inputs.
        assert_eq!(GateKind::Vot { k: 2 }.dual(3), GateKind::Vot { k: 2 });
        assert_eq!(GateKind::Vot { k: 1 }.dual(4), GateKind::Vot { k: 4 });
    }

    #[test]
    fn voting_dual_is_an_involution_and_matches_de_morgan() {
        // For every n, k: NOT vot(k, xs) == vot(n-k+1, n) over negated inputs.
        for n in 1..=5usize {
            for k in 1..=n {
                let kind = GateKind::Vot { k };
                let dual = kind.dual(n);
                for mask in 0..(1u32 << n) {
                    let values: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                    let negated: Vec<bool> = values.iter().map(|b| !b).collect();
                    assert_eq!(
                        !kind.evaluate(values.clone()),
                        dual.evaluate(negated),
                        "n={n} k={k} mask={mask:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn gate_accessors_and_display() {
        let gate = Gate::new(
            "G1",
            GateKind::Vot { k: 2 },
            vec![
                NodeId::Event(EventId::from_index(0)),
                NodeId::Event(EventId::from_index(1)),
            ],
        );
        assert_eq!(gate.name(), "G1");
        assert_eq!(gate.kind(), GateKind::Vot { k: 2 });
        assert_eq!(gate.inputs().len(), 2);
        assert!(gate.to_string().contains("vot(2)"));
        assert_eq!(GateKind::And.to_string(), "and");
    }

    #[test]
    fn gate_id_round_trips_its_index() {
        let id = GateId::from_index(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "g3");
    }
}
