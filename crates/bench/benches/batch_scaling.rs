//! E10 — worker scaling of the parallel batch engine (`ft-batch`): the same
//! generated 16-tree batch analysed end to end at 1, 2, 4 and 8 workers.
//! Speedup above 1× at 4 workers requires real hardware parallelism; the
//! per-tree algorithm is the deterministic sequential portfolio, so the
//! worker pool is the only variable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ft_batch::{run_batch, BatchConfig, BatchManifest};
use ft_generators::Family;

fn bench_batch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let manifest = BatchManifest::generated(Family::RandomMixed, 250, 16, 2020);
    for jobs in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("16trees-{jobs}jobs")),
            &jobs,
            |b, &jobs| {
                let config = BatchConfig {
                    jobs,
                    ..BatchConfig::default()
                };
                b.iter(|| black_box(run_batch(black_box(&manifest), &config)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_scaling);
criterion_main!(benches);
