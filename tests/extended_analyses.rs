//! Cross-crate integration tests for the extended analyses: the ZBDD cut-set
//! engine, minimal path sets, modular quantification, importance measures and
//! common-cause modelling, all cross-checked against the MaxSAT pipeline and
//! against each other on both the worked examples and generated trees.

use bdd_engine::{compile_fault_tree, VariableOrdering, ZbddAnalysis};
use fault_tree::examples::{
    aircraft_hydraulic_system, all_examples, fire_protection_system, water_treatment_scada,
};
use fault_tree::FaultTree;
use ft_analysis::ccf::{apply_beta_factor, CcfGroup};
use ft_analysis::importance::ImportanceTable;
use ft_analysis::mocus::Mocus;
use ft_analysis::modules::{independent_top_probability, ModularReport};
use ft_analysis::pathset::{is_minimal_path_set, maximum_reliability_path_set, minimal_path_sets};
use ft_generators::{modular_tree, replicated_fps, Family};
use mpmcs::{EnumerationLimit, MpmcsSolver};

fn exact_probability(tree: &FaultTree) -> f64 {
    compile_fault_tree(tree, VariableOrdering::DepthFirst).top_event_probability(tree)
}

#[test]
fn zbdd_and_maxsat_agree_on_the_mpmcs_probability_for_generated_trees() {
    let solver = MpmcsSolver::sequential();
    for family in [Family::RandomMixed, Family::AndHeavy, Family::VotingHeavy] {
        for seed in [1, 2, 3] {
            let tree = family.generate(120, seed);
            let maxsat = solver.solve(&tree).expect("generated trees have cut sets");
            let zbdd = ZbddAnalysis::new(&tree);
            let (_, p_zbdd) = zbdd
                .maximum_probability_mcs(&tree)
                .expect("generated trees have cut sets");
            assert!(
                (maxsat.probability - p_zbdd).abs() <= 1e-9 * maxsat.probability.max(1e-300),
                "{} seed {seed}: maxsat {} vs zbdd {}",
                family.name(),
                maxsat.probability,
                p_zbdd
            );
        }
    }
}

#[test]
fn zbdd_counts_match_full_maxsat_enumeration_on_the_examples() {
    let solver = MpmcsSolver::sequential();
    for (name, tree) in all_examples() {
        let enumerated = solver
            .enumerate(&tree, EnumerationLimit::All)
            .expect("examples have cut sets");
        let zbdd = ZbddAnalysis::new(&tree);
        assert_eq!(zbdd.count() as usize, enumerated.len(), "{name}");
    }
}

#[test]
fn maxsat_path_sets_agree_with_the_mocus_dual_on_the_examples() {
    let solver = MpmcsSolver::sequential();
    for (name, tree) in all_examples() {
        let via_maxsat = solver
            .solve_max_reliability_path_set(&tree)
            .expect("examples have path sets");
        let (_, best_reliability) = maximum_reliability_path_set(&tree)
            .expect("within budget")
            .expect("examples have path sets");
        assert!(
            (via_maxsat.reliability - best_reliability).abs() < 1e-9,
            "{name}: {} vs {}",
            via_maxsat.reliability,
            best_reliability
        );
        assert!(is_minimal_path_set(&tree, &via_maxsat.path_set), "{name}");
    }
}

#[test]
fn every_cut_set_intersects_every_path_set_on_generated_trees() {
    let solver = MpmcsSolver::sequential();
    for seed in [7, 8] {
        let tree = Family::RandomMixed.generate(80, seed);
        let cuts = solver
            .enumerate(&tree, EnumerationLimit::AtMost(20))
            .expect("solvable");
        let paths = minimal_path_sets(&tree).expect("within budget");
        for cut in &cuts {
            for path in &paths {
                assert!(
                    cut.cut_set.iter().any(|e| path.contains(e)),
                    "seed {seed}: disjoint cut and path set"
                );
            }
        }
    }
}

#[test]
fn modular_quantification_matches_the_bdd_on_modular_trees() {
    for seed in [1, 5] {
        let tree = modular_tree(8, 6, seed);
        let report = ModularReport::of(&tree);
        assert_eq!(report.repeated_events, 0);
        let propagated = independent_top_probability(&tree).expect("modular trees share no events");
        let exact = exact_probability(&tree);
        assert!(
            (propagated - exact).abs() < 1e-9,
            "seed {seed}: {propagated} vs {exact}"
        );
    }
    // Shared events (the hydraulic reservoir) defeat bottom-up propagation.
    assert!(independent_top_probability(&aircraft_hydraulic_system()).is_none());
}

#[test]
fn replicated_fps_keeps_the_paper_answer_at_every_scale() {
    let solver = MpmcsSolver::new();
    for copies in [1, 10, 50] {
        let tree = replicated_fps(copies);
        let solution = solver.solve(&tree).expect("solvable");
        assert_eq!(solution.cut_set.len(), 2, "{copies} copies");
        assert!(
            (solution.probability - 0.02).abs() < 1e-9,
            "{copies} copies: {}",
            solution.probability
        );
    }
}

#[test]
fn importance_table_is_consistent_with_the_mpmcs_ranking() {
    let tree = water_treatment_scada();
    let cut_sets = Mocus::new(&tree).minimal_cut_sets().expect("small tree");
    let table = ImportanceTable::compute(&tree, &cut_sets, exact_probability);
    let solution = MpmcsSolver::sequential().solve(&tree).expect("solvable");
    // The single most probable cut set here is a singleton; its event must
    // carry the highest Fussell–Vesely importance.
    assert_eq!(solution.cut_set.len(), 1);
    let mpmcs_event = solution.cut_set.iter().next().unwrap();
    let max_fv = table
        .fussell_vesely
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    assert!((table.fussell_vesely[mpmcs_event.index()] - max_fv).abs() < 1e-12);
    // RAW and RRW are at least 1 everywhere on a coherent tree.
    assert!(table.raw.iter().all(|&v| v >= 1.0 - 1e-12));
    assert!(table.rrw.iter().all(|&v| v >= 1.0 - 1e-12));
}

#[test]
fn beta_factor_ccf_shifts_the_mpmcs_towards_the_common_cause() {
    let tree = fire_protection_system();
    let solver = MpmcsSolver::sequential();
    let baseline = solver.solve(&tree).expect("solvable");
    assert_eq!(baseline.event_names(&tree), vec!["x1", "x2"]);
    let group = CcfGroup {
        name: "sensor common cause".to_string(),
        members: vec![
            tree.event_by_name("x1").unwrap(),
            tree.event_by_name("x2").unwrap(),
        ],
        beta: 0.6,
    };
    let with_ccf = apply_beta_factor(&tree, &group).expect("valid group");
    let solution = solver.solve(&with_ccf).expect("solvable");
    // With beta = 0.6 the shared cause (p ≈ 0.6·√0.02 ≈ 0.085) is a
    // single-event cut set more probable than the residual pair.
    assert_eq!(solution.event_names(&with_ccf), vec!["sensor common cause"]);
    assert!(solution.probability > baseline.probability);
    // The exact top-event probability grows as well.
    assert!(exact_probability(&with_ccf) > exact_probability(&tree));
}
