//! JSON fault-tree format, mirroring the input format of the original
//! MPMCS4FTA tool.
//!
//! ```json
//! {
//!   "name": "fire protection system",
//!   "top": "top",
//!   "events": [
//!     { "name": "x1", "probability": 0.2, "description": "sensor 1 fails" }
//!   ],
//!   "gates": [
//!     { "name": "detection", "kind": "and", "inputs": ["x1", "x2"] },
//!     { "name": "quorum", "kind": "vot", "k": 2, "inputs": ["a", "b", "c"] }
//!   ]
//! }
//! ```

use std::collections::HashMap;

use crate::error::FaultTreeError;
use crate::event::FailureModel;
use crate::gate::GateKind;
use crate::tree::{FaultTree, NodeId};

use super::galileo::{build_tree, RawNode};

/// A JSON-serialisable fault-tree document.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultTreeDocument {
    /// Name of the fault tree.
    pub name: String,
    /// Name of the top node (gate or event).
    pub top: String,
    /// Basic event declarations.
    pub events: Vec<EventDocument>,
    /// Gate declarations.
    pub gates: Vec<GateDocument>,
}

serde::impl_serde_struct!(FaultTreeDocument {
    name,
    top,
    events,
    gates
});

/// A basic event declaration inside a [`FaultTreeDocument`].
///
/// An event is given either an explicit `probability`, a failure rate
/// `lambda` (exponential law, optionally with a repair rate `mu` for the
/// repairable unavailability law), or both — in which case the probability
/// is the stored base value and the rates define the mission-time law.
#[derive(Clone, Debug, PartialEq)]
pub struct EventDocument {
    /// Event name (must be unique across events and gates).
    pub name: String,
    /// Probability of occurrence in `[0, 1]`. When absent, derived from the
    /// failure law at the default mission time.
    pub probability: Option<f64>,
    /// Failure rate `λ ≥ 0` of the exponential law `p(t) = 1 − exp(−λt)`.
    pub lambda: Option<f64>,
    /// Repair rate `μ ≥ 0`; together with `lambda` selects the repairable
    /// unavailability law `λ/(λ+μ)·(1 − exp(−(λ+μ)t))`.
    pub mu: Option<f64>,
    /// Optional free-form description.
    pub description: Option<String>,
}

serde::impl_serde_struct!(EventDocument { name } optional { probability, lambda, mu, description });

/// A gate declaration inside a [`FaultTreeDocument`].
#[derive(Clone, Debug, PartialEq)]
pub struct GateDocument {
    /// Gate name (must be unique across events and gates).
    pub name: String,
    /// Gate kind: `"and"`, `"or"`, or `"vot"`.
    pub kind: String,
    /// Voting threshold, required when `kind == "vot"`.
    pub k: Option<usize>,
    /// Names of the input nodes.
    pub inputs: Vec<String>,
}

serde::impl_serde_struct!(GateDocument { name, kind, inputs } optional { k });

impl FaultTreeDocument {
    /// Converts the document into a validated [`FaultTree`].
    ///
    /// # Errors
    ///
    /// Returns structural errors (duplicate names, unknown nodes, invalid
    /// probabilities or thresholds, cycles) and [`FaultTreeError::Parse`] for
    /// unknown gate kinds.
    pub fn into_tree(self) -> Result<FaultTree, FaultTreeError> {
        let mut raw: HashMap<String, RawNode> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for event in &self.events {
            if raw.contains_key(&event.name) {
                return Err(FaultTreeError::DuplicateName {
                    name: event.name.clone(),
                });
            }
            let model = match (event.lambda, event.mu) {
                (Some(lambda), Some(mu)) => Some(FailureModel::repairable(lambda, mu)?),
                (Some(lambda), None) => Some(FailureModel::exponential(lambda)?),
                (None, Some(_)) => {
                    return Err(FaultTreeError::Parse {
                        line: 0,
                        message: format!(
                            "event {:?} declares a repair rate \"mu\" without a failure rate \"lambda\"",
                            event.name
                        ),
                    })
                }
                (None, None) => None,
            };
            if event.probability.is_none() && model.is_none() {
                return Err(FaultTreeError::Parse {
                    line: 0,
                    message: format!(
                        "event {:?} needs a \"probability\" or a failure rate \"lambda\"",
                        event.name
                    ),
                });
            }
            raw.insert(
                event.name.clone(),
                RawNode::Event {
                    probability: event.probability,
                    model,
                },
            );
            order.push(event.name.clone());
        }
        for gate in &self.gates {
            if raw.contains_key(&gate.name) {
                return Err(FaultTreeError::DuplicateName {
                    name: gate.name.clone(),
                });
            }
            let kind = match gate.kind.to_ascii_lowercase().as_str() {
                "and" => GateKind::And,
                "or" => GateKind::Or,
                "vot" | "voting" | "kofn" => GateKind::Vot {
                    k: gate.k.ok_or_else(|| FaultTreeError::Parse {
                        line: 0,
                        message: format!("voting gate {:?} needs a \"k\" field", gate.name),
                    })?,
                },
                other => {
                    return Err(FaultTreeError::Parse {
                        line: 0,
                        message: format!("unknown gate kind {other:?}"),
                    })
                }
            };
            raw.insert(
                gate.name.clone(),
                RawNode::Gate {
                    kind,
                    inputs: gate.inputs.clone(),
                },
            );
            order.push(gate.name.clone());
        }
        let tree = build_tree(&self.name, &self.top, &raw, &order)?;
        // Re-attach event descriptions (build_tree only keeps probabilities
        // and failure models).
        let mut events = tree.events().to_vec();
        for doc in &self.events {
            if let Some(id) = tree.event_by_name(&doc.name) {
                if let Some(description) = &doc.description {
                    let model = events[id.index()].model().copied();
                    let mut event = crate::BasicEvent::with_description(
                        doc.name.clone(),
                        events[id.index()].probability(),
                        description.clone(),
                    );
                    event.set_model(model);
                    events[id.index()] = event;
                }
            }
        }
        FaultTree::from_parts(tree.name(), events, tree.gates().to_vec(), tree.top())
    }

    /// Builds a document from a fault tree.
    pub fn from_tree(tree: &FaultTree) -> Self {
        FaultTreeDocument {
            name: tree.name().to_string(),
            top: tree.node_name(tree.top()).to_string(),
            events: tree
                .events()
                .iter()
                .map(|e| {
                    let (lambda, mu) = match e.model() {
                        Some(FailureModel::Exponential { lambda }) => (Some(*lambda), None),
                        Some(FailureModel::Repairable { lambda, mu }) => (Some(*lambda), Some(*mu)),
                        _ => (None, None),
                    };
                    EventDocument {
                        name: e.name().to_string(),
                        probability: Some(e.probability().value()),
                        lambda,
                        mu,
                        description: e.description().map(str::to_string),
                    }
                })
                .collect(),
            gates: tree
                .gates()
                .iter()
                .map(|g| GateDocument {
                    name: g.name().to_string(),
                    kind: g.kind().name().to_string(),
                    k: match g.kind() {
                        GateKind::Vot { k } => Some(k),
                        _ => None,
                    },
                    inputs: g
                        .inputs()
                        .iter()
                        .map(|&i: &NodeId| tree.node_name(i).to_string())
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Parses a fault tree from a JSON string.
///
/// # Errors
///
/// Returns [`FaultTreeError::Parse`] for malformed JSON and structural errors
/// for semantically invalid trees.
pub fn from_json_str(input: &str) -> Result<FaultTree, FaultTreeError> {
    let document: FaultTreeDocument =
        serde_json::from_str(input).map_err(|e| FaultTreeError::Parse {
            line: e.line(),
            message: e.to_string(),
        })?;
    document.into_tree()
}

/// Renders a fault tree as a pretty-printed JSON string.
pub fn to_json_string(tree: &FaultTree) -> String {
    serde_json::to_string_pretty(&FaultTreeDocument::from_tree(tree))
        .expect("fault tree documents always serialise")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{fire_protection_system, redundant_sensor_network};

    #[test]
    fn json_round_trip_preserves_structure_and_probabilities() {
        for tree in [fire_protection_system(), redundant_sensor_network()] {
            let json = to_json_string(&tree);
            let parsed = from_json_str(&json).expect("round trip");
            assert_eq!(parsed.num_events(), tree.num_events());
            assert_eq!(parsed.num_gates(), tree.num_gates());
            for id in tree.event_ids() {
                let name = tree.event(id).name();
                let other = parsed.event_by_name(name).expect("event preserved");
                assert_eq!(
                    parsed.event(other).probability().value(),
                    tree.event(id).probability().value()
                );
            }
            let n = tree.num_events();
            for mask in 0..(1u32 << n) {
                let occurred: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
                let mut remapped = vec![false; n];
                for id in tree.event_ids() {
                    let other = parsed.event_by_name(tree.event(id).name()).unwrap();
                    remapped[other.index()] = occurred[id.index()];
                }
                assert_eq!(parsed.evaluate(&remapped), tree.evaluate(&occurred));
            }
        }
    }

    #[test]
    fn parses_a_handwritten_document() {
        let json = r#"{
            "name": "demo",
            "top": "g",
            "events": [
                { "name": "a", "probability": 0.5 },
                { "name": "b", "probability": 0.25, "description": "backup fails" }
            ],
            "gates": [
                { "name": "g", "kind": "and", "inputs": ["a", "b"] }
            ]
        }"#;
        let tree = from_json_str(json).expect("valid document");
        assert_eq!(tree.num_events(), 2);
        assert_eq!(tree.num_gates(), 1);
        let b = tree.event_by_name("b").unwrap();
        assert_eq!(tree.event(b).description(), Some("backup fails"));
        assert!(tree.evaluate(&[true, true]));
        assert!(!tree.evaluate(&[true, false]));
    }

    #[test]
    fn parses_rate_parameterised_events() {
        let json = r#"{
            "name": "demo",
            "top": "g",
            "events": [
                { "name": "a", "lambda": 0.5 },
                { "name": "b", "lambda": 0.1, "mu": 0.9, "description": "repairable pump" }
            ],
            "gates": [
                { "name": "g", "kind": "or", "inputs": ["a", "b"] }
            ]
        }"#;
        let tree = from_json_str(json).expect("valid document");
        let a = tree.event_by_name("a").unwrap();
        let b = tree.event_by_name("b").unwrap();
        let exponential = crate::FailureModel::exponential(0.5).unwrap();
        let repairable = crate::FailureModel::repairable(0.1, 0.9).unwrap();
        assert_eq!(tree.event(a).model(), Some(&exponential));
        assert_eq!(tree.event(b).model(), Some(&repairable));
        assert_eq!(tree.event(b).description(), Some("repairable pump"));
        assert_eq!(
            tree.event(a).probability().value(),
            exponential.base_probability().value()
        );
        assert_eq!(
            tree.event(b).probability().value(),
            repairable.base_probability().value()
        );
        // The exported document carries both the base probability and the
        // rates, and re-importing reproduces the tree exactly.
        let reparsed = from_json_str(&to_json_string(&tree)).expect("round trip");
        assert_eq!(reparsed, tree);
    }

    #[test]
    fn rate_documents_are_validated() {
        let mu_without_lambda = r#"{
            "name": "demo", "top": "a",
            "events": [ { "name": "a", "mu": 0.5 } ],
            "gates": []
        }"#;
        assert!(matches!(
            from_json_str(mu_without_lambda),
            Err(FaultTreeError::Parse { .. })
        ));
        let no_probability_or_rate = r#"{
            "name": "demo", "top": "a",
            "events": [ { "name": "a" } ],
            "gates": []
        }"#;
        assert!(matches!(
            from_json_str(no_probability_or_rate),
            Err(FaultTreeError::Parse { .. })
        ));
        let negative_rate = r#"{
            "name": "demo", "top": "a",
            "events": [ { "name": "a", "lambda": -0.5 } ],
            "gates": []
        }"#;
        assert!(matches!(
            from_json_str(negative_rate),
            Err(FaultTreeError::InvalidRate { .. })
        ));
    }

    #[test]
    fn voting_gates_need_a_threshold() {
        let json = r#"{
            "name": "demo", "top": "g",
            "events": [ { "name": "a", "probability": 0.5 }, { "name": "b", "probability": 0.5 } ],
            "gates": [ { "name": "g", "kind": "vot", "inputs": ["a", "b"] } ]
        }"#;
        assert!(matches!(
            from_json_str(json),
            Err(FaultTreeError::Parse { .. })
        ));
    }

    #[test]
    fn unknown_gate_kinds_and_bad_json_are_rejected() {
        let json = r#"{
            "name": "demo", "top": "g",
            "events": [ { "name": "a", "probability": 0.5 } ],
            "gates": [ { "name": "g", "kind": "xor", "inputs": ["a"] } ]
        }"#;
        assert!(matches!(
            from_json_str(json),
            Err(FaultTreeError::Parse { .. })
        ));
        assert!(matches!(
            from_json_str("{ not json"),
            Err(FaultTreeError::Parse { .. })
        ));
    }

    #[test]
    fn duplicate_names_across_events_and_gates_are_rejected() {
        let json = r#"{
            "name": "demo", "top": "a",
            "events": [ { "name": "a", "probability": 0.5 } ],
            "gates": [ { "name": "a", "kind": "or", "inputs": ["a"] } ]
        }"#;
        assert!(matches!(
            from_json_str(json),
            Err(FaultTreeError::DuplicateName { .. })
        ));
    }
}
