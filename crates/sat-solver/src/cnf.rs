//! A plain CNF formula container, independent of any solver state.
//!
//! [`CnfFormula`] is the exchange format between the Tseitin encoder, the
//! DIMACS reader/writer, the MaxSAT layer and the SAT solver itself.

use crate::lit::{Lit, Var};

/// A formula in conjunctive normal form.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables and no clauses.
    pub fn new() -> Self {
        CnfFormula::default()
    }

    /// Creates an empty formula that already declares `num_vars` variables.
    pub fn with_vars(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns `true` when the formula has no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Allocates a fresh variable and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Declares that variables `0..n` exist (no-op if already larger).
    pub fn ensure_vars(&mut self, n: usize) {
        if n > self.num_vars {
            self.num_vars = n;
        }
    }

    /// Adds a clause given as anything iterable over literals.
    ///
    /// Variables mentioned in the clause are declared automatically.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            self.ensure_vars(lit.var().index() + 1);
        }
        self.clauses.push(clause);
    }

    /// Iterates over the clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(|c| c.as_slice())
    }

    /// Consumes the formula and returns the raw clause list.
    pub fn into_clauses(self) -> Vec<Vec<Lit>> {
        self.clauses
    }

    /// Evaluates the formula under a total assignment given as a slice of
    /// booleans indexed by variable.
    ///
    /// Returns `None` if the assignment does not cover all variables used in
    /// the formula.
    pub fn evaluate(&self, assignment: &[bool]) -> Option<bool> {
        for clause in &self.clauses {
            let mut satisfied = false;
            for lit in clause {
                let value = *assignment.get(lit.var().index())?;
                if value != lit.is_negative() {
                    satisfied = true;
                    break;
                }
            }
            if !satisfied {
                return Some(false);
            }
        }
        Some(true)
    }

    /// Appends all clauses of `other`, remapping nothing (variables are shared).
    pub fn extend_from(&mut self, other: &CnfFormula) {
        self.ensure_vars(other.num_vars);
        for clause in other.clauses() {
            self.clauses.push(clause.to_vec());
        }
    }
}

impl Extend<Vec<Lit>> for CnfFormula {
    fn extend<T: IntoIterator<Item = Vec<Lit>>>(&mut self, iter: T) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

impl FromIterator<Vec<Lit>> for CnfFormula {
    fn from_iter<T: IntoIterator<Item = Vec<Lit>>>(iter: T) -> Self {
        let mut cnf = CnfFormula::new();
        cnf.extend(iter);
        cnf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(i: usize) -> Lit {
        Lit::positive(Var::from_index(i))
    }
    fn neg(i: usize) -> Lit {
        Lit::negative(Var::from_index(i))
    }

    #[test]
    fn building_a_formula_tracks_vars_and_clauses() {
        let mut cnf = CnfFormula::new();
        cnf.add_clause([pos(0), neg(2)]);
        cnf.add_clause([pos(1)]);
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert!(!cnf.is_empty());
    }

    #[test]
    fn new_var_allocates_fresh_indices() {
        let mut cnf = CnfFormula::with_vars(2);
        let v = cnf.new_var();
        assert_eq!(v.index(), 2);
        assert_eq!(cnf.num_vars(), 3);
    }

    #[test]
    fn evaluate_checks_every_clause() {
        let mut cnf = CnfFormula::new();
        cnf.add_clause([pos(0), pos(1)]);
        cnf.add_clause([neg(0), pos(2)]);
        assert_eq!(cnf.evaluate(&[true, false, true]), Some(true));
        assert_eq!(cnf.evaluate(&[true, false, false]), Some(false));
        assert_eq!(cnf.evaluate(&[false, false, true]), Some(false));
        // Missing variable 2 in the assignment.
        assert_eq!(cnf.evaluate(&[true, true]), None);
    }

    #[test]
    fn extend_from_shares_variables() {
        let mut a = CnfFormula::new();
        a.add_clause([pos(0)]);
        let mut b = CnfFormula::new();
        b.add_clause([pos(3)]);
        a.extend_from(&b);
        assert_eq!(a.num_vars(), 4);
        assert_eq!(a.num_clauses(), 2);
    }

    #[test]
    fn from_iterator_collects_clauses() {
        let cnf: CnfFormula = vec![vec![pos(0), pos(1)], vec![neg(1)]]
            .into_iter()
            .collect();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_vars(), 2);
    }
}
