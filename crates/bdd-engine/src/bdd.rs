//! The core ROBDD package: hash-consed nodes and memoised Boolean operations.

use std::collections::HashMap;

/// A handle to a BDD node (index into the node table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant `false` node.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant `true` node.
    pub const TRUE: BddRef = BddRef(1);

    fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` if this handle refers to a terminal (constant) node.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Clone, Copy, Debug)]
struct Node {
    /// Variable level (lower level = closer to the root in the ordering).
    var: u32,
    low: BddRef,
    high: BddRef,
}

/// Preallocated memoisation state for [`Bdd::probability_with`].
///
/// One scratch serves any number of quantifications of diagrams from one
/// manager; entries from earlier calls are invalidated by bumping an epoch
/// counter rather than by clearing the buffers.
#[derive(Clone, Debug, Default)]
pub struct ProbabilityScratch {
    value: Vec<f64>,
    epoch: Vec<u64>,
    current: u64,
}

impl ProbabilityScratch {
    /// Creates an empty scratch; the buffers grow on first use.
    pub fn new() -> Self {
        ProbabilityScratch::default()
    }

    fn begin(&mut self, num_nodes: usize) {
        if self.value.len() < num_nodes {
            self.value.resize(num_nodes, 0.0);
            self.epoch.resize(num_nodes, 0);
        }
        self.current += 1;
    }
}

/// A reduced ordered binary decision diagram manager.
///
/// Variables are identified by their *level* `0..num_vars`, with level 0
/// tested first. All diagrams created by one manager share its node table.
#[derive(Clone, Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    num_vars: usize,
}

impl Bdd {
    /// Creates a manager for `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        let terminal = Node {
            var: u32::MAX,
            low: BddRef::FALSE,
            high: BddRef::TRUE,
        };
        Bdd {
            nodes: vec![terminal, terminal],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
        }
    }

    /// Number of variables managed.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of live nodes in the manager (including both terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant diagram for `value`.
    pub fn constant(value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// The diagram testing variable `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars`.
    pub fn var(&mut self, level: usize) -> BddRef {
        assert!(level < self.num_vars, "variable level out of range");
        self.make_node(level as u32, BddRef::FALSE, BddRef::TRUE)
    }

    fn make_node(&mut self, var: u32, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        if let Some(&existing) = self.unique.get(&(var, low, high)) {
            return existing;
        }
        let index = self.nodes.len() as u32;
        self.nodes.push(Node { var, low, high });
        let reference = BddRef(index);
        self.unique.insert((var, low, high), reference);
        reference
    }

    fn level(&self, node: BddRef) -> u32 {
        self.nodes[node.index()].var
    }

    fn cofactors(&self, node: BddRef, level: u32) -> (BddRef, BddRef) {
        let n = self.nodes[node.index()];
        if node.is_terminal() || n.var > level {
            (node, node)
        } else {
            (n.low, n.high)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`. All Boolean
    /// operations are expressed through this single memoised operation.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        if let Some(&cached) = self.ite_cache.get(&(f, g, h)) {
            return cached;
        }
        let level = [f, g, h]
            .iter()
            .filter(|r| !r.is_terminal())
            .map(|r| self.level(*r))
            .min()
            .expect("at least one non-terminal operand");
        let (f0, f1) = self.cofactors(f, level);
        let (g0, g1) = self.cofactors(g, level);
        let (h0, h1) = self.cofactors(h, level);
        let low = self.ite(f0, g0, h0);
        let high = self.ite(f1, g1, h1);
        let result = self.make_node(level, low, high);
        self.ite_cache.insert((f, g, h), result);
        result
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, b, BddRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, BddRef::TRUE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: BddRef) -> BddRef {
        self.ite(a, BddRef::FALSE, BddRef::TRUE)
    }

    /// `at least k` of the given diagrams are true.
    ///
    /// Built with the standard dynamic-programming recurrence over the
    /// operand list, which keeps the construction polynomial.
    pub fn at_least(&mut self, k: usize, operands: &[BddRef]) -> BddRef {
        let n = operands.len();
        if k == 0 {
            return BddRef::TRUE;
        }
        if k > n {
            return BddRef::FALSE;
        }
        // table[j] = "at least j of the operands processed so far".
        let mut table = vec![BddRef::FALSE; k + 1];
        table[0] = BddRef::TRUE;
        for &operand in operands {
            // Process in decreasing j so each operand is counted once.
            for j in (1..=k).rev() {
                let with = self.and(operand, table[j - 1]);
                table[j] = self.or(table[j], with);
            }
        }
        table[k]
    }

    /// Evaluates the diagram under a total assignment indexed by level.
    pub fn evaluate(&self, node: BddRef, assignment: &[bool]) -> bool {
        let mut current = node;
        while !current.is_terminal() {
            let n = self.nodes[current.index()];
            current = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        current == BddRef::TRUE
    }

    /// Exact probability that the function is true when variable `i` is true
    /// independently with probability `probabilities[i]` (Shannon
    /// decomposition over the diagram).
    pub fn probability(&self, node: BddRef, probabilities: &[f64]) -> f64 {
        self.probability_with(node, probabilities, &mut ProbabilityScratch::new())
    }

    /// Same as [`Bdd::probability`], but memoising into a caller-provided
    /// scratch. Repeated quantifications of one diagram (e.g. mission-time
    /// sweeps) then allocate nothing per call: the scratch buffers grow to
    /// the node-table size once and are invalidated in O(1) afterwards.
    ///
    /// The traversal and memoisation points are identical to
    /// [`Bdd::probability`], so both entry points return bit-identical
    /// results for the same inputs.
    pub fn probability_with(
        &self,
        node: BddRef,
        probabilities: &[f64],
        scratch: &mut ProbabilityScratch,
    ) -> f64 {
        fn walk(
            bdd: &Bdd,
            node: BddRef,
            probabilities: &[f64],
            scratch: &mut ProbabilityScratch,
        ) -> f64 {
            if node == BddRef::TRUE {
                return 1.0;
            }
            if node == BddRef::FALSE {
                return 0.0;
            }
            let index = node.index();
            if scratch.epoch[index] == scratch.current {
                return scratch.value[index];
            }
            let n = bdd.nodes[index];
            let p_var = probabilities[n.var as usize];
            let p = p_var * walk(bdd, n.high, probabilities, scratch)
                + (1.0 - p_var) * walk(bdd, n.low, probabilities, scratch);
            scratch.epoch[index] = scratch.current;
            scratch.value[index] = p;
            p
        }
        scratch.begin(self.nodes.len());
        walk(self, node, probabilities, scratch)
    }

    /// Number of distinct nodes reachable from `node` (excluding terminals).
    pub fn size(&self, node: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![node];
        while let Some(current) = stack.pop() {
            if current.is_terminal() || !seen.insert(current) {
                continue;
            }
            let n = self.nodes[current.index()];
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }

    /// Enumerates the `true`-sets of all paths from `node` to the `true`
    /// terminal: for each path, the set of variable levels taken on their
    /// high edge. Stops with `None` if more than `max_paths` paths exist.
    ///
    /// For a monotone function these sets form a superset of the minimal cut
    /// sets (every minimal cut set appears as one of them).
    pub fn true_paths(&self, node: BddRef, max_paths: usize) -> Option<Vec<Vec<usize>>> {
        fn walk(
            bdd: &Bdd,
            node: BddRef,
            current: &mut Vec<usize>,
            out: &mut Vec<Vec<usize>>,
            max_paths: usize,
        ) -> bool {
            if out.len() > max_paths {
                return false;
            }
            if node == BddRef::FALSE {
                return true;
            }
            if node == BddRef::TRUE {
                out.push(current.clone());
                return out.len() <= max_paths;
            }
            let n = bdd.nodes[node.index()];
            if !walk(bdd, n.low, current, out, max_paths) {
                return false;
            }
            current.push(n.var as usize);
            let ok = walk(bdd, n.high, current, out, max_paths);
            current.pop();
            ok
        }
        let mut out = Vec::new();
        let mut current = Vec::new();
        if walk(self, node, &mut current, &mut out, max_paths) {
            Some(out)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_variables() {
        let mut bdd = Bdd::new(2);
        assert_eq!(Bdd::constant(true), BddRef::TRUE);
        assert_eq!(Bdd::constant(false), BddRef::FALSE);
        let x = bdd.var(0);
        assert!(bdd.evaluate(x, &[true, false]));
        assert!(!bdd.evaluate(x, &[false, true]));
    }

    #[test]
    fn boolean_operations_match_truth_tables() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let and = bdd.and(x, y);
        let or = bdd.or(x, y);
        let not_x = bdd.not(x);
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let assignment = [a, b];
            assert_eq!(bdd.evaluate(and, &assignment), a && b);
            assert_eq!(bdd.evaluate(or, &assignment), a || b);
            assert_eq!(bdd.evaluate(not_x, &assignment), !a);
        }
    }

    #[test]
    fn reduction_produces_canonical_diagrams() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        // x ∧ y built twice gives the same node.
        let a = bdd.and(x, y);
        let b = bdd.and(y, x);
        assert_eq!(a, b);
        // x ∨ ¬x collapses to TRUE.
        let not_x = bdd.not(x);
        assert_eq!(bdd.or(x, not_x), BddRef::TRUE);
        // x ∧ ¬x collapses to FALSE.
        assert_eq!(bdd.and(x, not_x), BddRef::FALSE);
    }

    #[test]
    fn at_least_matches_counting_semantics() {
        let mut bdd = Bdd::new(4);
        let vars: Vec<BddRef> = (0..4).map(|i| bdd.var(i)).collect();
        for k in 0..=5 {
            let at_least = bdd.at_least(k, &vars);
            for mask in 0..16u32 {
                let assignment: Vec<bool> = (0..4).map(|i| mask & (1 << i) != 0).collect();
                let count = assignment.iter().filter(|&&b| b).count();
                assert_eq!(
                    bdd.evaluate(at_least, &assignment),
                    count >= k,
                    "k={k} mask={mask:b}"
                );
            }
        }
    }

    #[test]
    fn probability_uses_shannon_decomposition() {
        let mut bdd = Bdd::new(2);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let and = bdd.and(x, y);
        let or = bdd.or(x, y);
        let probabilities = [0.2, 0.1];
        assert!((bdd.probability(and, &probabilities) - 0.02).abs() < 1e-12);
        // P(x ∨ y) = 0.2 + 0.1 - 0.02 = 0.28.
        assert!((bdd.probability(or, &probabilities) - 0.28).abs() < 1e-12);
        assert_eq!(bdd.probability(BddRef::TRUE, &probabilities), 1.0);
        assert_eq!(bdd.probability(BddRef::FALSE, &probabilities), 0.0);
    }

    #[test]
    fn true_paths_enumerates_cut_sets_of_monotone_functions() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        // f = (x ∧ y) ∨ z.
        let xy = bdd.and(x, y);
        let f = bdd.or(xy, z);
        let mut paths = bdd.true_paths(f, 100).expect("few paths");
        for path in &mut paths {
            path.sort_unstable();
        }
        paths.sort();
        // Every minimal cut set ({z} and {x, y}) appears among the paths.
        assert!(paths.contains(&vec![2]));
        assert!(paths.contains(&vec![0, 1]));
        // The cap is honoured.
        assert!(bdd.true_paths(f, 0).is_none());
    }

    #[test]
    fn size_counts_reachable_internal_nodes() {
        let mut bdd = Bdd::new(3);
        let x = bdd.var(0);
        let y = bdd.var(1);
        let z = bdd.var(2);
        let xy = bdd.and(x, y);
        let f = bdd.or(xy, z);
        assert_eq!(bdd.size(BddRef::TRUE), 0);
        assert_eq!(bdd.size(x), 1);
        assert_eq!(bdd.size(f), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_range_variables_are_rejected() {
        let mut bdd = Bdd::new(2);
        let _ = bdd.var(2);
    }
}
