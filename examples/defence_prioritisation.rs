//! Defence prioritisation for a cyber-physical system.
//!
//! The MPMCS tells a defender where the *attacker's* (or nature's) easiest
//! route lies; the complementary questions are which components to harden
//! first and which minimal set of components, if kept healthy, most probably
//! keeps the system alive. This example combines three views on the
//! water-treatment SCADA tree:
//!
//! 1. the top-5 most probable minimal cut sets (MaxSAT enumeration),
//! 2. the per-event importance table (Birnbaum, Fussell–Vesely, RAW, RRW,
//!    criticality, structural),
//! 3. the maximum-reliability minimal path set — the cheapest "defence core".
//!
//! Run with: `cargo run --release --example defence_prioritisation`

use bdd_engine::{compile_fault_tree, VariableOrdering};
use fault_tree::examples::water_treatment_scada;
use ft_analysis::importance::ImportanceTable;
use ft_analysis::mocus::Mocus;
use mpmcs::{EnumerationLimit, MpmcsSolver};

fn main() {
    let tree = water_treatment_scada();
    let solver = MpmcsSolver::new();

    println!("system: {}\n", tree.name());

    // 1. The most probable ways the system fails.
    let top5 = solver
        .solve_top_k(&tree, 5)
        .expect("the SCADA tree has cut sets");
    println!("top 5 minimal cut sets by probability:");
    for (rank, solution) in top5.iter().enumerate() {
        println!(
            "  #{} {:<55} p = {:.5}",
            rank + 1,
            solution.cut_set.display_names(&tree),
            solution.probability
        );
    }

    // 2. Which single components matter most.
    let cut_sets = Mocus::new(&tree)
        .minimal_cut_sets()
        .expect("the SCADA tree is small");
    let exact = |t: &fault_tree::FaultTree| {
        compile_fault_tree(t, VariableOrdering::DepthFirst).top_event_probability(t)
    };
    let table = ImportanceTable::compute(&tree, &cut_sets, exact);
    println!("\nimportance measures (sorted by criticality):");
    print!("{}", table.render(&tree));

    // 3. The cheapest set of components that, kept working, keeps the plant up.
    let path = solver
        .solve_max_reliability_path_set(&tree)
        .expect("the SCADA tree has path sets");
    println!(
        "\nmaximum-reliability defence core: {} (survival probability {:.4})",
        path.path_set.display_names(&tree),
        path.reliability
    );
    println!("all minimal defence cores, by reliability:");
    for solution in solver
        .enumerate_path_sets(&tree, EnumerationLimit::AtMost(5))
        .expect("path sets exist")
    {
        println!(
            "  {:<60} r = {:.4}",
            solution.path_set.display_names(&tree),
            solution.reliability
        );
    }
}
