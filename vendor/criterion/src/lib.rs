//! In-tree, dependency-free substitute for `criterion`.
//!
//! The build environment of this repository has no reachable crates.io
//! registry, so the workspace must compile fully offline. This crate keeps
//! the `benches/*.rs` files source-compatible with Criterion —
//! [`Criterion::benchmark_group`], [`BenchmarkId`], `b.iter(..)`,
//! [`criterion_group!`]/[`criterion_main!`] — but replaces the statistical
//! machinery with a tiny wall-clock harness: each benchmark runs a short
//! warm-up followed by `sample_size` timed iterations (capped by
//! `measurement_time`) and prints the mean time per iteration.
//!
//! Set `BENCH_SAMPLE_SIZE` to override every group's sample size, e.g.
//! `BENCH_SAMPLE_SIZE=1 cargo bench` for a fast smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function part plus an
/// optional parameter part, rendered as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An identifier with distinct function and parameter parts.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An identifier that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the payload.
pub struct Bencher<'a> {
    samples: usize,
    budget: Duration,
    elapsed: &'a mut Duration,
    iterations: &'a mut u64,
}

impl Bencher<'_> {
    /// Runs `payload` once as warm-up, then repeatedly while recording the
    /// elapsed wall time, stopping at the sample count or the time budget
    /// (whichever comes first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        black_box(payload());
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            black_box(payload());
            done += 1;
            if done >= self.samples as u64 || start.elapsed() >= self.budget {
                break;
            }
        }
        *self.elapsed += start.elapsed();
        *self.iterations += done;
    }
}

/// A named collection of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs (Criterion's
    /// statistical sample count; here simply the iteration count). Overridden
    /// globally by the `BENCH_SAMPLE_SIZE` environment variable.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Accepted for source compatibility; warm-up is a single untimed
    /// iteration in this substitute.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut payload: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let samples = self.effective_sample_size();
        let mut elapsed = Duration::ZERO;
        let mut iterations = 0u64;
        payload(&mut Bencher {
            samples,
            budget: self.measurement_time,
            elapsed: &mut elapsed,
            iterations: &mut iterations,
        });
        self.criterion.report(&self.name, &id, elapsed, iterations);
        self
    }

    /// Runs one benchmark parameterised by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut payload: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| payload(b, input))
    }

    /// Ends the group (prints nothing extra; exists for source
    /// compatibility).
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|raw| raw.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.sample_size)
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, payload: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, payload);
        self
    }

    fn report(&mut self, group: &str, id: &BenchmarkId, elapsed: Duration, iterations: u64) {
        let per_iter = if iterations == 0 {
            Duration::ZERO
        } else {
            elapsed / u32::try_from(iterations.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)
        };
        let name = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "{name}: {:.3} ms/iter ({iterations} iterations, {:.3} s total)",
            per_iter.as_secs_f64() * 1e3,
            elapsed.as_secs_f64(),
        );
    }
}

/// Declares a bench group function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion::default();
        let mut runs = 0u32;
        {
            let mut group = criterion.benchmark_group("demo");
            group
                .sample_size(3)
                .measurement_time(Duration::from_millis(50));
            group.bench_function(BenchmarkId::new("count", 1), |b| {
                b.iter(|| runs += 1);
            });
            group.bench_with_input(BenchmarkId::from_parameter("x"), &5u32, |b, &x| {
                b.iter(|| black_box(x * 2));
            });
            group.finish();
        }
        // 3 timed + 1 warm-up iterations.
        assert_eq!(runs, 4);
    }
}
