//! Result and statistics types shared by all MaxSAT algorithms.

use std::fmt;

use sat_solver::SolverStats;

/// Outcome of a MaxSAT solving run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaxSatOutcome {
    /// An optimal model of the hard clauses was found.
    Optimum {
        /// A model of the hard clauses minimising the soft penalty, indexed by
        /// variable.
        model: Vec<bool>,
        /// The optimal cost (total weight of falsified soft clauses).
        cost: u64,
    },
    /// The hard clauses are unsatisfiable.
    Unsatisfiable,
}

impl MaxSatOutcome {
    /// Returns the optimal cost, if an optimum was found.
    pub fn cost(&self) -> Option<u64> {
        match self {
            MaxSatOutcome::Optimum { cost, .. } => Some(*cost),
            MaxSatOutcome::Unsatisfiable => None,
        }
    }

    /// Returns the optimal model, if an optimum was found.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            MaxSatOutcome::Optimum { model, .. } => Some(model),
            MaxSatOutcome::Unsatisfiable => None,
        }
    }

    /// `true` if an optimum was found.
    pub fn is_optimum(&self) -> bool {
        matches!(self, MaxSatOutcome::Optimum { .. })
    }
}

/// Counters describing a MaxSAT run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaxSatStats {
    /// Number of SAT solver calls.
    pub sat_calls: u64,
    /// Number of unsatisfiable cores extracted (core-guided algorithms).
    pub cores: u64,
    /// Number of model-improving iterations (linear algorithms).
    pub improvements: u64,
    /// Final lower bound on the optimum established by the search.
    pub lower_bound: u64,
    /// Final upper bound on the optimum established by the search.
    pub upper_bound: u64,
    /// Name of the algorithm (or of the winning portfolio entry).
    pub algorithm: String,
    /// Conflicts encountered by the underlying SAT search during this run
    /// (for incremental sessions: during this call only).
    pub conflicts: u64,
    /// Literals propagated by the underlying SAT search during this run.
    pub propagations: u64,
    /// Restarts performed by the underlying SAT search during this run.
    pub restarts: u64,
    /// Learnt clauses carried into warm-started SAT calls instead of being
    /// re-derived — the payoff of incremental solving.
    pub learnt_reused: u64,
    /// Cumulative SAT calls of the owning solver session at the end of this
    /// run. Equals `sat_calls` for a one-shot core-guided run; strictly
    /// grows across the calls of an
    /// [`IncrementalMaxSat`](crate::IncrementalMaxSat) session, proving the
    /// session is shared. Aggregating wrappers (the sequential portfolio's
    /// cross-entry totals, the linear solver's OLL fallback) report
    /// `sat_calls` summed over *several* sessions while `session_calls`
    /// stays the winning session's own count, so there `sat_calls` may
    /// exceed `session_calls`.
    pub session_calls: u64,
    /// Inprocessing rounds run by the underlying SAT search during this run.
    pub inprocess_rounds: u64,
    /// Clauses strengthened by inprocessing during this run.
    pub inprocess_strengthened: u64,
    /// Clauses removed by inprocessing during this run.
    pub inprocess_removed: u64,
    /// Clause-arena compactions performed during this run.
    pub arena_compactions: u64,
}

impl MaxSatStats {
    /// Combines two statistics records into one, summing every work counter.
    ///
    /// Used by the modular divide-and-conquer driver of the analysis-backend
    /// layer: when a query is split over independent modules, each piece is
    /// solved by its own MaxSAT run and the composed answer carries the total
    /// search effort. Bounds are not meaningful across different instances,
    /// so the merged record keeps the tighter invariant-free convention of
    /// summing them as totals; `algorithm` keeps `self`'s name when the two
    /// agree and is tagged `"mixed"` otherwise.
    #[must_use]
    pub fn merged(&self, other: &MaxSatStats) -> MaxSatStats {
        MaxSatStats {
            sat_calls: self.sat_calls + other.sat_calls,
            cores: self.cores + other.cores,
            improvements: self.improvements + other.improvements,
            lower_bound: self.lower_bound + other.lower_bound,
            upper_bound: self.upper_bound + other.upper_bound,
            algorithm: if self.algorithm == other.algorithm || other.algorithm.is_empty() {
                self.algorithm.clone()
            } else if self.algorithm.is_empty() {
                other.algorithm.clone()
            } else {
                "mixed".to_string()
            },
            conflicts: self.conflicts + other.conflicts,
            propagations: self.propagations + other.propagations,
            restarts: self.restarts + other.restarts,
            learnt_reused: self.learnt_reused + other.learnt_reused,
            session_calls: self.session_calls + other.session_calls,
            inprocess_rounds: self.inprocess_rounds + other.inprocess_rounds,
            inprocess_strengthened: self.inprocess_strengthened + other.inprocess_strengthened,
            inprocess_removed: self.inprocess_removed + other.inprocess_removed,
            arena_compactions: self.arena_compactions + other.arena_compactions,
        }
    }

    /// Copies the SAT-level counters of `solver` into this record (used by
    /// the algorithms right before returning).
    pub(crate) fn absorb_solver(&mut self, solver: &SolverStats) {
        self.conflicts = solver.conflicts;
        self.propagations = solver.propagations;
        self.restarts = solver.restarts;
        self.learnt_reused = solver.learnt_reused;
        self.inprocess_rounds = solver.inprocess_rounds;
        self.inprocess_strengthened = solver.inprocess_strengthened;
        self.inprocess_removed = solver.inprocess_removed;
        self.arena_compactions = solver.arena_compactions;
    }
}

impl fmt::Display for MaxSatStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: sat_calls={} cores={} improvements={} lb={} ub={} conflicts={} \
             propagations={} restarts={} reused={} inprocess_rounds={} strengthened={} \
             removed={} compactions={}",
            self.algorithm,
            self.sat_calls,
            self.cores,
            self.improvements,
            self.lower_bound,
            self.upper_bound,
            self.conflicts,
            self.propagations,
            self.restarts,
            self.learnt_reused,
            self.inprocess_rounds,
            self.inprocess_strengthened,
            self.inprocess_removed,
            self.arena_compactions
        )
    }
}

/// The result of a MaxSAT run: outcome plus statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaxSatResult {
    /// The outcome (optimum or unsatisfiable).
    pub outcome: MaxSatOutcome,
    /// Statistics describing the run.
    pub stats: MaxSatStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let opt = MaxSatOutcome::Optimum {
            model: vec![true, false],
            cost: 7,
        };
        assert!(opt.is_optimum());
        assert_eq!(opt.cost(), Some(7));
        assert_eq!(opt.model(), Some([true, false].as_slice()));

        let unsat = MaxSatOutcome::Unsatisfiable;
        assert!(!unsat.is_optimum());
        assert_eq!(unsat.cost(), None);
        assert_eq!(unsat.model(), None);
    }

    #[test]
    fn stats_display_mentions_algorithm_and_bounds() {
        let stats = MaxSatStats {
            algorithm: "oll".to_string(),
            sat_calls: 3,
            lower_bound: 5,
            upper_bound: 5,
            ..MaxSatStats::default()
        };
        let text = stats.to_string();
        assert!(text.contains("oll"));
        assert!(text.contains("lb=5"));
    }
}
