//! Step 5 and the overall pipeline driver: the [`MpmcsSolver`].

use std::time::{Duration, Instant};

use fault_tree::{CutSet, FaultTree};
use maxsat_solver::{
    LinearSuConfig, LinearSuSolver, MaxSatAlgorithm, MaxSatOutcome, MaxSatStats, OllConfig,
    OllSolver, PortfolioConfig, PortfolioSolver,
};

use sat_solver::{BranchingChoice, SolverConfig};

use crate::encode::{EncodingStyle, MpmcsEncoding, WeightScale};
use crate::error::MpmcsError;
use crate::verify;

/// Which MaxSAT strategy to use for Step 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AlgorithmChoice {
    /// The parallel portfolio of heterogeneous solvers (the paper's design).
    #[default]
    Portfolio,
    /// The portfolio restricted to a single thread (deterministic).
    SequentialPortfolio,
    /// Core-guided OLL only.
    Oll,
    /// Linear SAT–UNSAT only.
    LinearSu,
}

/// Options controlling the MPMCS pipeline.
#[derive(Clone, Copy, Debug)]
pub struct MpmcsOptions {
    /// The MaxSAT strategy (paper Step 5).
    pub algorithm: AlgorithmChoice,
    /// The hard-clause encoding style (paper Step 1).
    pub encoding: EncodingStyle,
    /// The probability-to-weight scaling (paper Step 3).
    pub scale: WeightScale,
    /// Verify every answer against the fault tree (cheap, enabled by default).
    pub verify: bool,
    /// Drive enumeration (`solve_top_k` / `enumerate` / `enumerate_above`)
    /// through one persistent incremental solver session: the tree is encoded
    /// once and blocking clauses are pushed into the live session, which
    /// keeps learnt clauses, activities and phases across cut sets. Disable
    /// to fall back to the historical from-scratch pipeline per cut set
    /// (used as the baseline by the E11 study and the equivalence tests).
    /// An explicit [`AlgorithmChoice::LinearSu`] request also keeps the
    /// from-scratch pipeline — the linear algorithm's permanent unit bound
    /// assertions have no incremental counterpart. All other algorithm
    /// choices enumerate through the deterministic core-guided session
    /// (the portfolio's incremental mode), so per-cut-set reports carry the
    /// `"oll"` algorithm tag rather than a portfolio race's: incremental
    /// reuse and a wall-clock race over fresh solvers are mutually
    /// exclusive by construction.
    pub incremental: bool,
    /// The branching heuristic driving every underlying SAT solver's
    /// decisions (VSIDS by default; see
    /// [`BranchingChoice`](sat_solver::BranchingChoice)).
    pub branching: BranchingChoice,
}

impl MpmcsOptions {
    /// The default options: parallel portfolio, direct encoding, default
    /// weight scale, verification enabled, incremental enumeration.
    pub fn new() -> Self {
        MpmcsOptions {
            algorithm: AlgorithmChoice::Portfolio,
            encoding: EncodingStyle::Direct,
            scale: WeightScale::default(),
            verify: true,
            incremental: true,
            branching: BranchingChoice::Vsids,
        }
    }
}

impl Default for MpmcsOptions {
    fn default() -> Self {
        MpmcsOptions::new()
    }
}

/// One computed minimal cut set together with its probability and solver
/// metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct MpmcsSolution {
    /// The events of the minimal cut set.
    pub cut_set: CutSet,
    /// Joint probability of the cut set (product of event probabilities).
    pub probability: f64,
    /// Total logarithmic weight `Σ −ln pᵢ` of the cut set.
    pub log_weight: f64,
    /// Name of the algorithm (or winning portfolio entry) that produced it.
    pub algorithm: String,
    /// MaxSAT statistics of the run.
    pub stats: MaxSatStats,
    /// Wall-clock time spent solving.
    pub duration: Duration,
}

impl MpmcsSolution {
    /// The names of the events in the cut set, in identifier order.
    pub fn event_names(&self, tree: &FaultTree) -> Vec<String> {
        self.cut_set
            .iter()
            .map(|e| tree.event(e).name().to_string())
            .collect()
    }
}

/// The MPMCS pipeline driver (paper Steps 1–6).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone, Debug, Default)]
pub struct MpmcsSolver {
    options: MpmcsOptions,
}

impl MpmcsSolver {
    /// Creates a solver with the default options (parallel portfolio,
    /// verification enabled).
    pub fn new() -> Self {
        MpmcsSolver {
            options: MpmcsOptions::new(),
        }
    }

    /// Creates a solver with explicit options.
    pub fn with_options(options: MpmcsOptions) -> Self {
        MpmcsSolver { options }
    }

    /// Creates a solver using a single, deterministic MaxSAT strategy.
    pub fn sequential() -> Self {
        MpmcsSolver {
            options: MpmcsOptions {
                algorithm: AlgorithmChoice::SequentialPortfolio,
                ..MpmcsOptions::new()
            },
        }
    }

    /// The options in effect.
    pub fn options(&self) -> &MpmcsOptions {
        &self.options
    }

    /// Encodes the tree (paper Steps 1–4) without solving. Useful for
    /// inspection, WCNF export and the benchmark harness.
    pub fn encode(&self, tree: &FaultTree) -> MpmcsEncoding {
        MpmcsEncoding::with_style(tree, self.options.encoding, self.options.scale)
    }

    /// Computes the Maximum Probability Minimal Cut Set of `tree`
    /// (paper Steps 1–6).
    ///
    /// # Errors
    ///
    /// * [`MpmcsError::NoCutSet`] when the top event cannot occur.
    /// * [`MpmcsError::Internal`] if verification is enabled and an internal
    ///   invariant is violated (indicates a bug).
    pub fn solve(&self, tree: &FaultTree) -> Result<MpmcsSolution, MpmcsError> {
        let encoding = self.encode(tree);
        self.solve_encoded(tree, &encoding)
    }

    /// Solves an already-encoded instance (used by the enumeration API, which
    /// adds blocking clauses to a shared encoding).
    pub(crate) fn solve_encoded(
        &self,
        tree: &FaultTree,
        encoding: &MpmcsEncoding,
    ) -> Result<MpmcsSolution, MpmcsError> {
        let start = Instant::now();
        let result = self.run_maxsat(encoding);
        let duration = start.elapsed();
        match result.outcome {
            MaxSatOutcome::Unsatisfiable => Err(MpmcsError::NoCutSet),
            MaxSatOutcome::Optimum { ref model, .. } => {
                let raw_cut = encoding.decode(model);
                let cut = verify::minimise(tree, &raw_cut);
                let (log_weight, probability) = encoding.cut_probability(&cut);
                if self.options.verify {
                    verify::check_solution(tree, &cut, probability)?;
                }
                Ok(MpmcsSolution {
                    cut_set: cut,
                    probability,
                    log_weight,
                    algorithm: result.stats.algorithm.clone(),
                    stats: result.stats,
                    duration,
                })
            }
        }
    }

    fn run_maxsat(&self, encoding: &MpmcsEncoding) -> maxsat_solver::MaxSatResult {
        let instance = encoding.instance();
        let branching = self.options.branching;
        let sat_config = SolverConfig {
            branching,
            ..SolverConfig::default()
        };
        match self.options.algorithm {
            AlgorithmChoice::Portfolio => {
                PortfolioSolver::new(PortfolioConfig::default().with_branching(branching))
                    .solve(instance)
            }
            AlgorithmChoice::SequentialPortfolio => PortfolioSolver::new(
                PortfolioConfig {
                    sequential: true,
                    ..PortfolioConfig::default()
                }
                .with_branching(branching),
            )
            .solve(instance),
            AlgorithmChoice::Oll => OllSolver::new(OllConfig {
                sat_config,
                ..OllConfig::default()
            })
            .solve(instance),
            AlgorithmChoice::LinearSu => LinearSuSolver::new(LinearSuConfig {
                sat_config,
                ..LinearSuConfig::default()
            })
            .solve(instance),
        }
    }

    /// The portfolio configuration used for [`AlgorithmChoice::Portfolio`];
    /// exposed for the benchmark harness (portfolio ablation study).
    pub fn default_portfolio() -> PortfolioConfig {
        PortfolioConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_tree::examples::{
        fire_protection_system, pressure_tank_system, redundant_sensor_network,
    };
    use fault_tree::FaultTreeBuilder;

    #[test]
    fn fire_protection_system_gives_the_paper_answer() {
        let tree = fire_protection_system();
        for algorithm in [
            AlgorithmChoice::Portfolio,
            AlgorithmChoice::SequentialPortfolio,
            AlgorithmChoice::Oll,
            AlgorithmChoice::LinearSu,
        ] {
            let solver = MpmcsSolver::with_options(MpmcsOptions {
                algorithm,
                ..MpmcsOptions::new()
            });
            let solution = solver.solve(&tree).expect("the FPS tree has cut sets");
            assert_eq!(
                solution.event_names(&tree),
                vec!["x1", "x2"],
                "algorithm {algorithm:?}"
            );
            assert!((solution.probability - 0.02).abs() < 1e-9);
            assert!((solution.log_weight - 3.91202).abs() < 1e-4);
            assert!(tree.is_minimal_cut_set(&solution.cut_set));
        }
    }

    #[test]
    fn success_tree_encoding_gives_the_same_answer() {
        let tree = fire_protection_system();
        let solver = MpmcsSolver::with_options(MpmcsOptions {
            encoding: EncodingStyle::SuccessTree,
            algorithm: AlgorithmChoice::Oll,
            ..MpmcsOptions::new()
        });
        let solution = solver.solve(&tree).expect("solvable");
        assert_eq!(solution.event_names(&tree), vec!["x1", "x2"]);
        assert!((solution.probability - 0.02).abs() < 1e-9);
    }

    #[test]
    fn pressure_tank_mpmcs_is_the_most_probable_minimal_cut() {
        let tree = pressure_tank_system();
        let solution = MpmcsSolver::sequential().solve(&tree).expect("solvable");
        // Candidate MCSs: {tank} 1e-5, {relief, switch} 5e-6,
        // {relief, monitor, operator} 1e-6. The most probable is {tank}.
        assert_eq!(solution.cut_set.len(), 1);
        assert_eq!(
            solution.event_names(&tree),
            vec!["tank rupture (mechanical)"]
        );
        assert!((solution.probability - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn voting_gates_are_supported() {
        let tree = redundant_sensor_network();
        let solution = MpmcsSolver::sequential().solve(&tree).expect("solvable");
        // Most probable MCS: {bus} 0.01 vs {power} 0.002 vs sensor pairs
        // (0.05*0.08=0.004, 0.05*0.1=0.005, 0.08*0.1=0.008) → {bus}.
        assert_eq!(solution.event_names(&tree), vec!["field bus fails"]);
        assert!((solution.probability - 0.01).abs() < 1e-12);
    }

    #[test]
    fn probability_one_events_are_handled() {
        let mut b = FaultTreeBuilder::new("certain");
        let certain = b.basic_event("certain", 1.0).unwrap();
        let a = b.basic_event("a", 0.3).unwrap();
        let and = b.and_gate("and", [certain.into(), a.into()]).unwrap();
        let tree = b.build(and.into()).unwrap();
        let solution = MpmcsSolver::sequential().solve(&tree).expect("solvable");
        // The MPMCS is {certain, a} with probability 0.3.
        assert_eq!(solution.cut_set.len(), 2);
        assert!((solution.probability - 0.3).abs() < 1e-12);
        assert!(tree.is_minimal_cut_set(&solution.cut_set));
    }

    #[test]
    fn single_event_tree() {
        let mut b = FaultTreeBuilder::new("single");
        let only = b.basic_event("only", 0.42).unwrap();
        let tree = b.build(only.into()).unwrap();
        let solution = MpmcsSolver::new().solve(&tree).expect("solvable");
        assert_eq!(solution.cut_set.len(), 1);
        assert!((solution.probability - 0.42).abs() < 1e-12);
    }

    #[test]
    fn ties_are_broken_consistently_between_algorithms() {
        // Two identical branches: both {a} and {b} have probability 0.5; any
        // of them is a valid MPMCS, but the probability must be 0.5.
        let mut b = FaultTreeBuilder::new("tie");
        let a = b.basic_event("a", 0.5).unwrap();
        let c = b.basic_event("b", 0.5).unwrap();
        let top = b.or_gate("top", [a.into(), c.into()]).unwrap();
        let tree = b.build(top.into()).unwrap();
        for algorithm in [AlgorithmChoice::Oll, AlgorithmChoice::LinearSu] {
            let solution = MpmcsSolver::with_options(MpmcsOptions {
                algorithm,
                ..MpmcsOptions::new()
            })
            .solve(&tree)
            .expect("solvable");
            assert_eq!(solution.cut_set.len(), 1);
            assert!((solution.probability - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn solution_metadata_is_populated() {
        let tree = fire_protection_system();
        let solution = MpmcsSolver::new().solve(&tree).expect("solvable");
        assert!(!solution.algorithm.is_empty());
        assert!(solution.stats.sat_calls > 0);
    }
}
