//! The fault tree structure and its validating builder.

use std::collections::HashMap;
use std::fmt;

use crate::cutset::CutSet;
use crate::error::FaultTreeError;
use crate::event::{BasicEvent, EventId};
use crate::gate::{Gate, GateId, GateKind};
use crate::probability::Probability;

/// A reference to a node of the fault tree: either a basic event or a gate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeId {
    /// A basic event.
    Event(EventId),
    /// A gate.
    Gate(GateId),
}

// Externally tagged newtype variants, like serde's derive: `{"event": 3}` /
// `{"gate": 1}` (tags lowercased for consistency with the gate kinds).
impl serde::Serialize for NodeId {
    fn to_value(&self) -> serde::Value {
        let (tag, id) = match self {
            NodeId::Event(event) => ("event", serde::Serialize::to_value(event)),
            NodeId::Gate(gate) => ("gate", serde::Serialize::to_value(gate)),
        };
        let mut tagged = serde::Map::new();
        tagged.insert(tag.to_string(), id);
        serde::Value::Object(tagged)
    }
}

impl serde::Deserialize for NodeId {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Some(event) = value.get("event") {
            Ok(NodeId::Event(serde::Deserialize::from_value(event)?))
        } else if let Some(gate) = value.get("gate") {
            Ok(NodeId::Gate(serde::Deserialize::from_value(gate)?))
        } else {
            Err(serde::Error::custom(format!(
                "invalid node id: expected an object tagged `event` or `gate`, found {}",
                value.kind()
            )))
        }
    }
}

impl From<EventId> for NodeId {
    fn from(id: EventId) -> Self {
        NodeId::Event(id)
    }
}

impl From<GateId> for NodeId {
    fn from(id: GateId) -> Self {
        NodeId::Gate(id)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Event(e) => write!(f, "{e}"),
            NodeId::Gate(g) => write!(f, "{g}"),
        }
    }
}

/// A static fault tree: a DAG of AND/OR/voting gates over basic events, with
/// a designated top event.
///
/// Construct trees with [`FaultTreeBuilder`] or one of the parsers in
/// [`parser`](crate::parser).
#[derive(Clone, Debug)]
pub struct FaultTree {
    name: String,
    events: Vec<BasicEvent>,
    gates: Vec<Gate>,
    top: NodeId,
    /// Name → identifier index over `events`, built once in [`from_parts`].
    /// For duplicate names (possible through `from_parts`, never through the
    /// builder or the parsers) the *first* occurrence wins, matching the
    /// linear scan this index replaced.
    event_index: HashMap<String, EventId>,
    /// Name → identifier index over `gates` (same first-wins policy).
    gate_index: HashMap<String, GateId>,
}

// The name indices are derived from `events`/`gates`, so equality (and the
// serialised form below) is defined over the declared parts only.
impl PartialEq for FaultTree {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.events == other.events
            && self.gates == other.gates
            && self.top == other.top
    }
}

// Manual serde implementations (the derive-style macro would persist the
// derived name indices): the wire format stays `{name, events, gates, top}`,
// and deserialisation rebuilds the indices through [`FaultTree::from_parts`],
// which also re-validates the structural invariants.
impl serde::Serialize for FaultTree {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("name".to_string(), serde::Serialize::to_value(&self.name));
        map.insert(
            "events".to_string(),
            serde::Serialize::to_value(&self.events),
        );
        map.insert("gates".to_string(), serde::Serialize::to_value(&self.gates));
        map.insert("top".to_string(), serde::Serialize::to_value(&self.top));
        serde::Value::Object(map)
    }
}

impl serde::Deserialize for FaultTree {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let name: String = serde::de::field(value, "name")?;
        let events: Vec<BasicEvent> = serde::de::field(value, "events")?;
        let gates: Vec<Gate> = serde::de::field(value, "gates")?;
        let top: NodeId = serde::de::field(value, "top")?;
        FaultTree::from_parts(name, events, gates, top)
            .map_err(|e| serde::Error::custom(format!("invalid fault tree: {e}")))
    }
}

impl FaultTree {
    /// The tree name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basic events, indexed by [`EventId`].
    pub fn events(&self) -> &[BasicEvent] {
        &self.events
    }

    /// The gates, indexed by [`GateId`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The basic event with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this tree.
    pub fn event(&self, id: EventId) -> &BasicEvent {
        &self.events[id.index()]
    }

    /// The gate with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this tree.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The top node.
    pub fn top(&self) -> NodeId {
        self.top
    }

    /// Number of basic events.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Total number of nodes (events + gates).
    pub fn node_count(&self) -> usize {
        self.events.len() + self.gates.len()
    }

    /// Iterates over event identifiers.
    pub fn event_ids(&self) -> impl Iterator<Item = EventId> {
        (0..self.events.len()).map(EventId::from_index)
    }

    /// Iterates over gate identifiers.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> {
        (0..self.gates.len()).map(GateId::from_index)
    }

    /// Finds a basic event by name (O(1) hash lookup; the index is built once
    /// by [`FaultTree::from_parts`]).
    pub fn event_by_name(&self, name: &str) -> Option<EventId> {
        self.event_index.get(name).copied()
    }

    /// Finds a gate by name (O(1) hash lookup).
    pub fn gate_by_name(&self, name: &str) -> Option<GateId> {
        self.gate_index.get(name).copied()
    }

    /// Human-readable name of a node.
    pub fn node_name(&self, node: NodeId) -> &str {
        match node {
            NodeId::Event(e) => self.event(e).name(),
            NodeId::Gate(g) => self.gate(g).name(),
        }
    }

    /// Evaluates the structure function: does the top event occur when exactly
    /// the events flagged in `occurred` (indexed by [`EventId`]) occur?
    ///
    /// # Panics
    ///
    /// Panics if `occurred` does not cover all basic events.
    pub fn evaluate(&self, occurred: &[bool]) -> bool {
        assert!(
            occurred.len() >= self.events.len(),
            "occurrence vector must cover every basic event"
        );
        self.evaluate_node(self.top, occurred)
    }

    /// Evaluates the sub-function rooted at `node`.
    pub fn evaluate_node(&self, node: NodeId, occurred: &[bool]) -> bool {
        match node {
            NodeId::Event(e) => occurred[e.index()],
            NodeId::Gate(g) => {
                let gate = self.gate(g);
                gate.kind().evaluate(
                    gate.inputs()
                        .iter()
                        .map(|&input| self.evaluate_node(input, occurred)),
                )
            }
        }
    }

    /// Evaluates the structure function for a set of occurring events.
    pub fn evaluate_set(&self, occurring: &CutSet) -> bool {
        let mut occurred = vec![false; self.events.len()];
        for id in occurring.iter() {
            occurred[id.index()] = true;
        }
        self.evaluate(&occurred)
    }

    /// `true` if the given events jointly trigger the top event.
    pub fn is_cut_set(&self, cut: &CutSet) -> bool {
        self.evaluate_set(cut)
    }

    /// `true` if the given events form an inclusion-minimal cut set: they
    /// trigger the top event and no proper subset does.
    ///
    /// Because the structure function is monotone (no negations), it suffices
    /// to check the subsets obtained by removing a single event.
    pub fn is_minimal_cut_set(&self, cut: &CutSet) -> bool {
        if !self.is_cut_set(cut) {
            return false;
        }
        for event in cut.iter() {
            let mut reduced = cut.clone();
            reduced.remove(event);
            if self.is_cut_set(&reduced) {
                return false;
            }
        }
        true
    }

    /// The longest event-to-top path length, counting gates (a single event
    /// as top has depth 0).
    pub fn depth(&self) -> usize {
        fn node_depth(tree: &FaultTree, node: NodeId, memo: &mut HashMap<NodeId, usize>) -> usize {
            if let Some(&d) = memo.get(&node) {
                return d;
            }
            let depth = match node {
                NodeId::Event(_) => 0,
                NodeId::Gate(g) => {
                    1 + tree
                        .gate(g)
                        .inputs()
                        .iter()
                        .map(|&i| node_depth(tree, i, memo))
                        .max()
                        .unwrap_or(0)
                }
            };
            memo.insert(node, depth);
            depth
        }
        node_depth(self, self.top, &mut HashMap::new())
    }

    /// Validates the structural invariants of the tree: node references are in
    /// range, gates have inputs, voting thresholds are consistent, and the
    /// gate graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), FaultTreeError> {
        let in_range = |node: NodeId| match node {
            NodeId::Event(e) => e.index() < self.events.len(),
            NodeId::Gate(g) => g.index() < self.gates.len(),
        };
        if !in_range(self.top) {
            return Err(FaultTreeError::MissingTop);
        }
        for gate in &self.gates {
            if gate.inputs().is_empty() {
                return Err(FaultTreeError::EmptyGate {
                    gate: gate.name().to_string(),
                });
            }
            if let GateKind::Vot { k } = gate.kind() {
                if k == 0 || k > gate.inputs().len() {
                    return Err(FaultTreeError::InvalidVotingThreshold {
                        gate: gate.name().to_string(),
                        k,
                        n: gate.inputs().len(),
                    });
                }
            }
            for &input in gate.inputs() {
                if !in_range(input) {
                    return Err(FaultTreeError::UnknownNode {
                        name: format!("{input}"),
                    });
                }
            }
        }
        // Cycle detection over the gate graph (events cannot have successors).
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        fn visit(
            tree: &FaultTree,
            gate: GateId,
            colours: &mut [Colour],
        ) -> Result<(), FaultTreeError> {
            match colours[gate.index()] {
                Colour::Black => return Ok(()),
                Colour::Grey => {
                    return Err(FaultTreeError::CyclicStructure {
                        node: tree.gate(gate).name().to_string(),
                    })
                }
                Colour::White => {}
            }
            colours[gate.index()] = Colour::Grey;
            for &input in tree.gate(gate).inputs() {
                if let NodeId::Gate(g) = input {
                    visit(tree, g, colours)?;
                }
            }
            colours[gate.index()] = Colour::Black;
            Ok(())
        }
        let mut colours = vec![Colour::White; self.gates.len()];
        for idx in 0..self.gates.len() {
            visit(self, GateId::from_index(idx), &mut colours)?;
        }
        Ok(())
    }

    /// `true` when any event carries a time-dependent
    /// [`FailureModel`](crate::event::FailureModel)
    /// (other than an explicitly pinned fixed probability), i.e. when
    /// [`FaultTree::at_time`] can produce different trees for different
    /// mission times.
    pub fn has_time_dependence(&self) -> bool {
        self.events.iter().any(|event| {
            matches!(
                event.model(),
                Some(crate::event::FailureModel::Exponential { .. })
                    | Some(crate::event::FailureModel::Repairable { .. })
            )
        })
    }

    /// The tree evaluated at mission time `t`: structurally identical (same
    /// events, gates, identifiers and models), with every event's probability
    /// replaced by [`BasicEvent::probability_at`]`(t)`. Time-invariant events
    /// keep their stored probability, so a model-free tree is returned
    /// unchanged at every `t`.
    ///
    /// This is the single definition of "the tree at time `t`" shared by the
    /// point queries and the incremental sweep paths, so sweep curves are
    /// bit-identical to per-point re-analyses.
    ///
    /// # Panics
    ///
    /// Panics when `t` is negative or not finite and an event has a model
    /// (see [`FailureModel`](crate::event::FailureModel)).
    pub fn at_time(&self, t: f64) -> FaultTree {
        let mut tree = self.clone();
        for event in &mut tree.events {
            let p = event.probability_at(t);
            event.set_probability(p);
        }
        tree
    }

    /// Creates a tree directly from parts, validating the result.
    ///
    /// This is the low-level constructor used by the parsers; prefer
    /// [`FaultTreeBuilder`] in application code.
    ///
    /// # Errors
    ///
    /// Returns the first violated structural invariant.
    pub fn from_parts(
        name: impl Into<String>,
        events: Vec<BasicEvent>,
        gates: Vec<Gate>,
        top: NodeId,
    ) -> Result<Self, FaultTreeError> {
        let mut event_index = HashMap::with_capacity(events.len());
        for (index, event) in events.iter().enumerate() {
            event_index
                .entry(event.name().to_string())
                .or_insert_with(|| EventId::from_index(index));
        }
        let mut gate_index = HashMap::with_capacity(gates.len());
        for (index, gate) in gates.iter().enumerate() {
            gate_index
                .entry(gate.name().to_string())
                .or_insert_with(|| GateId::from_index(index));
        }
        let tree = FaultTree {
            name: name.into(),
            events,
            gates,
            top,
            event_index,
            gate_index,
        };
        tree.validate()?;
        Ok(tree)
    }
}

/// An incremental, validating fault-tree builder.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Clone, Debug, Default)]
pub struct FaultTreeBuilder {
    name: String,
    events: Vec<BasicEvent>,
    gates: Vec<Gate>,
    names: HashMap<String, NodeId>,
}

impl FaultTreeBuilder {
    /// Starts building a tree with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FaultTreeBuilder {
            name: name.into(),
            ..FaultTreeBuilder::default()
        }
    }

    /// Adds a basic event with the given occurrence probability.
    ///
    /// # Errors
    ///
    /// Fails if the probability is invalid or the name is already used.
    pub fn basic_event(
        &mut self,
        name: impl Into<String>,
        probability: f64,
    ) -> Result<EventId, FaultTreeError> {
        self.basic_event_with(name, Probability::new(probability)?)
    }

    /// Adds a basic event with an already-validated probability.
    ///
    /// # Errors
    ///
    /// Fails if the name is already used.
    pub fn basic_event_with(
        &mut self,
        name: impl Into<String>,
        probability: Probability,
    ) -> Result<EventId, FaultTreeError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        let id = EventId::from_index(self.events.len());
        self.names.insert(name.clone(), NodeId::Event(id));
        self.events.push(BasicEvent::new(name, probability));
        Ok(id)
    }

    /// Adds a basic event whose probability follows a time-dependent
    /// failure law; the stored base probability is the law evaluated at
    /// [`crate::DEFAULT_MISSION_TIME`].
    ///
    /// # Errors
    ///
    /// Fails if the name is already used.
    pub fn modelled_event(
        &mut self,
        name: impl Into<String>,
        model: crate::event::FailureModel,
    ) -> Result<EventId, FaultTreeError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        let id = EventId::from_index(self.events.len());
        self.names.insert(name.clone(), NodeId::Event(id));
        self.events.push(BasicEvent::with_model(name, model));
        Ok(id)
    }

    /// Adds a gate combining previously created nodes.
    ///
    /// # Errors
    ///
    /// Fails if the name is already used, the input list is empty, an input
    /// does not belong to this builder, or a voting threshold is inconsistent.
    pub fn gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<GateId, FaultTreeError> {
        let name = name.into();
        self.check_fresh_name(&name)?;
        let inputs: Vec<NodeId> = inputs.into_iter().collect();
        if inputs.is_empty() {
            return Err(FaultTreeError::EmptyGate { gate: name });
        }
        for &input in &inputs {
            let known = match input {
                NodeId::Event(e) => e.index() < self.events.len(),
                NodeId::Gate(g) => g.index() < self.gates.len(),
            };
            if !known {
                return Err(FaultTreeError::UnknownNode {
                    name: format!("{input}"),
                });
            }
        }
        if let GateKind::Vot { k } = kind {
            if k == 0 || k > inputs.len() {
                return Err(FaultTreeError::InvalidVotingThreshold {
                    gate: name,
                    k,
                    n: inputs.len(),
                });
            }
        }
        let id = GateId::from_index(self.gates.len());
        self.names.insert(name.clone(), NodeId::Gate(id));
        self.gates.push(Gate::new(name, kind, inputs));
        Ok(id)
    }

    /// Convenience: an AND gate.
    pub fn and_gate(
        &mut self,
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<GateId, FaultTreeError> {
        self.gate(name, GateKind::And, inputs)
    }

    /// Convenience: an OR gate.
    pub fn or_gate(
        &mut self,
        name: impl Into<String>,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<GateId, FaultTreeError> {
        self.gate(name, GateKind::Or, inputs)
    }

    /// Convenience: a `k`-out-of-`n` voting gate.
    pub fn voting_gate(
        &mut self,
        name: impl Into<String>,
        k: usize,
        inputs: impl IntoIterator<Item = NodeId>,
    ) -> Result<GateId, FaultTreeError> {
        self.gate(name, GateKind::Vot { k }, inputs)
    }

    /// Looks up a previously declared node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Number of events declared so far.
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of gates declared so far.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Finalises the tree with the given top node.
    ///
    /// # Errors
    ///
    /// Fails if the top node is unknown or a structural invariant is violated.
    pub fn build(self, top: NodeId) -> Result<FaultTree, FaultTreeError> {
        FaultTree::from_parts(self.name, self.events, self.gates, top)
    }

    fn check_fresh_name(&self, name: &str) -> Result<(), FaultTreeError> {
        if self.names.contains_key(name) {
            Err(FaultTreeError::DuplicateName {
                name: name.to_string(),
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::fire_protection_system;

    fn simple_tree() -> FaultTree {
        let mut b = FaultTreeBuilder::new("simple");
        let a = b.basic_event("a", 0.1).unwrap();
        let c = b.basic_event("c", 0.2).unwrap();
        let d = b.basic_event("d", 0.3).unwrap();
        let g1 = b.and_gate("g1", [a.into(), c.into()]).unwrap();
        let top = b.or_gate("top", [g1.into(), d.into()]).unwrap();
        b.build(top.into()).unwrap()
    }

    #[test]
    fn builder_produces_a_valid_tree() {
        let tree = simple_tree();
        assert_eq!(tree.num_events(), 3);
        assert_eq!(tree.num_gates(), 2);
        assert_eq!(tree.node_count(), 5);
        assert_eq!(tree.depth(), 2);
        assert!(tree.validate().is_ok());
        assert_eq!(tree.name(), "simple");
        assert_eq!(tree.event_by_name("a"), Some(EventId::from_index(0)));
        assert_eq!(tree.gate_by_name("top"), Some(GateId::from_index(1)));
        assert_eq!(tree.node_name(tree.top()), "top");
    }

    #[test]
    fn structure_function_evaluation() {
        let tree = simple_tree();
        // d alone triggers the top (OR input).
        assert!(tree.evaluate(&[false, false, true]));
        // a alone does not (AND needs both).
        assert!(!tree.evaluate(&[true, false, false]));
        // a and c together do.
        assert!(tree.evaluate(&[true, true, false]));
        assert!(!tree.evaluate(&[false, false, false]));
    }

    #[test]
    fn cut_set_checks_on_the_paper_example() {
        let tree = fire_protection_system();
        let x1 = tree.event_by_name("x1").unwrap();
        let x2 = tree.event_by_name("x2").unwrap();
        let x3 = tree.event_by_name("x3").unwrap();
        let x5 = tree.event_by_name("x5").unwrap();
        let x6 = tree.event_by_name("x6").unwrap();

        assert!(tree.is_minimal_cut_set(&CutSet::from_iter([x1, x2])));
        assert!(tree.is_minimal_cut_set(&CutSet::from_iter([x3])));
        assert!(tree.is_minimal_cut_set(&CutSet::from_iter([x5, x6])));
        // {x1} is not a cut set; {x1, x2, x3} is a cut set but not minimal.
        assert!(!tree.is_cut_set(&CutSet::from_iter([x1])));
        assert!(tree.is_cut_set(&CutSet::from_iter([x1, x2, x3])));
        assert!(!tree.is_minimal_cut_set(&CutSet::from_iter([x1, x2, x3])));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = FaultTreeBuilder::new("dup");
        b.basic_event("x", 0.5).unwrap();
        assert!(matches!(
            b.basic_event("x", 0.1),
            Err(FaultTreeError::DuplicateName { .. })
        ));
        assert!(matches!(
            b.gate("x", GateKind::Or, [NodeId::Event(EventId::from_index(0))]),
            Err(FaultTreeError::DuplicateName { .. })
        ));
    }

    #[test]
    fn invalid_gates_are_rejected() {
        let mut b = FaultTreeBuilder::new("bad");
        let e = b.basic_event("e", 0.5).unwrap();
        assert!(matches!(
            b.gate("empty", GateKind::Or, Vec::<NodeId>::new()),
            Err(FaultTreeError::EmptyGate { .. })
        ));
        assert!(matches!(
            b.voting_gate("vot", 3, [e.into()]),
            Err(FaultTreeError::InvalidVotingThreshold { .. })
        ));
        assert!(matches!(
            b.gate(
                "dangling",
                GateKind::Or,
                [NodeId::Gate(GateId::from_index(7))]
            ),
            Err(FaultTreeError::UnknownNode { .. })
        ));
        assert!(matches!(
            b.basic_event("p", 2.0),
            Err(FaultTreeError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn cyclic_structures_are_detected_by_validate() {
        // Bypass the builder to construct a cyclic gate graph.
        let events = vec![BasicEvent::new("e", Probability::new(0.1).unwrap())];
        let gates = vec![
            Gate::new(
                "g0",
                GateKind::Or,
                vec![NodeId::Gate(GateId::from_index(1))],
            ),
            Gate::new(
                "g1",
                GateKind::Or,
                vec![NodeId::Gate(GateId::from_index(0))],
            ),
        ];
        let result =
            FaultTree::from_parts("cyclic", events, gates, NodeId::Gate(GateId::from_index(0)));
        assert!(matches!(
            result,
            Err(FaultTreeError::CyclicStructure { .. })
        ));
    }

    #[test]
    fn missing_top_is_detected() {
        let result = FaultTree::from_parts(
            "empty",
            vec![],
            vec![],
            NodeId::Event(EventId::from_index(0)),
        );
        assert!(matches!(result, Err(FaultTreeError::MissingTop)));
    }

    #[test]
    fn shared_events_make_a_dag_not_a_tree() {
        // The same event feeds two gates; depth and evaluation must still work.
        let mut b = FaultTreeBuilder::new("dag");
        let shared = b.basic_event("shared", 0.1).unwrap();
        let other = b.basic_event("other", 0.2).unwrap();
        let g1 = b.and_gate("g1", [shared.into(), other.into()]).unwrap();
        let g2 = b.or_gate("g2", [shared.into(), g1.into()]).unwrap();
        let tree = b.build(g2.into()).unwrap();
        assert_eq!(tree.depth(), 2);
        assert!(tree.evaluate(&[true, false]));
        assert!(!tree.evaluate(&[false, true]));
    }

    #[test]
    fn voting_gate_tree_evaluates_correctly() {
        let mut b = FaultTreeBuilder::new("vote");
        let e: Vec<EventId> = (0..4)
            .map(|i| b.basic_event(format!("e{i}"), 0.1).unwrap())
            .collect();
        let top = b
            .voting_gate("top", 3, e.iter().map(|&id| NodeId::from(id)))
            .unwrap();
        let tree = b.build(top.into()).unwrap();
        assert!(!tree.evaluate(&[true, true, false, false]));
        assert!(tree.evaluate(&[true, true, true, false]));
        assert!(tree.evaluate(&[true, true, true, true]));
    }

    #[test]
    fn name_lookups_keep_the_first_of_duplicate_names() {
        // `from_parts` does not forbid duplicate names (only the builder
        // does); the hash indices must then answer like the linear scan they
        // replaced: first declaration wins.
        let events = vec![
            BasicEvent::new("dup", Probability::new(0.1).unwrap()),
            BasicEvent::new("dup", Probability::new(0.2).unwrap()),
        ];
        let gates = vec![Gate::new(
            "top",
            GateKind::Or,
            vec![
                NodeId::Event(EventId::from_index(0)),
                NodeId::Event(EventId::from_index(1)),
            ],
        )];
        let tree =
            FaultTree::from_parts("dups", events, gates, NodeId::Gate(GateId::from_index(0)))
                .unwrap();
        assert_eq!(tree.event_by_name("dup"), Some(EventId::from_index(0)));
        assert_eq!(tree.event_by_name("missing"), None);
        assert_eq!(tree.gate_by_name("top"), Some(GateId::from_index(0)));
    }

    #[test]
    fn deserialisation_validates_the_tree() {
        // The manual serde impl routes through `from_parts`, so structurally
        // invalid documents are rejected instead of producing a broken tree.
        let cyclic = r#"{
            "name": "cyclic",
            "events": [],
            "gates": [
                { "name": "g0", "kind": "or", "inputs": [{ "gate": 1 }] },
                { "name": "g1", "kind": "or", "inputs": [{ "gate": 0 }] }
            ],
            "top": { "gate": 0 }
        }"#;
        assert!(serde_json::from_str::<FaultTree>(cyclic).is_err());
    }

    #[test]
    fn serde_round_trip_preserves_the_tree() {
        let tree = fire_protection_system();
        let json = serde_json::to_string(&tree).unwrap();
        let back: FaultTree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    fn at_time_requantifies_modelled_events_only() {
        use crate::event::FailureModel;

        let mut events = vec![
            BasicEvent::with_model("pump", FailureModel::exponential(0.5).unwrap()),
            BasicEvent::new("valve", Probability::new(0.25).unwrap()),
        ];
        events[1].set_model(Some(FailureModel::Fixed(Probability::new(0.25).unwrap())));
        let gates = vec![Gate::new(
            "top",
            GateKind::Or,
            vec![
                NodeId::Event(EventId::from_index(0)),
                NodeId::Event(EventId::from_index(1)),
            ],
        )];
        let tree =
            FaultTree::from_parts("timed", events, gates, NodeId::Gate(GateId::from_index(0)))
                .unwrap();
        assert!(tree.has_time_dependence());

        let at2 = tree.at_time(2.0);
        assert_eq!(at2.num_events(), 2);
        assert_eq!(
            at2.event(EventId::from_index(0)).probability().value(),
            1.0 - (-1.0f64).exp()
        );
        // Fixed-model and model-free events are invariant.
        assert_eq!(
            at2.event(EventId::from_index(1)).probability().value(),
            0.25
        );
        // Models survive, so `at_time` composes.
        assert!(at2.has_time_dependence());
        assert_eq!(
            at2.at_time(0.0).event(EventId::from_index(0)).probability(),
            Probability::ZERO
        );

        let plain = simple_tree();
        assert!(!plain.has_time_dependence());
        assert_eq!(plain.at_time(7.0), plain);
    }

    #[test]
    fn single_event_tree_is_valid() {
        let mut b = FaultTreeBuilder::new("single");
        let e = b.basic_event("only", 0.4).unwrap();
        let tree = b.build(e.into()).unwrap();
        assert_eq!(tree.depth(), 0);
        assert!(tree.evaluate(&[true]));
        assert!(!tree.evaluate(&[false]));
        assert!(tree.is_minimal_cut_set(&CutSet::from_iter([e])));
    }
}
